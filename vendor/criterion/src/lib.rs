//! Vendored offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness API the
//! workspace's benches use, backed by a simple wall-clock timer: each
//! benchmark is warmed up once, then timed over `sample_size` samples,
//! and the mean/min are printed in a `group/id  time: [..]` line similar
//! to criterion's. No statistics, plots, or baselines — this exists so
//! the benches always compile and can run in air-gapped CI.
//!
//! Passing `--bench <filter>` (as cargo does) filters by substring;
//! `--test` mode runs each benchmark exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Run `body` once as warm-up, then time it over the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std::hint::black_box(body());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(body());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |bencher| body(bencher, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into().id, |bencher| body(bencher));
        self
    }

    fn run(&self, id: &str, body: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut bencher = Bencher {
            samples,
            elapsed: Vec::with_capacity(samples),
        };
        body(&mut bencher);
        if bencher.elapsed.is_empty() {
            println!("{full:<50} (no measurement — b.iter was not called)");
            return;
        }
        let total: Duration = bencher.elapsed.iter().sum();
        let mean = total / bencher.elapsed.len() as u32;
        let min = bencher.elapsed.iter().min().expect("non-empty");
        println!(
            "{full:<50} time: [min {} mean {}] ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            bencher.elapsed.len()
        );
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark driver: filter handling plus group construction.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut test_mode = false;
        let mut it = args.iter();
        let mut after_unknown_flag = false;
        while let Some(arg) = it.next() {
            let was_after_unknown = std::mem::take(&mut after_unknown_flag);
            match arg.as_str() {
                // cargo bench passes a bare `--bench`; a bare value is a filter
                "--bench" | "--noplot" | "--quiet" | "--verbose" => {}
                "--test" => test_mode = true,
                // value-taking criterion options: skip the value too
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = it.next();
                }
                s if s.starts_with("--") => {
                    // unknown flag: it may take a value, so the next bare
                    // token is ambiguous — don't treat it as a filter
                    after_unknown_flag = true;
                }
                s if !was_after_unknown => filter = Some(s.to_owned()),
                _ => {} // bare token right after an unknown flag: its value
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, body);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        // test_mode: 1 warm-up + 1 timed sample
        assert_eq!(runs, 2);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nope".into()),
            test_mode: true,
        };
        let mut ran = false;
        c.benchmark_group("g")
            .bench_function("f", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
