//! Vendored offline stand-in for the `flate2` crate: enough of gzip
//! (RFC 1952) over DEFLATE (RFC 1951) for Rela's compressed snapshot
//! streams.
//!
//! The decode side ([`read::GzDecoder`]) is a full streaming inflater —
//! stored, fixed-Huffman, and dynamic-Huffman blocks, multi-member
//! files, CRC32 + ISIZE trailer verification — implementing
//! [`std::io::Read`], so a `.json.gz` snapshot rides the same pull-based
//! framer as an uncompressed one without ever materializing the
//! decompressed text. The encode side ([`write::GzEncoder`]) emits valid
//! gzip using stored or fixed-Huffman literal blocks (no LZ77 match
//! search): it exists so tests and tooling can produce compressed inputs
//! offline, not to win compression ratios.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// DEFLATE window size: matches may reach this far back.
const WINDOW: usize = 32 * 1024;

/// Pause the symbol loop once this much decoded output is buffered.
const PAUSE: usize = WINDOW;

// ---- CRC32 (the gzip polynomial) --------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Incremental CRC32 (IEEE, as used by gzip trailers).
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn eof(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, message.to_owned())
}

// ---- bit-level input ---------------------------------------------------

/// LSB-first bit reader over a byte source, with a small refill buffer.
/// After any `bits` call fewer than 8 bits remain buffered, so `align`
/// (drop to the next byte boundary) never discards whole bytes.
struct BitReader<R: Read> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    bitbuf: u32,
    nbits: u32,
}

impl<R: Read> BitReader<R> {
    fn new(src: R) -> BitReader<R> {
        BitReader {
            src,
            buf: vec![0; 16 * 1024],
            pos: 0,
            len: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Next raw byte, or `None` at end of input. Only meaningful on a
    /// byte boundary (`nbits == 0`).
    fn try_byte(&mut self) -> io::Result<Option<u8>> {
        debug_assert_eq!(self.nbits, 0, "byte read while bit-misaligned");
        if self.pos == self.len {
            self.pos = 0;
            self.len = self.src.read(&mut self.buf)?;
            if self.len == 0 {
                return Ok(None);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    fn byte(&mut self) -> io::Result<u8> {
        self.try_byte()?
            .ok_or_else(|| eof("unexpected end of gzip stream"))
    }

    /// Read `n ≤ 16` bits, LSB-first.
    fn bits(&mut self, n: u32) -> io::Result<u32> {
        while self.nbits < n {
            // temporarily aligned from the byte reader's point of view:
            // whole bytes are only ever pulled through `bitbuf` here
            if self.pos == self.len {
                self.pos = 0;
                self.len = self.src.read(&mut self.buf)?;
                if self.len == 0 {
                    return Err(eof("unexpected end of deflate stream"));
                }
            }
            self.bitbuf |= u32::from(self.buf[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let out = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(out)
    }

    /// Drop the partial bits of the current byte (stored-block headers
    /// and trailers are byte-aligned).
    fn align(&mut self) {
        self.bitbuf = 0;
        self.nbits = 0;
    }

    fn u32_le(&mut self) -> io::Result<u32> {
        let mut out = 0u32;
        for shift in [0u32, 8, 16, 24] {
            out |= u32::from(self.byte()?) << shift;
        }
        Ok(out)
    }
}

// ---- canonical Huffman decoding ---------------------------------------

/// A canonical Huffman code: per-length symbol counts plus the symbols
/// sorted by (length, symbol) — decoded bit-by-bit, `puff`-style.
struct Huffman {
    counts: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    /// Build from per-symbol code lengths (0 = unused). Over-subscribed
    /// codes are rejected; incomplete codes are accepted (needed for the
    /// common single-symbol distance tables).
    fn build(lengths: &[u8]) -> io::Result<Huffman> {
        let mut counts = [0u16; 16];
        for &len in lengths {
            if len > 15 {
                return Err(bad_data("huffman code length exceeds 15"));
            }
            counts[usize::from(len)] += 1;
        }
        let mut left: i32 = 1;
        for &count in &counts[1..] {
            left = (left << 1) - i32::from(count);
            if left < 0 {
                return Err(bad_data("over-subscribed huffman code"));
            }
        }
        // offsets of each length's first symbol in the sorted table
        let mut offsets = [0usize; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + usize::from(counts[len]);
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l > 0).count()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len > 0 {
                symbols[offsets[usize::from(len)]] = sym as u16;
                offsets[usize::from(len)] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode<R: Read>(&self, bits: &mut BitReader<R>) -> io::Result<u16> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=15 {
            code |= bits.bits(1)? as i32;
            let count = i32::from(self.counts[len]);
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(bad_data("invalid huffman code"))
    }
}

// length codes 257..=285
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
// distance codes 0..=29
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
// order of code-length-code lengths in a dynamic block header
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    for l in lengths.iter_mut().take(256).skip(144) {
        *l = 9;
    }
    for l in lengths.iter_mut().take(280).skip(256) {
        *l = 7;
    }
    lengths
}

/// Streaming decoders.
pub mod read {
    use super::*;

    /// Inflater state between `read` calls.
    enum State {
        /// Before a member header (`first_magic` = magic byte already
        /// consumed while probing for a next member).
        Header { first_magic: bool },
        /// Between blocks: next 3 bits are a block header.
        BlockHeader,
        /// Inside a stored block.
        Stored { remaining: u16, last: bool },
        /// Inside a compressed block.
        Compressed {
            lit: Huffman,
            dist: Huffman,
            last: bool,
        },
        /// All blocks of the member consumed; trailer unread.
        Trailer,
        /// Input fully consumed and verified.
        Done,
    }

    /// A streaming gzip decoder: wraps any [`Read`] of gzip bytes and
    /// reads as the decompressed bytes. Trailer CRC32/ISIZE are
    /// verified; concatenated members decode as one stream (per RFC
    /// 1952 §2.2).
    ///
    /// ```
    /// use flate2::{write::GzEncoder, read::GzDecoder, Compression};
    /// use std::io::{Read, Write};
    ///
    /// let mut enc = GzEncoder::new(Vec::new(), Compression::default());
    /// enc.write_all(b"hello gzip").unwrap();
    /// let compressed = enc.finish().unwrap();
    /// let mut out = String::new();
    /// GzDecoder::new(&compressed[..]).read_to_string(&mut out).unwrap();
    /// assert_eq!(out, "hello gzip");
    /// ```
    pub struct GzDecoder<R: Read> {
        bits: BitReader<R>,
        state: State,
        /// Sliding history for match copies (ring buffer).
        window: Vec<u8>,
        wpos: usize,
        /// Total bytes emitted for the current member (dist validation +
        /// ISIZE check).
        member_out: u64,
        crc: Crc32,
        /// Decoded, not yet handed to the caller.
        out: VecDeque<u8>,
    }

    impl<R: Read> GzDecoder<R> {
        /// Wrap a gzip byte source.
        pub fn new(src: R) -> GzDecoder<R> {
            GzDecoder {
                bits: BitReader::new(src),
                state: State::Header { first_magic: false },
                window: vec![0; WINDOW],
                wpos: 0,
                member_out: 0,
                crc: Crc32::new(),
                out: VecDeque::new(),
            }
        }

        fn emit(&mut self, byte: u8) {
            self.out.push_back(byte);
            self.window[self.wpos] = byte;
            self.wpos = (self.wpos + 1) % WINDOW;
            self.member_out += 1;
            self.crc.update(&[byte]);
        }

        fn read_header(&mut self, first_magic: bool) -> io::Result<()> {
            if !first_magic && self.bits.byte()? != 0x1f {
                return Err(bad_data("not a gzip stream (bad magic)"));
            }
            if self.bits.byte()? != 0x8b {
                return Err(bad_data("not a gzip stream (bad magic)"));
            }
            if self.bits.byte()? != 8 {
                return Err(bad_data("unsupported gzip compression method"));
            }
            let flg = self.bits.byte()?;
            if flg & 0xE0 != 0 {
                return Err(bad_data("reserved gzip FLG bits set"));
            }
            for _ in 0..6 {
                self.bits.byte()?; // MTIME, XFL, OS
            }
            if flg & 0x04 != 0 {
                // FEXTRA: little-endian length, then payload
                let len = u16::from(self.bits.byte()?) | (u16::from(self.bits.byte()?) << 8);
                for _ in 0..len {
                    self.bits.byte()?;
                }
            }
            for flag in [0x08u8, 0x10] {
                // FNAME, FCOMMENT: NUL-terminated
                if flg & flag != 0 {
                    while self.bits.byte()? != 0 {}
                }
            }
            if flg & 0x02 != 0 {
                self.bits.byte()?; // FHCRC (not verified: CRC32 of the
                self.bits.byte()?; // whole member is, below)
            }
            self.member_out = 0;
            self.crc = Crc32::new();
            self.state = State::BlockHeader;
            Ok(())
        }

        fn read_block_header(&mut self) -> io::Result<()> {
            let last = self.bits.bits(1)? == 1;
            match self.bits.bits(2)? {
                0 => {
                    self.bits.align();
                    let len = self.bits.bits(16)? as u16;
                    let nlen = self.bits.bits(16)? as u16;
                    if len != !nlen {
                        return Err(bad_data("stored block LEN/NLEN mismatch"));
                    }
                    self.state = State::Stored {
                        remaining: len,
                        last,
                    };
                }
                1 => {
                    let lit = Huffman::build(&fixed_literal_lengths())?;
                    let dist = Huffman::build(&[5u8; 30])?;
                    self.state = State::Compressed { lit, dist, last };
                }
                2 => {
                    let (lit, dist) = self.read_dynamic_tables()?;
                    self.state = State::Compressed { lit, dist, last };
                }
                _ => return Err(bad_data("reserved deflate block type")),
            }
            Ok(())
        }

        fn read_dynamic_tables(&mut self) -> io::Result<(Huffman, Huffman)> {
            let hlit = self.bits.bits(5)? as usize + 257;
            let hdist = self.bits.bits(5)? as usize + 1;
            let hclen = self.bits.bits(4)? as usize + 4;
            if hlit > 286 || hdist > 30 {
                return Err(bad_data("dynamic block table sizes out of range"));
            }
            let mut clc_lengths = [0u8; 19];
            for &sym in CLC_ORDER.iter().take(hclen) {
                clc_lengths[sym] = self.bits.bits(3)? as u8;
            }
            let clc = Huffman::build(&clc_lengths)?;
            let mut lengths: Vec<u8> = Vec::with_capacity(hlit + hdist);
            while lengths.len() < hlit + hdist {
                match clc.decode(&mut self.bits)? {
                    sym @ 0..=15 => lengths.push(sym as u8),
                    16 => {
                        let &prev = lengths
                            .last()
                            .ok_or_else(|| bad_data("length repeat with no previous length"))?;
                        let n = self.bits.bits(2)? + 3;
                        lengths.extend(std::iter::repeat_n(prev, n as usize));
                    }
                    17 => {
                        let n = self.bits.bits(3)? + 3;
                        lengths.extend(std::iter::repeat_n(0, n as usize));
                    }
                    18 => {
                        let n = self.bits.bits(7)? + 11;
                        lengths.extend(std::iter::repeat_n(0, n as usize));
                    }
                    _ => return Err(bad_data("invalid code-length symbol")),
                }
            }
            if lengths.len() != hlit + hdist {
                return Err(bad_data("length repeat overflows the tables"));
            }
            if lengths[256] == 0 {
                return Err(bad_data("dynamic block has no end-of-block code"));
            }
            let lit = Huffman::build(&lengths[..hlit])?;
            let dist = Huffman::build(&lengths[hlit..])?;
            Ok((lit, dist))
        }

        /// Decode compressed-block symbols until end-of-block or until
        /// enough output is buffered to pause.
        fn run_compressed(&mut self) -> io::Result<()> {
            loop {
                if self.out.len() >= PAUSE {
                    return Ok(());
                }
                let State::Compressed { lit, last, .. } = &self.state else {
                    unreachable!("run_compressed outside a compressed block");
                };
                let last = *last;
                let sym = lit.decode(&mut self.bits)?;
                match sym {
                    0..=255 => self.emit(sym as u8),
                    256 => {
                        self.state = if last {
                            State::Trailer
                        } else {
                            State::BlockHeader
                        };
                        return Ok(());
                    }
                    257..=285 => {
                        let li = usize::from(sym - 257);
                        let len =
                            usize::from(LEN_BASE[li]) + self.bits.bits(LEN_EXTRA[li])? as usize;
                        let State::Compressed { dist, .. } = &self.state else {
                            unreachable!();
                        };
                        let dsym = usize::from(dist.decode(&mut self.bits)?);
                        if dsym >= 30 {
                            return Err(bad_data("invalid distance code"));
                        }
                        let distance = usize::from(DIST_BASE[dsym])
                            + self.bits.bits(DIST_EXTRA[dsym])? as usize;
                        if (distance as u64) > self.member_out || distance > WINDOW {
                            return Err(bad_data("match distance beyond window"));
                        }
                        // overlapping copies (distance < length) re-read
                        // freshly emitted bytes: the ring walk lands on
                        // them naturally because `emit` writes at `wpos`
                        let mut from = (self.wpos + WINDOW - distance) % WINDOW;
                        for _ in 0..len {
                            let byte = self.window[from];
                            from = (from + 1) % WINDOW;
                            self.emit(byte);
                        }
                    }
                    _ => return Err(bad_data("invalid literal/length code")),
                }
            }
        }

        fn read_trailer(&mut self) -> io::Result<()> {
            self.bits.align();
            let crc = self.bits.u32_le()?;
            let isize_ = self.bits.u32_le()?;
            if crc != self.crc.finish() {
                return Err(bad_data("gzip CRC32 mismatch"));
            }
            if u64::from(isize_) != self.member_out & 0xFFFF_FFFF {
                return Err(bad_data("gzip ISIZE mismatch"));
            }
            // another member may follow (concatenated gzip)
            self.state = match self.bits.try_byte()? {
                None => State::Done,
                Some(0x1f) => State::Header { first_magic: true },
                Some(_) => return Err(bad_data("trailing garbage after gzip member")),
            };
            Ok(())
        }

        /// Advance the state machine until output is buffered or the
        /// stream ends.
        fn pump(&mut self) -> io::Result<()> {
            while self.out.is_empty() {
                match &mut self.state {
                    State::Header { first_magic } => {
                        let first = *first_magic;
                        self.read_header(first)?;
                    }
                    State::BlockHeader => self.read_block_header()?,
                    State::Stored { remaining, last } => {
                        let last = *last;
                        if *remaining == 0 {
                            self.state = if last {
                                State::Trailer
                            } else {
                                State::BlockHeader
                            };
                            continue;
                        }
                        let n = (*remaining).min(PAUSE as u16);
                        *remaining -= n;
                        for _ in 0..n {
                            let b = self.bits.byte()?;
                            self.emit(b);
                        }
                    }
                    State::Compressed { .. } => self.run_compressed()?,
                    State::Trailer => self.read_trailer()?,
                    State::Done => return Ok(()),
                }
            }
            Ok(())
        }
    }

    impl<R: Read> Read for GzDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            if self.out.is_empty() {
                self.pump()?;
            }
            let n = self.out.len().min(buf.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.out.pop_front().expect("buffered output");
            }
            Ok(n)
        }
    }
}

/// How hard the encoder tries. The vendored encoder has exactly two
/// strategies: `none` emits stored blocks, anything else fixed-Huffman
/// literal blocks (no match search — valid, just not maximally small).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compression(u32);

impl Compression {
    /// Stored (uncompressed) blocks.
    pub fn none() -> Compression {
        Compression(0)
    }

    /// Fixed-Huffman literal blocks.
    pub fn fast() -> Compression {
        Compression(1)
    }

    /// Alias for [`Compression::fast`] in this stand-in.
    pub fn new(level: u32) -> Compression {
        Compression(level)
    }

    /// The level requested at construction.
    pub fn level(&self) -> u32 {
        self.0
    }
}

impl Default for Compression {
    fn default() -> Compression {
        Compression(6)
    }
}

/// Streaming encoders.
pub mod write {
    use super::*;

    /// A streaming gzip encoder over any [`Write`] sink. Call
    /// [`GzEncoder::finish`] to emit the trailer; a dropped, unfinished
    /// encoder leaves a truncated stream.
    pub struct GzEncoder<W: Write> {
        out: W,
        /// Pending uncompressed bytes (flushed per block).
        buf: Vec<u8>,
        bitbuf: u32,
        nbits: u32,
        crc: Crc32,
        total: u64,
        stored: bool,
        wrote_header: bool,
    }

    impl<W: Write> GzEncoder<W> {
        /// Start a gzip stream on `out`.
        pub fn new(out: W, level: Compression) -> GzEncoder<W> {
            GzEncoder {
                out,
                buf: Vec::new(),
                bitbuf: 0,
                nbits: 0,
                crc: Crc32::new(),
                total: 0,
                stored: level == Compression::none(),
                wrote_header: false,
            }
        }

        fn push_bits(&mut self, value: u32, n: u32) -> io::Result<()> {
            self.bitbuf |= value << self.nbits;
            self.nbits += n;
            while self.nbits >= 8 {
                self.out.write_all(&[(self.bitbuf & 0xFF) as u8])?;
                self.bitbuf >>= 8;
                self.nbits -= 8;
            }
            Ok(())
        }

        /// Emit a Huffman code (MSB-first, per RFC 1951 §3.1.1).
        fn push_code(&mut self, code: u32, len: u32) -> io::Result<()> {
            for i in (0..len).rev() {
                self.push_bits((code >> i) & 1, 1)?;
            }
            Ok(())
        }

        fn align(&mut self) -> io::Result<()> {
            if self.nbits > 0 {
                self.out.write_all(&[(self.bitbuf & 0xFF) as u8])?;
            }
            self.bitbuf = 0;
            self.nbits = 0;
            Ok(())
        }

        fn write_header(&mut self) -> io::Result<()> {
            if !self.wrote_header {
                // magic, deflate, no flags, zero mtime, xfl, "unknown" OS
                self.out
                    .write_all(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff])?;
                self.wrote_header = true;
            }
            Ok(())
        }

        /// Flush pending bytes as one non-final block.
        fn flush_block(&mut self) -> io::Result<()> {
            self.write_header()?;
            let data = std::mem::take(&mut self.buf);
            if data.is_empty() {
                return Ok(());
            }
            if self.stored {
                for chunk in data.chunks(u16::MAX as usize) {
                    self.push_bits(0, 1)?; // BFINAL=0
                    self.push_bits(0, 2)?; // stored
                    self.align()?;
                    let len = chunk.len() as u16;
                    self.out.write_all(&len.to_le_bytes())?;
                    self.out.write_all(&(!len).to_le_bytes())?;
                    self.out.write_all(chunk)?;
                }
            } else {
                self.push_bits(0, 1)?; // BFINAL=0
                self.push_bits(1, 2)?; // fixed Huffman
                for &b in &data {
                    let (code, len) = fixed_code(b);
                    self.push_code(code, len)?;
                }
                self.push_code(0, 7)?; // end of block (symbol 256)
            }
            Ok(())
        }

        /// Close the stream: flush pending data, emit an empty final
        /// block and the CRC32/ISIZE trailer, and return the sink.
        pub fn finish(mut self) -> io::Result<W> {
            self.flush_block()?;
            // empty final stored block terminates the deflate stream
            self.push_bits(1, 1)?;
            self.push_bits(0, 2)?;
            self.align()?;
            self.out.write_all(&0u16.to_le_bytes())?;
            self.out.write_all(&(!0u16).to_le_bytes())?;
            self.out.write_all(&self.crc.finish().to_le_bytes())?;
            self.out
                .write_all(&((self.total & 0xFFFF_FFFF) as u32).to_le_bytes())?;
            self.out.flush()?;
            Ok(self.out)
        }
    }

    /// The fixed literal code for byte `b` (RFC 1951 §3.2.6).
    fn fixed_code(b: u8) -> (u32, u32) {
        if b < 144 {
            (0x30 + u32::from(b), 8)
        } else {
            (0x190 + u32::from(b) - 144, 9)
        }
    }

    impl<W: Write> Write for GzEncoder<W> {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.crc.update(data);
            self.total += data.len() as u64;
            self.buf.extend_from_slice(data);
            if self.buf.len() >= WINDOW {
                self.flush_block()?;
            }
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flush_block()?;
            self.out.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::read::GzDecoder;
    use super::write::GzEncoder;
    use super::*;

    fn roundtrip(data: &[u8], level: Compression) -> Vec<u8> {
        let mut enc = GzEncoder::new(Vec::new(), level);
        enc.write_all(data).unwrap();
        let compressed = enc.finish().unwrap();
        let mut out = Vec::new();
        GzDecoder::new(&compressed[..])
            .read_to_end(&mut out)
            .unwrap();
        out
    }

    /// Deterministic pseudo-random bytes (no RNG dependency).
    fn noise(n: usize) -> Vec<u8> {
        let mut state = 0x9E37_79B9u32;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn stored_and_fixed_roundtrip() {
        for level in [Compression::none(), Compression::fast()] {
            for data in [
                &b""[..],
                b"a",
                b"hello, hello, hello gzip world",
                &noise(100_000),
                &vec![0xAB; 70_000], // spans multiple stored blocks
            ] {
                assert_eq!(roundtrip(data, level), data, "level {level:?}");
            }
        }
    }

    #[test]
    fn high_bytes_use_nine_bit_codes() {
        // bytes ≥ 144 exercise the 9-bit half of the fixed literal code
        let data: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
        assert_eq!(roundtrip(&data, Compression::fast()), data);
    }

    #[test]
    fn concatenated_members_decode_as_one_stream() {
        let mut enc = GzEncoder::new(Vec::new(), Compression::fast());
        enc.write_all(b"first ").unwrap();
        let mut bytes = enc.finish().unwrap();
        let mut enc = GzEncoder::new(Vec::new(), Compression::none());
        enc.write_all(b"second").unwrap();
        bytes.extend_from_slice(&enc.finish().unwrap());
        let mut out = String::new();
        GzDecoder::new(&bytes[..]).read_to_string(&mut out).unwrap();
        assert_eq!(out, "first second");
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut enc = GzEncoder::new(Vec::new(), Compression::fast());
        enc.write_all(b"payload").unwrap();
        let mut bytes = enc.finish().unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0xFF; // inside the CRC32 field
        let err = GzDecoder::new(&bytes[..])
            .read_to_end(&mut Vec::new())
            .unwrap_err();
        assert!(err.to_string().contains("CRC32"), "{err}");
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let mut enc = GzEncoder::new(Vec::new(), Compression::fast());
        enc.write_all(b"some payload worth truncating").unwrap();
        let bytes = enc.finish().unwrap();
        let err = GzDecoder::new(&bytes[..bytes.len() / 2])
            .read_to_end(&mut Vec::new())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");

        let err = GzDecoder::new(&b"not gzip at all"[..])
            .read_to_end(&mut Vec::new())
            .unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let mut trailing = bytes.clone();
        trailing.push(0x42);
        let err = GzDecoder::new(&trailing[..])
            .read_to_end(&mut Vec::new())
            .unwrap_err();
        assert!(err.to_string().contains("trailing garbage"), "{err}");
    }

    #[test]
    fn optional_header_fields_are_skipped() {
        // hand-build a header with FEXTRA + FNAME + FCOMMENT + FHCRC,
        // then splice in the deflate body + trailer from the encoder
        let enc = {
            let mut e = GzEncoder::new(Vec::new(), Compression::none());
            e.write_all(b"decorated").unwrap();
            e.finish().unwrap()
        };
        let body = &enc[10..]; // strip the encoder's plain header
        let mut bytes = vec![0x1f, 0x8b, 8, 0x02 | 0x04 | 0x08 | 0x10];
        bytes.extend_from_slice(&[0; 6]); // mtime/xfl/os
        bytes.extend_from_slice(&3u16.to_le_bytes()); // FEXTRA len
        bytes.extend_from_slice(b"xyz");
        bytes.extend_from_slice(b"name.json\0");
        bytes.extend_from_slice(b"a comment\0");
        bytes.extend_from_slice(&[0xAA, 0xBB]); // FHCRC (unverified)
        bytes.extend_from_slice(body);
        let mut out = String::new();
        GzDecoder::new(&bytes[..]).read_to_string(&mut out).unwrap();
        assert_eq!(out, "decorated");
    }

    /// LSB-first bit writer for hand-building deflate test vectors.
    struct BitWriter {
        out: Vec<u8>,
        bitbuf: u32,
        nbits: u32,
    }

    impl BitWriter {
        fn new() -> BitWriter {
            BitWriter {
                out: Vec::new(),
                bitbuf: 0,
                nbits: 0,
            }
        }

        fn bits(&mut self, value: u32, n: u32) {
            self.bitbuf |= value << self.nbits;
            self.nbits += n;
            while self.nbits >= 8 {
                self.out.push((self.bitbuf & 0xFF) as u8);
                self.bitbuf >>= 8;
                self.nbits -= 8;
            }
        }

        /// Emit a Huffman code MSB-first.
        fn code(&mut self, code: u32, len: u32) {
            for i in (0..len).rev() {
                self.bits((code >> i) & 1, 1);
            }
        }

        fn finish(mut self) -> Vec<u8> {
            if self.nbits > 0 {
                self.out.push((self.bitbuf & 0xFF) as u8);
            }
            self.out
        }
    }

    #[test]
    fn dynamic_huffman_block_decodes() {
        // Hand-built dynamic block: literal 0x00 → length-1 code, EOB →
        // length-1 code, everything else unused; one distance code of
        // length 1 (unused). Payload: three NULs.
        let mut w = BitWriter::new();
        w.bits(1, 1); // BFINAL
        w.bits(2, 2); // dynamic
        w.bits(0, 5); // HLIT  = 257
        w.bits(0, 5); // HDIST = 1
        w.bits(15, 4); // HCLEN = 19 (all code-length lengths present)
                       // code-length code: symbols {1, 18} get length 1, rest 0
        for sym in CLC_ORDER {
            w.bits(if sym == 1 || sym == 18 { 1 } else { 0 }, 3);
        }
        // canonical CLC: sym 1 → code 0, sym 18 → code 1 (both 1 bit)
        let (cl_one, cl_rep18) = ((0u32, 1u32), (1u32, 1u32));
        // literal lengths: sym0=1, 255 zeros (138 + 117), sym256=1
        w.code(cl_one.0, cl_one.1);
        w.code(cl_rep18.0, cl_rep18.1);
        w.bits(138 - 11, 7);
        w.code(cl_rep18.0, cl_rep18.1);
        w.bits(117 - 11, 7);
        w.code(cl_one.0, cl_one.1);
        // distance lengths: one code of length 1
        w.code(cl_one.0, cl_one.1);
        // data: lit/len code is sym0 → 0, sym256 → 1 (canonical, 1 bit)
        w.code(0, 1);
        w.code(0, 1);
        w.code(0, 1);
        w.code(1, 1); // EOB
        let deflate = w.finish();

        let mut bytes = vec![0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff];
        bytes.extend_from_slice(&deflate);
        let mut crc = Crc32::new();
        crc.update(&[0, 0, 0]);
        bytes.extend_from_slice(&crc.finish().to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());

        let mut out = Vec::new();
        GzDecoder::new(&bytes[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn back_reference_copies_resolve_through_the_window() {
        // Fixed-Huffman block with a literal run then an overlapping
        // match: "abc" + (len 6, dist 3) = "abcabcabc".
        let mut w = BitWriter::new();
        w.bits(1, 1); // BFINAL
        w.bits(1, 2); // fixed
        for b in *b"abc" {
            w.code(0x30 + u32::from(b), 8);
        }
        // length 6 → symbol 260 (code 0b0000100, 7 bits), no extra
        w.code(260 - 256, 7);
        // distance 3 → symbol 2 (5 bits), no extra
        w.code(2, 5);
        w.code(0, 7); // EOB
        let deflate = w.finish();

        let mut bytes = vec![0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff];
        bytes.extend_from_slice(&deflate);
        let mut crc = Crc32::new();
        crc.update(b"abcabcabc");
        bytes.extend_from_slice(&crc.finish().to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes());

        let mut out = String::new();
        GzDecoder::new(&bytes[..]).read_to_string(&mut out).unwrap();
        assert_eq!(out, "abcabcabc");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // the classic check value: crc32("123456789") = 0xCBF43926
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }
}
