//! Vendored offline stand-in for `serde`.
//!
//! This workspace builds in air-gapped environments, so it cannot pull
//! the real `serde`/`serde_derive` from crates.io. This crate provides a
//! *value-based* (de)serialization core under the same crate name: types
//! implement [`Serialize`]/[`Deserialize`] by converting to and from the
//! self-describing [`Value`] tree, and format crates (the sibling
//! vendored `serde_json`) print and parse that tree.
//!
//! Differences from real serde, by design:
//!
//! - no derive macros — impls are written by hand (the workspace only
//!   needs a dozen of them, all in `rela-net`);
//! - no zero-copy or streaming: everything goes through [`Value`];
//! - enums use serde's *externally tagged* JSON representation so the
//!   wire format matches what real serde would produce.
//!
//! Swapping the real serde back in later only requires re-deriving the
//! impls; the JSON exchange format is unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (JSON numbers without a fractional part).
    Int(i64),
    /// Unsigned integer above `i64::MAX` (JSON has no integer width
    /// limit; this keeps large u64s exact, as real serde_json does).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object value from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    /// The integer payload as unsigned.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt(n) => Some(n),
            Value::Float(f) if f.fract() == 0.0 && (0.0..9e15).contains(&f) => Some(f as u64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A (de)serialization failure: a human-readable message, optionally
/// wrapped by format crates with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }

    /// "expected TYPE, found VALUE" — the common mismatch error.
    pub fn mismatch(expected: &str, found: &Value) -> Error {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        };
        Error::custom(format!("expected {expected}, found {kind}"))
    }

    /// A missing object field.
    pub fn missing_field(name: &str) -> Error {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, reporting a descriptive error on mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialize a required object field.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v),
        None => Err(Error::missing_field(name)),
    }
}

/// Fetch and deserialize an optional object field (missing or `null`
/// becomes `Default::default()` — serde's `#[serde(default)]`).
pub fn field_or_default<T: Deserialize + Default>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        None | Some(Value::Null) => Ok(T::default()),
        Some(v) => T::from_value(v),
    }
}

// ---- impls for std types -------------------------------------------------

// Identity impls: a `Value` serializes to itself, so callers can build
// or inspect dynamic documents without a typed mirror (what real
// serde_json's `Value` provides).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::mismatch("a boolean", value))
    }
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<$ty, Error> {
                let n = value.as_i64().ok_or_else(|| Error::mismatch("an integer", value))?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        // usize can exceed i64::MAX on 64-bit targets; promote like u64
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<usize, Error> {
        let n = u64::from_value(value)?;
        usize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range for usize")))
    }
}

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<u64, Error> {
        value
            .as_u64()
            .ok_or_else(|| Error::mismatch("an unsigned integer", value))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::mismatch("a number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::mismatch("a number", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::mismatch("a string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::mismatch("an array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<BTreeSet<T>, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::mismatch("an array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<String, V>, Error> {
        value
            .as_obj()
            .ok_or_else(|| Error::mismatch("an object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Int(7)).unwrap(), Some(7));
    }

    #[test]
    fn map_keys_are_object_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1u8);
        let v = m.to_value();
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        let back: BTreeMap<String, u8> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u8::from_value(&Value::Str("hi".into())).is_err());
    }

    #[test]
    fn large_u64_roundtrips_exactly() {
        let big = u64::MAX - 1;
        assert_eq!(big.to_value(), Value::UInt(big));
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        // and it does not silently fit into signed types
        assert!(i64::from_value(&Value::UInt(big)).is_err());
    }
}
