//! Vendored offline stand-in for `serde_json`: a JSON printer and parser
//! for the vendored `serde` [`Value`] data model.
//!
//! Provides the API subset the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], the [`Result`]/[`Error`] types,
//! and the incremental [`stream::JsonReader`] — with conventional JSON
//! output (compact `","`/`":"` separators, two-space pretty indentation,
//! `\uXXXX` escapes for control characters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;

pub use stream::JsonReader;

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// 1-based line of the failure, when parsing.
    line: usize,
    /// 1-based column of the failure, when parsing.
    column: usize,
    /// Absolute byte offset of the failure, when known (streaming reads
    /// always track it; batch parsing and serialization do not).
    offset: Option<u64>,
}

impl Error {
    fn new(message: impl Into<String>, line: usize, column: usize) -> Error {
        Error {
            message: message.into(),
            line,
            column,
            offset: None,
        }
    }

    /// Build a parse error that also records the absolute byte offset of
    /// the failure (used by [`stream::JsonReader`], whose inputs can be
    /// far too large for line/column alone to be a useful address).
    pub fn with_offset(
        message: impl Into<String>,
        line: usize,
        column: usize,
        offset: u64,
    ) -> Error {
        Error {
            message: message.into(),
            line,
            column,
            offset: Some(offset),
        }
    }

    /// The absolute byte offset of the failure, when known.
    pub fn byte_offset(&self) -> Option<u64> {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )?;
        } else {
            f.write_str(&self.message)?;
        }
        if let Some(offset) = self.offset {
            write!(f, " (byte {offset})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string(), 0, 0)
    }
}

/// Maximum container nesting, matching real serde_json's default
/// recursion limit (deeper input errors instead of overflowing the
/// stack). Shared by the batch parser and [`stream::JsonReader`].
pub(crate) const MAX_DEPTH: usize = 128;

/// Alias for `Result` with [`Error`], mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse(input)?;
    Ok(T::from_value(&value)?)
}

// ---- printer -------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity; erroring here matches serde_json
                return Err(Error::new("cannot serialize a non-finite float", 0, 0));
            }
            // match serde_json: integral floats keep a trailing ".0"
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
            write_value(o, v, indent, d)
        })?,
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d)
            },
        )?,
    }
    Ok(())
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize) -> Result<()>,
) -> Result<()> {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1)?;
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = self.pos
            - consumed
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |i| i + 1)
            + 1;
        Error::new(message, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // surrogate pairs
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None // high surrogate not followed by a low one
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // bulk-copy the maximal run up to the next quote or
                    // escape: the input arrived as a &str and `"`/`\` are
                    // ASCII, so the run lies on char boundaries and one
                    // UTF-8 validation covers it (validating the whole
                    // remaining input per character is quadratic)
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Consume `[0-9]+`, erroring if no digit is present.
    fn digits(&mut self, expected: &str) -> Result<()> {
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.error(expected));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Value> {
        // strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            _ => self.digits("expected a digit")?,
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits("expected a digit after the decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("expected a digit in the exponent")?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<u64>().map(Value::UInt))
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\\u0041\"").unwrap(), "hiA");
    }

    #[test]
    fn large_u64_roundtrips() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(json, big.to_string());
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn containers() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u8>>("[1, 2 ,3]").unwrap(), vec![1, 2, 3]);
        let v: Vec<Option<u8>> = from_str("[null,7]").unwrap();
        assert_eq!(v, vec![None, Some(7)]);
    }

    #[test]
    fn number_grammar_is_strict() {
        assert!(from_str::<f64>("1.").is_err());
        assert!(from_str::<f64>("-.5").is_err());
        assert!(from_str::<f64>("1.e3").is_err());
        assert!(from_str::<f64>("1e").is_err());
        assert!(from_str::<u32>("01").is_err());
        assert!(from_str::<i32>("-").is_err());
        assert_eq!(from_str::<f64>("-0.5e+2").unwrap(), -50.0);
        assert_eq!(from_str::<u32>("0").unwrap(), 0);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = from_str::<Vec<u8>>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
        // sibling containers do not accumulate depth
        let wide: String = format!("[{}[]]", "[],".repeat(500));
        assert!(from_str::<Vec<Vec<u8>>>(&wide).is_ok());
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = from_str::<Vec<u8>>("[1,\n 2,,3]").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let pretty = to_string_pretty(&vec![vec![1u8], vec![]]).unwrap();
        assert_eq!(pretty, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn unicode_and_surrogates() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        let s = "héllo ☃";
        let json = to_string(&s.to_owned()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // unpaired or mismatched surrogates are rejected, not corrupted
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud83dx\"").is_err());
        assert!(from_str::<String>("\"\\udc00\"").is_err());
    }
}
