//! A pull-based, incremental JSON reader over any [`std::io::Read`]
//! source.
//!
//! [`JsonReader`] is the streaming counterpart of [`crate::from_str`]:
//! instead of materializing the whole input text and one [`Value`] tree,
//! it keeps a small refill buffer and hands the caller a cursor over the
//! document's structure — enter an object or array, step through its
//! entries, and parse one complete sub-value at a time. A consumer of a
//! large top-level collection (the snapshot wire format's `fecs` array)
//! therefore holds at most one record's `Value` in memory.
//!
//! The reader tracks absolute byte offsets and line/column positions as
//! it consumes input; every error carries all three (see
//! [`crate::Error::byte_offset`]), so a caller can report *where* in a
//! multi-gigabyte file a malformed record sits.
//!
//! ```
//! use serde_json::stream::JsonReader;
//! use serde::Value;
//!
//! let doc = br#"{"fecs": [{"n": 1}, {"n": 2}]}"#;
//! let mut r = JsonReader::new(&doc[..]);
//! r.begin_object().unwrap();
//! assert_eq!(r.next_key().unwrap().as_deref(), Some("fecs"));
//! r.begin_array().unwrap();
//! let mut seen = Vec::new();
//! while r.next_element().unwrap() {
//!     let record: Value = r.read_value().unwrap();
//!     seen.push(record.get("n").and_then(Value::as_i64).unwrap());
//! }
//! assert_eq!(r.next_key().unwrap(), None);
//! r.end().unwrap();
//! assert_eq!(seen, vec![1, 2]);
//! ```

use crate::{Error, Result, MAX_DEPTH};
use serde::Value;
use std::io::Read;

/// Refill chunk size. Small enough that the reader's resident footprint
/// is negligible next to one decoded record, large enough to amortize
/// `read` syscalls.
const CHUNK: usize = 64 * 1024;

/// An incremental cursor over a JSON document read from `R`.
///
/// The caller drives the document structure explicitly:
/// [`begin_object`](JsonReader::begin_object) /
/// [`begin_array`](JsonReader::begin_array) enter a container,
/// [`next_key`](JsonReader::next_key) /
/// [`next_element`](JsonReader::next_element) step through it (and
/// consume its closing bracket when exhausted), and
/// [`read_value`](JsonReader::read_value) parses one complete sub-value
/// of any shape. [`end`](JsonReader::end) asserts the input is fully
/// consumed.
pub struct JsonReader<R: Read> {
    src: R,
    /// Fixed refill buffer, allocated once; `buf[pos..len]` is unread.
    buf: Vec<u8>,
    /// Next unread index into `buf`.
    pos: usize,
    /// Number of valid bytes in `buf`.
    len: usize,
    /// Absolute offset of `buf[0]` in the overall input.
    base: u64,
    /// The source returned 0 bytes: no more input exists.
    eof: bool,
    /// Per-open-container flag: no element consumed yet (so the next
    /// entry is not preceded by a comma).
    first: Vec<bool>,
    /// 1-based line of the next unread byte.
    line: usize,
    /// Absolute offset where the current line starts.
    line_start: u64,
}

impl<R: Read> JsonReader<R> {
    /// Wrap a byte source. No input is read until the first cursor call.
    pub fn new(src: R) -> JsonReader<R> {
        JsonReader {
            src,
            buf: vec![0; CHUNK],
            pos: 0,
            len: 0,
            base: 0,
            eof: false,
            first: Vec::new(),
            line: 1,
            line_start: 0,
        }
    }

    /// Absolute byte offset of the next unread input byte.
    pub fn byte_offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn error(&self, message: impl Into<String>) -> Error {
        let offset = self.byte_offset();
        let column = (offset - self.line_start) as usize + 1;
        Error::with_offset(message, self.line, column, offset)
    }

    /// Ensure at least one unread byte is buffered, unless at EOF. The
    /// reader never looks ahead more than one byte, so a refill only
    /// happens when the buffer is fully consumed.
    fn fill(&mut self) -> Result<()> {
        if self.pos < self.len || self.eof {
            return Ok(());
        }
        self.base += self.len as u64;
        self.pos = 0;
        // retry EINTR: signal delivery mid-read is not a torn document
        self.len = loop {
            match self.src.read(&mut self.buf) {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                other => break other.map_err(|e| self.error(format!("io error: {e}")))?,
            }
        };
        if self.len == 0 {
            self.eof = true;
        }
        Ok(())
    }

    fn peek(&mut self) -> Result<Option<u8>> {
        self.fill()?;
        if self.pos < self.len {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    /// Consume one byte (which must have been peeked).
    fn bump(&mut self) {
        if self.pos < self.len && self.buf[self.pos] == b'\n' {
            self.line += 1;
            self.line_start = self.byte_offset() + 1;
        }
        self.pos += 1;
    }

    fn skip_ws(&mut self) -> Result<()> {
        while matches!(self.peek()?, Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
        Ok(())
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        match self.peek()? {
            Some(b) if b == byte => {
                self.bump();
                Ok(())
            }
            Some(_) => Err(self.error(format!("expected `{}`", byte as char))),
            None => Err(self.error(format!(
                "unexpected end of input (expected `{}`)",
                byte as char
            ))),
        }
    }

    /// Enter an object: consume `{` (after whitespace).
    pub fn begin_object(&mut self) -> Result<()> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b'{') => {
                self.bump();
                self.first.push(true);
                Ok(())
            }
            Some(_) => Err(self.error("expected an object")),
            None => Err(self.error("unexpected end of input (expected an object)")),
        }
    }

    /// Enter an array: consume `[` (after whitespace).
    pub fn begin_array(&mut self) -> Result<()> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b'[') => {
                self.bump();
                self.first.push(true);
                Ok(())
            }
            Some(_) => Err(self.error("expected an array")),
            None => Err(self.error("unexpected end of input (expected an array)")),
        }
    }

    /// Step to the next object entry: returns its key, leaving the cursor
    /// on the entry's value. Returns `None` — consuming the `}` — when
    /// the object is exhausted.
    pub fn next_key(&mut self) -> Result<Option<String>> {
        if !self.step_into_next(b'}')? {
            return Ok(None);
        }
        self.skip_ws()?;
        let key = self.read_string()?;
        self.skip_ws()?;
        self.expect(b':')?;
        Ok(Some(key))
    }

    /// Step to the next array element: `true` leaves the cursor on the
    /// element (call [`read_value`](JsonReader::read_value) next);
    /// `false` means the array is exhausted and its `]` was consumed.
    pub fn next_element(&mut self) -> Result<bool> {
        self.step_into_next(b']')
    }

    /// Shared comma/close handling for both container kinds.
    fn step_into_next(&mut self, close: u8) -> Result<bool> {
        self.skip_ws()?;
        let first = *self
            .first
            .last()
            .ok_or_else(|| self.error("not inside a container"))?;
        match self.peek()? {
            Some(b) if b == close => {
                self.bump();
                self.first.pop();
                Ok(false)
            }
            Some(b',') if !first => {
                self.bump();
                self.skip_ws()?;
                // a close bracket after a comma is a trailing comma
                if self.peek()? == Some(close) {
                    return Err(self.error("trailing comma"));
                }
                Ok(true)
            }
            Some(_) if first => {
                *self.first.last_mut().expect("container open") = false;
                Ok(true)
            }
            Some(_) => Err(self.error(format!("expected `,` or `{}`", close as char))),
            None => Err(self.error(format!(
                "unexpected end of input (expected `,` or `{}`)",
                close as char
            ))),
        }
    }

    /// Parse one complete value (scalar or container subtree) into a
    /// [`Value`]. This is where a streaming consumer bounds its memory:
    /// only the sub-value under the cursor is materialized.
    pub fn read_value(&mut self) -> Result<Value> {
        self.read_value_at(0)
    }

    fn read_value_at(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        self.skip_ws()?;
        match self.peek()? {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.read_string().map(Value::Str),
            Some(b'[') => {
                self.bump();
                self.first.push(true);
                let mut items = Vec::new();
                while self.next_element()? {
                    items.push(self.read_value_at(depth + 1)?);
                }
                Ok(Value::Arr(items))
            }
            Some(b'{') => {
                self.bump();
                self.first.push(true);
                let mut fields = Vec::new();
                while let Some(key) = self.next_key()? {
                    fields.push((key, self.read_value_at(depth + 1)?));
                }
                Ok(Value::Obj(fields))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.read_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        for &b in word.as_bytes() {
            match self.peek()? {
                Some(got) if got == b => self.bump(),
                _ => return Err(self.error(format!("expected `{word}`"))),
            }
        }
        Ok(value)
    }

    /// Parse a string token. Escapes are decoded; the result is validated
    /// as UTF-8 once, after the closing quote.
    fn read_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek()? {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.bump();
                    return String::from_utf8(out).map_err(|_| self.error("invalid utf-8"));
                }
                Some(b'\\') => {
                    self.bump();
                    let escaped = match self.peek()? {
                        Some(b'"') => b'"',
                        Some(b'\\') => b'\\',
                        Some(b'/') => b'/',
                        Some(b'b') => 0x08,
                        Some(b'f') => 0x0c,
                        Some(b'n') => b'\n',
                        Some(b'r') => b'\r',
                        Some(b't') => b'\t',
                        Some(b'u') => {
                            self.bump();
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // high surrogate: must pair with a low one
                                if self.peek()? == Some(b'\\') {
                                    self.bump();
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        char::from_u32(
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            let c = c.ok_or_else(|| self.error("invalid \\u escape"))?;
                            let mut enc = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut enc).as_bytes());
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    };
                    out.push(escaped);
                    self.bump();
                }
                Some(_) => {
                    // copy the maximal buffered run up to the next quote,
                    // escape, or buffer end in one extend
                    let start = self.pos;
                    while self.pos < self.len {
                        let b = self.buf[self.pos];
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b == b'\n' {
                            self.line += 1;
                            self.line_start = self.base + self.pos as u64 + 1;
                        }
                        self.pos += 1;
                    }
                    out.extend_from_slice(&self.buf[start..self.pos]);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek()? {
                Some(b) if b.is_ascii_hexdigit() => (b as char).to_digit(16).expect("hex digit"),
                Some(_) => return Err(self.error("invalid \\u escape")),
                None => return Err(self.error("truncated \\u escape")),
            };
            self.bump();
            code = code * 16 + d;
        }
        Ok(code)
    }

    /// Consume `[0-9]+` into `text`, erroring if no digit is present.
    fn digits(&mut self, text: &mut Vec<u8>, expected: &str) -> Result<()> {
        if !matches!(self.peek()?, Some(c) if c.is_ascii_digit()) {
            return Err(self.error(expected));
        }
        while let Some(c) = self.peek()? {
            if !c.is_ascii_digit() {
                break;
            }
            text.push(c);
            self.bump();
        }
        Ok(())
    }

    /// Strict JSON number grammar, identical to the batch parser's.
    fn read_number(&mut self) -> Result<Value> {
        let mut text: Vec<u8> = Vec::new();
        if self.peek()? == Some(b'-') {
            text.push(b'-');
            self.bump();
        }
        match self.peek()? {
            Some(b'0') => {
                text.push(b'0');
                self.bump();
                if matches!(self.peek()?, Some(c) if c.is_ascii_digit()) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            _ => self.digits(&mut text, "expected a digit")?,
        }
        let mut is_float = false;
        if self.peek()? == Some(b'.') {
            is_float = true;
            text.push(b'.');
            self.bump();
            self.digits(&mut text, "expected a digit after the decimal point")?;
        }
        if matches!(self.peek()?, Some(b'e' | b'E')) {
            is_float = true;
            text.push(b'e');
            self.bump();
            if let Some(sign @ (b'+' | b'-')) = self.peek()? {
                text.push(sign);
                self.bump();
            }
            self.digits(&mut text, "expected a digit in the exponent")?;
        }
        let text = std::str::from_utf8(&text).expect("ascii number text");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<u64>().map(Value::UInt))
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.error("invalid number"))
        }
    }

    /// Scan one complete value without decoding it, appending its raw
    /// bytes (interior whitespace included, leading whitespace excluded)
    /// to `out`.
    ///
    /// This is the framing half of a decode pipeline: it applies exactly
    /// the same strict grammar as [`read_value`](JsonReader::read_value)
    /// — identical error messages at identical offsets — but
    /// materializes nothing beyond the raw span, so a reader thread can
    /// hand complete records to decode workers without paying for
    /// [`Value`] construction. The span re-parses to the same [`Value`]
    /// the decoding reader would have produced.
    pub fn read_raw_value(&mut self, out: &mut Vec<u8>) -> Result<()> {
        self.skip_ws()?;
        self.scan_raw_at(0, out)
    }

    fn scan_raw_at(&mut self, depth: usize, out: &mut Vec<u8>) -> Result<()> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        self.scan_ws_raw(out)?;
        match self.peek()? {
            Some(b'n') => self.scan_literal_raw("null", out),
            Some(b't') => self.scan_literal_raw("true", out),
            Some(b'f') => self.scan_literal_raw("false", out),
            Some(b'"') => self.scan_string_raw(out),
            Some(open @ (b'[' | b'{')) => {
                let close = if open == b'[' { b']' } else { b'}' };
                out.push(open);
                self.bump();
                self.scan_container_raw(depth, close, out)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.scan_number_raw(out),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    /// Scan a container body after its opening bracket, mirroring the
    /// comma/close handling of [`step_into_next`](Self::step_into_next)
    /// byte for byte (so malformed input fails with the same message at
    /// the same offset as the decoding reader).
    fn scan_container_raw(&mut self, depth: usize, close: u8, out: &mut Vec<u8>) -> Result<()> {
        let mut first = true;
        loop {
            self.scan_ws_raw(out)?;
            match self.peek()? {
                Some(b) if b == close => {
                    out.push(b);
                    self.bump();
                    return Ok(());
                }
                Some(b',') if !first => {
                    out.push(b',');
                    self.bump();
                    self.scan_ws_raw(out)?;
                    if self.peek()? == Some(close) {
                        return Err(self.error("trailing comma"));
                    }
                }
                Some(_) if first => first = false,
                Some(_) => return Err(self.error(format!("expected `,` or `{}`", close as char))),
                None => {
                    return Err(self.error(format!(
                        "unexpected end of input (expected `,` or `{}`)",
                        close as char
                    )))
                }
            }
            if close == b'}' {
                self.scan_ws_raw(out)?;
                self.scan_string_raw(out)?;
                self.scan_ws_raw(out)?;
                match self.peek()? {
                    Some(b':') => {
                        out.push(b':');
                        self.bump();
                    }
                    Some(_) => return Err(self.error("expected `:`")),
                    None => return Err(self.error("unexpected end of input (expected `:`)")),
                }
            }
            self.scan_raw_at(depth + 1, out)?;
        }
    }

    fn scan_ws_raw(&mut self, out: &mut Vec<u8>) -> Result<()> {
        while let Some(b @ (b' ' | b'\t' | b'\n' | b'\r')) = self.peek()? {
            out.push(b);
            self.bump();
        }
        Ok(())
    }

    fn scan_literal_raw(&mut self, word: &str, out: &mut Vec<u8>) -> Result<()> {
        for &b in word.as_bytes() {
            match self.peek()? {
                Some(got) if got == b => {
                    out.push(got);
                    self.bump();
                }
                _ => return Err(self.error(format!("expected `{word}`"))),
            }
        }
        Ok(())
    }

    /// Raw mirror of [`read_string`](Self::read_string): validates the
    /// token (escapes, surrogate pairs, UTF-8) without decoding escapes.
    fn scan_string_raw(&mut self, out: &mut Vec<u8>) -> Result<()> {
        match self.peek()? {
            Some(b'"') => {
                out.push(b'"');
                self.bump();
            }
            Some(_) => return Err(self.error("expected `\"`")),
            None => return Err(self.error("unexpected end of input (expected `\"`)")),
        }
        let content_start = out.len();
        loop {
            match self.peek()? {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.bump();
                    // escape sequences are pure ASCII, so the raw content
                    // is valid UTF-8 exactly when the decoded string is —
                    // same error at the same post-quote offset as the
                    // decoding reader
                    if std::str::from_utf8(&out[content_start..]).is_err() {
                        return Err(self.error("invalid utf-8"));
                    }
                    out.push(b'"');
                    return Ok(());
                }
                Some(b'\\') => {
                    out.push(b'\\');
                    self.bump();
                    match self.peek()? {
                        Some(c @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(c);
                            self.bump();
                        }
                        Some(b'u') => {
                            out.push(b'u');
                            self.bump();
                            let code = self.hex4_raw(out)?;
                            let valid = if (0xD800..0xDC00).contains(&code) {
                                // high surrogate: must pair with a low one
                                if self.peek()? == Some(b'\\') {
                                    out.push(b'\\');
                                    self.bump();
                                    match self.peek()? {
                                        Some(b'u') => {
                                            out.push(b'u');
                                            self.bump();
                                            let low = self.hex4_raw(out)?;
                                            (0xDC00..0xE000).contains(&low)
                                        }
                                        Some(_) => return Err(self.error("expected `u`")),
                                        None => {
                                            return Err(self
                                                .error("unexpected end of input (expected `u`)"))
                                        }
                                    }
                                } else {
                                    false
                                }
                            } else {
                                // lone low surrogates are unencodable
                                !(0xDC00..0xE000).contains(&code)
                            };
                            if !valid {
                                return Err(self.error("invalid \\u escape"));
                            }
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(_) => {
                    // copy the maximal buffered run up to the next quote,
                    // escape, or buffer end in one extend
                    let start = self.pos;
                    while self.pos < self.len {
                        let b = self.buf[self.pos];
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b == b'\n' {
                            self.line += 1;
                            self.line_start = self.base + self.pos as u64 + 1;
                        }
                        self.pos += 1;
                    }
                    out.extend_from_slice(&self.buf[start..self.pos]);
                }
            }
        }
    }

    fn hex4_raw(&mut self, out: &mut Vec<u8>) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek()? {
                Some(b) if b.is_ascii_hexdigit() => {
                    out.push(b);
                    (b as char).to_digit(16).expect("hex digit")
                }
                Some(_) => return Err(self.error("invalid \\u escape")),
                None => return Err(self.error("truncated \\u escape")),
            };
            self.bump();
            code = code * 16 + d;
        }
        Ok(code)
    }

    /// Raw mirror of [`read_number`](Self::read_number): the strict
    /// grammar without the numeric parse (re-parsing the span performs
    /// it).
    fn scan_number_raw(&mut self, out: &mut Vec<u8>) -> Result<()> {
        if self.peek()? == Some(b'-') {
            out.push(b'-');
            self.bump();
        }
        match self.peek()? {
            Some(b'0') => {
                out.push(b'0');
                self.bump();
                if matches!(self.peek()?, Some(c) if c.is_ascii_digit()) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            _ => self.digits(out, "expected a digit")?,
        }
        if self.peek()? == Some(b'.') {
            out.push(b'.');
            self.bump();
            self.digits(out, "expected a digit after the decimal point")?;
        }
        if let Some(e @ (b'e' | b'E')) = self.peek()? {
            out.push(e);
            self.bump();
            if let Some(sign @ (b'+' | b'-')) = self.peek()? {
                out.push(sign);
                self.bump();
            }
            self.digits(out, "expected a digit in the exponent")?;
        }
        Ok(())
    }

    /// Assert the document is complete: only whitespace remains.
    pub fn end(&mut self) -> Result<()> {
        self.skip_ws()?;
        match self.peek()? {
            None => Ok(()),
            Some(_) => Err(self.error("trailing characters")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields one byte per `read` call: every token
    /// boundary in these tests crosses a refill.
    struct Drip<'a>(&'a [u8]);

    impl Read for Drip<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    fn read_doc(bytes: &[u8]) -> Result<Value> {
        let mut r = JsonReader::new(Drip(bytes));
        let v = r.read_value()?;
        r.end()?;
        Ok(v)
    }

    #[test]
    fn streamed_parse_agrees_with_batch_parse() {
        let doc = br#" {"a": [1, 2.5, -3e2], "b": {"nested": "hi\n\u0041"},
                       "c": [true, false, null], "d": "unicode \ud83d\ude00 ok"} "#;
        let streamed = read_doc(doc).unwrap();
        let batch: Value = crate::from_str(std::str::from_utf8(doc).unwrap()).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn cursor_walks_top_level_entries_without_whole_doc() {
        let doc = br#"{"meta": 7, "items": [{"k": "x"}, {"k": "y"}]}"#;
        let mut r = JsonReader::new(Drip(doc));
        r.begin_object().unwrap();
        assert_eq!(r.next_key().unwrap().as_deref(), Some("meta"));
        assert_eq!(r.read_value().unwrap(), Value::Int(7));
        assert_eq!(r.next_key().unwrap().as_deref(), Some("items"));
        r.begin_array().unwrap();
        let mut keys = Vec::new();
        while r.next_element().unwrap() {
            let item = r.read_value().unwrap();
            keys.push(item.get("k").unwrap().as_str().unwrap().to_owned());
        }
        assert_eq!(keys, vec!["x", "y"]);
        assert_eq!(r.next_key().unwrap(), None);
        r.end().unwrap();
    }

    #[test]
    fn empty_containers_and_whitespace() {
        assert_eq!(read_doc(b" [ ] ").unwrap(), Value::Arr(vec![]));
        assert_eq!(read_doc(b" { } ").unwrap(), Value::Obj(vec![]));
        let mut r = JsonReader::new(Drip(b"{ }"));
        r.begin_object().unwrap();
        assert_eq!(r.next_key().unwrap(), None);
        r.end().unwrap();
    }

    #[test]
    fn errors_carry_byte_offsets() {
        // truncation mid-record
        let mut r = JsonReader::new(Drip(br#"{"a": [1, 2"#));
        r.begin_object().unwrap();
        r.next_key().unwrap();
        let err = r.read_value().unwrap_err();
        assert_eq!(err.byte_offset(), Some(11), "{err}");
        assert!(err.to_string().contains("byte 11"), "{err}");

        // a bad token mid-document points at the token
        let doc = b"[1, x]";
        let mut r = JsonReader::new(Drip(doc));
        r.begin_array().unwrap();
        assert!(r.next_element().unwrap());
        r.read_value().unwrap();
        assert!(r.next_element().unwrap());
        let err = r.read_value().unwrap_err();
        assert_eq!(err.byte_offset(), Some(4));
    }

    #[test]
    fn line_and_column_track_newlines() {
        let doc = b"[1,\n 2,,3]";
        let mut r = JsonReader::new(Drip(doc));
        r.begin_array().unwrap();
        assert!(r.next_element().unwrap());
        r.read_value().unwrap();
        assert!(r.next_element().unwrap());
        r.read_value().unwrap();
        assert!(r.next_element().unwrap());
        let err = r.read_value().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn strict_grammar_matches_batch_parser() {
        for bad in [
            &b"01"[..],
            b"1.",
            b"-.5",
            b"1e",
            b"[1 2]",
            b"[1,]",
            b"{\"a\" 1}",
            b"\"\\ud83dx\"",
            b"\"\\udc00\"",
            b"truth",
        ] {
            assert!(read_doc(bad).is_err(), "{:?}", std::str::from_utf8(bad));
            assert!(
                crate::from_str::<Value>(std::str::from_utf8(bad).unwrap()).is_err(),
                "batch parser disagrees on {:?}",
                std::str::from_utf8(bad)
            );
        }
        assert_eq!(read_doc(b"-0.5e+2").unwrap(), Value::Float(-50.0));
    }

    #[test]
    fn trailing_characters_are_rejected_by_end() {
        let mut r = JsonReader::new(Drip(b"{} junk"));
        r.begin_object().unwrap();
        assert_eq!(r.next_key().unwrap(), None);
        let err = r.end().unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep: Vec<u8> = b"["
            .iter()
            .cycle()
            .take(100_000)
            .chain(b"]".iter().cycle().take(100_000))
            .copied()
            .collect();
        let mut r = JsonReader::new(&deep[..]);
        let err = r.read_value().unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn raw_spans_reparse_to_the_same_value() {
        let docs: [&[u8]; 6] = [
            br#"{"a": [1, 2.5, -3e2], "b": {"nested": "hi\n\u0041"}}"#,
            br#"[true, false, null, "unicode \ud83d\ude00 ok"]"#,
            b"  -0.5e+2 ",
            b"\"plain\"",
            b"{ }",
            b"[ [ ], { \"k\" : [ 0 ] } ]",
        ];
        for doc in docs {
            let mut r = JsonReader::new(Drip(doc));
            let mut span = Vec::new();
            r.read_raw_value(&mut span).unwrap();
            r.end().unwrap();
            let reparsed: Value = crate::from_str(std::str::from_utf8(&span).unwrap()).unwrap();
            let decoded = read_doc(doc).unwrap();
            assert_eq!(reparsed, decoded, "{:?}", std::str::from_utf8(doc));
        }
    }

    #[test]
    fn raw_scan_errors_match_the_decoding_reader() {
        // every strict-grammar rejection must fail identically (message
        // and offset) whether the value is decoded or raw-scanned
        let bad: [&[u8]; 16] = [
            b"01",
            b"1.",
            b"-.5",
            b"1e",
            b"[1 2]",
            b"[1,]",
            b"{\"a\" 1}",
            b"{\"a\": 1,}",
            b"\"\\ud83dx\"",
            b"\"\\udc00\"",
            b"truth",
            b"\"unterminated",
            b"[1, x]",
            b"{3: 1}",
            b"\"bad \\q escape\"",
            b"{\"a\": [1,",
        ];
        for doc in bad {
            let decode_err = read_doc(doc).unwrap_err();
            let mut r = JsonReader::new(Drip(doc));
            let raw_err = r
                .read_raw_value(&mut Vec::new())
                .err()
                .or_else(|| r.end().err())
                .unwrap_or_else(|| panic!("raw scan accepted {:?}", std::str::from_utf8(doc)));
            assert_eq!(
                raw_err.to_string(),
                decode_err.to_string(),
                "on {:?}",
                std::str::from_utf8(doc)
            );
            assert_eq!(raw_err.byte_offset(), decode_err.byte_offset());
        }
    }

    #[test]
    fn raw_scan_interleaves_with_cursor_walks() {
        // frame the records of a fecs-like array without decoding them
        let doc = br#"{"fecs": [{"n": 1}, {"n": [2, 3]}]}"#;
        let mut r = JsonReader::new(Drip(doc));
        r.begin_object().unwrap();
        assert_eq!(r.next_key().unwrap().as_deref(), Some("fecs"));
        r.begin_array().unwrap();
        let mut spans = Vec::new();
        while r.next_element().unwrap() {
            let mut span = Vec::new();
            r.read_raw_value(&mut span).unwrap();
            spans.push(String::from_utf8(span).unwrap());
        }
        assert_eq!(r.next_key().unwrap(), None);
        r.end().unwrap();
        assert_eq!(spans, vec!["{\"n\": 1}", "{\"n\": [2, 3]}"]);
    }

    #[test]
    fn raw_scan_rejects_deep_nesting() {
        let deep: Vec<u8> = b"[".iter().cycle().take(100_000).copied().collect();
        let mut r = JsonReader::new(&deep[..]);
        let err = r.read_raw_value(&mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn large_strings_cross_refill_boundaries() {
        let long = "x".repeat(3 * CHUNK) + "é☃";
        let doc = crate::to_string(&long).unwrap();
        let back = read_doc(doc.as_bytes()).unwrap();
        assert_eq!(back, Value::Str(long));
    }
}
