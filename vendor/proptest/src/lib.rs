//! Vendored offline stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` API subset this workspace's
//! property tests use, on top of a deterministic splitmix64 generator
//! seeded from the test's module path and name — so failures reproduce
//! across runs without persisted regression files.
//!
//! Intentional simplifications versus real proptest:
//!
//! - **no shrinking** — a failing case reports the panic message only;
//! - string strategies (`input in "\\PC*"`) generate arbitrary printable
//!   strings rather than interpreting the full regex syntax;
//! - collection strategies treat the size bound as a target, so a
//!   `btree_set` may come out smaller when random elements collide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic splitmix64 random source for one property test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (stable across runs and platforms).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // multiply-shift; bias is irrelevant for test-case generation
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A failed (or rejected) test case, carried out of the test body by the
/// `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-block configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a cheaply clonable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng))))
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized + 'static,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng)).generate(rng)))
    }

    /// Recursive strategies: `self` is the leaf; `branch` builds one more
    /// level from the strategy for the levels below. `depth` bounds the
    /// recursion; the size/branch hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let level = branch(strat).boxed();
            strat = Union::new(vec![leaf.clone(), level]).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type (the
/// engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, usize);

macro_rules! strategy_tuples {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String strategies: a `&str` is treated as a *pattern hint* and
/// generates arbitrary printable strings (real proptest interprets the
/// full regex; every pattern this workspace uses denotes "any printable
/// text", so the approximation is faithful where it matters).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', ':', ';', ',', '.', '(', ')', '{',
            '}', '[', ']', '|', '&', '*', '+', '?', '!', '=', '<', '>', '"', '\'', '/', '\\', '#',
            '~', '@', 'é', 'λ', '☃', '路',
        ];
        let len = rng.below(64) as usize;
        (0..len)
            .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
            .collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy(Rc::new(|rng| T::arbitrary(rng)))
}

/// A size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        BoxedStrategy(Rc::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }

    /// A `BTreeSet` with up to `size` elements (duplicates collapse).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<BTreeSet<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: Ord,
    {
        let size = size.into();
        BoxedStrategy(Rc::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::*;

    /// Pick one element of the (non-empty) vector.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        BoxedStrategy(Rc::new(move |rng| {
            options[rng.below(options.len() as u64) as usize].clone()
        }))
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fail the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Fail the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($($config:tt)*)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @config(($($config)*)) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @config(($crate::ProptestConfig::default())) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config($config:tt)) => {};
    (@config(($($config:tt)*))
     $(#[$meta:meta])*
     fn $name:ident ($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $($config)*;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    $crate::__proptest_case!{ @rng(__rng) @body($body) $($params)* };
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ @config(($($config)*)) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (@rng($rng:ident) @body($body:block) $pat:pat in $strategy:expr, $($rest:tt)+) => {{
        let $pat = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_case!{ @rng($rng) @body($body) $($rest)+ }
    }};
    (@rng($rng:ident) @body($body:block) $pat:pat in $strategy:expr $(,)?) => {{
        let $pat = $crate::Strategy::generate(&($strategy), &mut $rng);
        let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
            $body
            #[allow(unreachable_code)]
            ::std::result::Result::Ok(())
        };
        __case()
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        for _ in 0..100 {
            let v = a.below(10);
            assert!(v < 10);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn collections_and_select() {
        let mut rng = TestRng::for_test("coll");
        for _ in 0..50 {
            let v = crate::collection::vec(0usize..5, 1..=3).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            let s = crate::sample::select(vec!["a", "b"]).generate(&mut rng);
            assert!(s == "a" || s == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro binds multiple parameters and supports early return.
        #[test]
        fn macro_binds_params(x in 0usize..10, y in prop_oneof![Just(1usize), Just(2)]) {
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(y * 2 / 2, y);
            prop_assert_ne!(x + y, x);
        }

        #[test]
        fn recursive_strategies_terminate(n in nested_strategy()) {
            prop_assert!(n.depth() <= 4, "depth {}", n.depth());
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf,
        Node(Vec<Tree>),
    }

    impl Tree {
        fn depth(&self) -> usize {
            match self {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(Tree::depth).max().unwrap_or(0),
            }
        }
    }

    fn nested_strategy() -> impl Strategy<Value = Tree> {
        Just(Tree::Leaf).prop_recursive(4, 16, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        })
    }
}
