//! Scale anecdotes from the paper, reproduced as tests.
//!
//! §6.1: "we recorded a flow with 10⁸ interface-level ECMP paths for our
//! backbone ... With this format, the 10⁸ paths of the aforementioned
//! traffic class can be encoded with a DAG with 38 vertices and 50K
//! edges." — the DAG representation and the DAG→FSA construction must
//! handle such classes without enumerating paths.

use rela::automata::SymbolTable;
use rela::net::{graph_to_fsa, Device, ForwardingGraph, Granularity, LocationDb};
use std::time::Instant;

/// Build a 38-vertex DAG whose parallel-edge multiplicity pushes the
/// link-level path count past 10⁸: 19 stages of 2 vertices, consecutive
/// stages fully meshed with 2 parallel links per vertex pair — 4 link
/// choices per hop, 18 hops, 2 sources: ≈ 1.4 × 10¹¹ paths.
fn backbone_monster_fec() -> (ForwardingGraph, LocationDb) {
    let mut db = LocationDb::new();
    let mut g = ForwardingGraph::new();
    const STAGES: usize = 19;
    const WIDTH: usize = 2;
    const PARALLEL: usize = 2;
    let mut prev: Vec<usize> = Vec::new();
    for stage in 0..STAGES {
        let mut this: Vec<usize> = Vec::new();
        for w in 0..WIDTH {
            let name = format!("s{stage}w{w}");
            db.add_device(Device::new(&name, format!("stage{stage}")));
            this.push(g.add_vertex(&name));
        }
        for (&u, &v) in prev.iter().flat_map(|u| this.iter().map(move |v| (u, v))) {
            for p in 0..PARALLEL {
                g.add_edge(u, v, format!("e{u}-{v}-{p}"), format!("i{u}-{v}-{p}"));
            }
        }
        prev = this;
    }
    // source / sink metadata
    g.sources.push(0);
    g.sources.push(1);
    let n = g.vertices.len();
    g.sinks.push(n - 2);
    g.sinks.push(n - 1);
    (g, db)
}

#[test]
fn a_compact_dag_encodes_over_1e8_paths() {
    let (g, _) = backbone_monster_fec();
    assert_eq!(
        g.vertices.len(),
        38,
        "the paper's anecdote: a 38-vertex DAG"
    );
    assert!(g.validate().is_ok());
    let count = g.path_count().expect("acyclic");
    // per stage boundary: 2 next vertices × 2 parallel links = 4 choices;
    // 18 boundaries from each of 2 sources: 2 × 4^18 ≈ 1.4 × 10^11
    assert!(count > 100_000_000, "only {count} paths");
    // …and the edge list stays tiny compared to the path count
    assert!(g.edges.len() < 300, "{} edges", g.edges.len());
}

#[test]
fn fsa_construction_never_enumerates_paths() {
    let (g, db) = backbone_monster_fec();
    let start = Instant::now();
    let mut table = SymbolTable::new();
    let fsa = graph_to_fsa(&g, &db, Granularity::Interface, &mut table);
    let built = start.elapsed();
    // the FSA is linear in the DAG (vertices + one mid-state per edge),
    // not in the 10^10 paths
    assert!(fsa.len() < 2 * g.edges.len() + g.vertices.len() + 8);
    assert!(
        built.as_millis() < 5_000,
        "FSA construction took {built:?} — must not scale with path count"
    );
    // the language is non-empty and paths have the expected hop length
    assert!(!fsa.language_is_empty());
}

#[test]
fn group_level_view_of_the_monster_is_tiny() {
    // the same traffic class at router-group granularity determinizes to
    // a small automaton: the coarse view engineers reason about
    let (g, db) = backbone_monster_fec();
    let mut table = SymbolTable::new();
    let fsa = graph_to_fsa(&g, &db, Granularity::Group, &mut table);
    let dfa = rela::automata::minimize(&rela::automata::determinize(&fsa.trim()));
    // a linear chain of 19 stage-groups: ~20 states
    assert!(dfa.len() <= 21, "{} states", dfa.len());
}
