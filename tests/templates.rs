//! End-to-end verification of the change-template library: every
//! template's correct implementation passes its ground-truth spec, and
//! every buggy implementation fails it — the executable version of the
//! paper's §9.1 expressiveness claim.

use rela::lang::{CheckReport, CheckSession, JobSpec, RelaError, SessionConfig};
use rela::net::{Granularity, LocationDb, SnapshotPair};
use rela::sim::templates::{templates, IntentKind};
use rela::sim::workload::{synthetic_wan, WanParams};
use rela::sim::{configured, simulate};

/// Open a one-job session: the session API equivalent of the old
/// `run_check` helper.
fn run_check(
    spec: &str,
    db: &LocationDb,
    granularity: Granularity,
    pair: &SnapshotPair,
) -> Result<CheckReport, RelaError> {
    let session = CheckSession::open(
        spec,
        db.clone(),
        SessionConfig {
            granularity,
            ..SessionConfig::default()
        },
    )?;
    Ok(session.run(JobSpec::pair(pair)).expect("in-memory pair"))
}

fn params() -> WanParams {
    WanParams {
        regions: 4,
        routers_per_group: 2,
        parallel_links: 2,
        fecs_per_pair: 2,
    }
}

#[test]
fn every_template_accepts_correct_and_rejects_buggy() {
    let params = params();
    let wan = synthetic_wan(&params);
    let (pre, un) = simulate(&wan.topology, &wan.config, &wan.traffic);
    assert!(un.is_empty());

    for template in templates(&params) {
        // correct implementation → compliant
        let cfg = configured(&wan.config, &wan.topology, &template.correct);
        let (post, un) = simulate(&wan.topology, &cfg, &wan.traffic);
        assert!(un.is_empty(), "{}: correct config diverged", template.name);
        let pair = SnapshotPair::align(&pre, &post);
        let report = run_check(
            &template.spec,
            &wan.topology.db,
            template.granularity,
            &pair,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", template.name));
        assert!(
            report.is_compliant(),
            "{}: correct implementation rejected\n{report}",
            template.name
        );

        // buggy implementation → violations
        let (why, changes) = &template.buggy;
        let cfg = configured(&wan.config, &wan.topology, changes);
        let (post, un) = simulate(&wan.topology, &cfg, &wan.traffic);
        assert!(un.is_empty(), "{}: buggy config diverged", template.name);
        let pair = SnapshotPair::align(&pre, &post);
        let report = run_check(
            &template.spec,
            &wan.topology.db,
            template.granularity,
            &pair,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", template.name));
        assert!(
            !report.is_compliant(),
            "{}: buggy implementation accepted ({why})",
            template.name
        );
    }
}

#[test]
fn noop_bug_is_reported_as_nochange_violation() {
    let params = params();
    let wan = synthetic_wan(&params);
    let (pre, _) = simulate(&wan.topology, &wan.config, &wan.traffic);
    let template = templates(&params)
        .into_iter()
        .find(|t| t.kind == IntentKind::NoOp)
        .expect("noop template exists");
    let cfg = configured(&wan.config, &wan.topology, &template.buggy.1);
    let (post, _) = simulate(&wan.topology, &cfg, &wan.traffic);
    let pair = SnapshotPair::align(&pre, &post);
    let report = run_check(
        &template.spec,
        &wan.topology.db,
        template.granularity,
        &pair,
    )
    .expect("compiles");
    // every flow into region 1 blackholes: 3 source regions × 2 FECs
    assert_eq!(report.count_for("nochange"), 6, "{report}");
    for v in &report.violations {
        assert!(v.flow.dst.to_string().starts_with("10.1."), "{}", v.flow);
        assert!(v.post_paths.is_empty(), "blackholed flow still has paths");
    }
}

#[test]
fn filter_bug_shows_the_surviving_path() {
    let params = params();
    let wan = synthetic_wan(&params);
    let (pre, _) = simulate(&wan.topology, &wan.config, &wan.traffic);
    let template = templates(&params)
        .into_iter()
        .find(|t| t.kind == IntentKind::FilterInsertion)
        .expect("filter template exists");
    let cfg = configured(&wan.config, &wan.topology, &template.buggy.1);
    let (post, _) = simulate(&wan.topology, &cfg, &wan.traffic);
    let pair = SnapshotPair::align(&pre, &post);
    let report = run_check(
        &template.spec,
        &wan.topology.db,
        template.granularity,
        &pair,
    )
    .expect("compiles");
    assert!(!report.is_compliant());
    // the counterexample must surface a *delivered* post path (the ECMP
    // sibling that escaped the partial rollout)
    let v = report
        .violations
        .iter()
        .find(|v| v.check_name == "mustDrop")
        .expect("mustDrop violation");
    assert!(
        v.post_paths.iter().any(|p| !p.contains("drop")),
        "expected a surviving delivery path, got {:?}",
        v.post_paths
    );
}
