//! The fixed-seed fault matrix (CI runs this as its own step): the
//! Figure 1 demo pair is checked with every input stream wrapped in a
//! seed-deterministic [`FaultPlan`] injecting short reads and `EINTR`,
//! across both snapshot containers (JSON and RSNB). Every faulted run
//! must produce verdict bytes identical to the unfaulted baseline —
//! I/O weather never changes a verdict, only availability.

use rela::cli::{self, Command};
use rela::lang::{CheckSession, JobSpec, LabeledSource, SessionConfig};
use rela::net::faultio::{FaultPlan, FaultyRead};
use rela::net::{BinarySnapshotWriter, Granularity, SnapshotFramer};
use std::path::PathBuf;

/// Seeds the matrix replays. Fixed, not random: a failure names its
/// seed and replays byte-identically.
const SEEDS: std::ops::RangeInclusive<u64> = 1..=8;

fn demo_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rela-faultmatrix-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cli::run(&Command::Demo { out: dir.clone() }, &mut Vec::new()).expect("demo writes");
    dir
}

/// Pack a canonical JSON snapshot into the RSNB container by raw span
/// moves (the `rela snapshot pack` path, in memory).
fn pack(json: &str) -> Vec<u8> {
    let mut framer = SnapshotFramer::new(json.as_bytes(), "pack");
    let mut writer = BinarySnapshotWriter::new(Vec::new()).unwrap();
    for raw in &mut framer {
        let raw = raw.unwrap();
        let (flow, graph) = raw.split_spans(Some("pack")).unwrap();
        writer.write_raw(flow.as_slice(), graph.as_slice()).unwrap();
    }
    writer.finish().unwrap()
}

fn verdict_bytes(report: &rela::lang::CheckReport) -> String {
    report
        .to_string()
        .lines()
        .filter(|l| !l.starts_with("checked ") && !l.starts_with("behavior classes:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn faulted_streams_are_byte_identical_across_seeds_and_containers() {
    let dir = demo_dir();
    let spec = std::fs::read_to_string(dir.join("change.rela")).unwrap();
    let db: rela::net::LocationDb =
        serde_json::from_str(&std::fs::read_to_string(dir.join("db.json")).unwrap()).unwrap();
    let pre_json = std::fs::read_to_string(dir.join("pre.json")).unwrap();
    let post_json = std::fs::read_to_string(dir.join("post_v2.json")).unwrap();
    let pre_rsnb = pack(&pre_json);
    let post_rsnb = pack(&post_json);

    let session = || -> CheckSession {
        CheckSession::open(
            &spec,
            db.clone(),
            SessionConfig {
                granularity: Granularity::Group,
                threads: 1,
                ..SessionConfig::default()
            },
        )
        .expect("demo spec compiles")
    };

    let baseline = {
        let s = session();
        let report = s
            .run(JobSpec::streams(
                LabeledSource::new(pre_json.as_bytes(), "pre"),
                LabeledSource::new(post_json.as_bytes(), "post"),
            ))
            .expect("unfaulted run succeeds");
        verdict_bytes(&report)
    };

    let containers: [(&str, &[u8], &[u8]); 2] = [
        ("json", pre_json.as_bytes(), post_json.as_bytes()),
        ("rsnb", &pre_rsnb, &post_rsnb),
    ];
    for seed in SEEDS {
        for (container, pre, post) in containers {
            let plan = FaultPlan::parse(&format!("seed={seed},short-read=0.5,eintr=0.25")).unwrap();
            let s = session();
            let report = s
                .run(JobSpec::streams(
                    LabeledSource::new(FaultyRead::new(pre, plan.clone()), "pre"),
                    LabeledSource::new(FaultyRead::new(post, plan), "post"),
                ))
                .unwrap_or_else(|e| panic!("seed {seed}, {container}: {e}"));
            assert_eq!(
                verdict_bytes(&report),
                baseline,
                "seed {seed}, {container}: faults changed the verdict"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
