//! The kill-9-mid-persist harness (tentpole (c), CI `crash-recovery`
//! job): a daemon is SIGKILLed inside the fault-injected window between
//! its store flush's temp-file `fsync` and the atomic rename. The
//! committed store file must survive byte-intact (the interrupted flush
//! either never lands or lands whole — never torn), the dead writer's
//! temp file must be quarantined, not silently deleted, on the next
//! open, and a restarted daemon must warm-replay the surviving verdicts
//! byte-identically.

use rela::cli::{self, Command};
use rela::lang::JobOptions;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Process, Stdio};
use std::time::{Duration, Instant};

fn verdict_bytes(text: &str) -> String {
    text.lines()
        .filter(|l| {
            !l.starts_with("checked ")
                && !l.starts_with("behavior classes:")
                && !l.starts_with("cache:")
                && !l.starts_with("warning:")
                && !l.starts_with("base epoch:")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct Daemon(Option<Child>);

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().ok();
            child.wait().ok();
        }
    }
}

fn spawn_daemon(dir: &Path, socket: &Path, cache: &Path, faults: Option<&str>) -> Daemon {
    let mut cmd = Process::new(env!("CARGO_BIN_EXE_rela"));
    cmd.args(["serve", "--socket"])
        .arg(socket)
        .arg("--spec")
        .arg(dir.join("change.rela"))
        .arg("--db")
        .arg(dir.join("db.json"))
        .arg("--cache-dir")
        .arg(cache)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = faults {
        cmd.env("RELA_FAULTS", spec);
    }
    let daemon = Daemon(Some(cmd.spawn().expect("daemon spawns")));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if cli::run(
            &Command::Ping {
                socket: socket.to_path_buf(),
            },
            &mut Vec::new(),
        )
        .is_ok()
        {
            return daemon;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn submit(socket: &Path, dir: &Path, post: &str) -> (i32, String) {
    let mut sink = Vec::new();
    let code = cli::run(
        &Command::Submit {
            socket: socket.to_path_buf(),
            pre: dir.join("pre.json"),
            post: dir.join(post),
            delta: None,
            job: JobOptions::default(),
            cache_stats: true,
            retry: rela::client::RetryPolicy::default(),
        },
        &mut sink,
    )
    .expect("submit succeeds");
    (code, String::from_utf8(sink).unwrap())
}

fn cache_files(cache: &Path, marker: &str) -> Vec<PathBuf> {
    std::fs::read_dir(cache)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.contains(marker))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn kill_9_mid_persist_never_corrupts_the_store_and_warm_replay_survives() {
    let dir = std::env::temp_dir().join(format!("rela-crashrec-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cli::run(&Command::Demo { out: dir.clone() }, &mut Vec::new()).expect("demo writes");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");

    // daemon 1: the first flush commits clean, the second stalls for
    // 30s in the window between temp-file fsync and rename — the
    // harness SIGKILLs it there
    let daemon = spawn_daemon(&dir, &socket, &cache, Some("pause=persist:30000@2"));

    let (code, first_reply) = submit(&socket, &dir, "post_v2.json");
    assert_eq!(code, 1, "{first_reply}");
    // the flush happens after the reply is sent — wait for the commit
    let store_file = {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let committed: Vec<PathBuf> = cache_files(&cache, "verdicts-");
            if let Some(p) = committed
                .iter()
                .find(|p| p.extension().is_some_and(|e| e == "json"))
            {
                break p.clone();
            }
            assert!(
                Instant::now() < deadline,
                "the first flush never committed a store file"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    let committed_bytes = std::fs::read(&store_file).unwrap();

    // job 2 dirties the store again; its flush enters the stall
    let (code, _) = submit(&socket, &dir, "post_v4.json");
    assert_eq!(code, 0);
    let deadline = Instant::now() + Duration::from_secs(20);
    while cache_files(&cache, ".tmp.").is_empty() {
        assert!(
            Instant::now() < deadline,
            "the stalled flush never produced its temp file"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // SIGKILL inside the window: no drain, no cleanup, no rename
    drop(daemon);

    // the committed store survives byte-intact; the dead writer's temp
    // file is the only crash artifact
    assert_eq!(std::fs::read(&store_file).unwrap(), committed_bytes);
    assert_eq!(cache_files(&cache, ".tmp.").len(), 1);
    assert!(cache_files(&cache, ".quarantine.").is_empty());

    // daemon 2 (no faults): open-time recovery quarantines the torn
    // flush instead of silently deleting it, then serves warm
    let _daemon = spawn_daemon(&dir, &socket, &cache, None);
    assert_eq!(
        cache_files(&cache, ".quarantine.").len(),
        1,
        "the dead writer's temp file is evidence, not garbage"
    );
    // the quarantined file keeps its `.tmp.` name under the
    // `.quarantine.<n>` suffix — no *live* temp file may remain
    assert!(cache_files(&cache, ".tmp.")
        .iter()
        .all(|p| p.to_string_lossy().contains(".quarantine.")));

    // job 1's verdicts were in the committed flush: the resubmission
    // replays every class warm, byte-identical to the pre-crash reply
    let (code, replay) = submit(&socket, &dir, "post_v2.json");
    assert_eq!(code, 1, "{replay}");
    assert_eq!(verdict_bytes(&replay), verdict_bytes(&first_reply));
    let cache_line = replay
        .lines()
        .find(|l| l.starts_with("cache: "))
        .expect("cache stats line");
    let counts: Vec<usize> = cache_line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    assert!(counts[1] > 0, "{cache_line}");
    assert_eq!(
        counts[0], counts[1],
        "every class must replay warm from the surviving store: {cache_line}"
    );

    // job 2's verdicts died with the torn flush — they recompute (no
    // silent wrong answers), they are just cold again
    let (code, recomputed) = submit(&socket, &dir, "post_v4.json");
    assert_eq!(code, 0, "{recomputed}");

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    std::fs::remove_dir_all(&dir).ok();
}
