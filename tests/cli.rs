//! End-to-end CLI test: drive `rela::cli::parse_args`/`run` over real
//! files on disk — the quickstart example's network and spec — and
//! assert the three exit-code contracts the change pipeline relies on:
//! 0 = compliant, 1 = violations found, 2 = usage/input error.

use rela::cli::{parse_args, run, Command};
use rela::net::{linear_graph, Device, FlowSpec, LocationDb, Snapshot};
use std::path::{Path, PathBuf};

/// The quickstart scenario (`examples/quickstart.rs`): web traffic moves
/// from B1 to A2, DNS must stay put.
const SPEC: &str = r#"
    spec moveWeb := { x1 .* y1 : replace(x1 B1 y1, x1 A2 y1) }
    spec nochange := { .* : preserve }
    pspec webP := (dstPrefix == 10.1.0.0/24) -> moveWeb
    check nochange
"#;

struct Workdir {
    dir: PathBuf,
}

impl Workdir {
    fn new(tag: &str) -> Workdir {
        let dir = std::env::temp_dir().join(format!("rela-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create workdir");
        Workdir { dir }
    }

    fn write(&self, name: &str, contents: String) -> PathBuf {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).expect("write input file");
        path
    }
}

impl Drop for Workdir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn quickstart_inputs(work: &Workdir) -> (PathBuf, PathBuf, PathBuf) {
    let mut db = LocationDb::new();
    for name in ["x1", "A2", "B1", "y1"] {
        db.add_device(Device::new(name, name));
    }
    let web = FlowSpec::new("10.1.0.0/24".parse().unwrap(), "x1");
    let dns = FlowSpec::new("10.2.0.0/24".parse().unwrap(), "x1");

    let mut pre = Snapshot::new();
    pre.insert(web.clone(), linear_graph(&["x1", "B1", "y1"]));
    pre.insert(dns.clone(), linear_graph(&["x1", "B1", "y1"]));

    // correct implementation: only web moved
    let mut post_good = Snapshot::new();
    post_good.insert(web.clone(), linear_graph(&["x1", "A2", "y1"]));
    post_good.insert(dns.clone(), linear_graph(&["x1", "B1", "y1"]));

    // buggy implementation: DNS moved too (collateral damage)
    let mut post_bad = Snapshot::new();
    post_bad.insert(web, linear_graph(&["x1", "A2", "y1"]));
    post_bad.insert(dns, linear_graph(&["x1", "A2", "y1"]));

    let db_path = work.write("db.json", serde_json::to_string(&db).unwrap());
    work.write("spec.rela", SPEC.to_owned());
    work.write("pre.json", pre.to_json().unwrap());
    let good = work.write("post_good.json", post_good.to_json().unwrap());
    let bad = work.write("post_bad.json", post_bad.to_json().unwrap());
    (db_path, good, bad)
}

fn check_cmd(work: &Workdir, db: &Path, post: &Path) -> Command {
    parse_args(&[
        "check".to_owned(),
        "--spec".to_owned(),
        work.dir.join("spec.rela").display().to_string(),
        "--db".to_owned(),
        db.display().to_string(),
        "--pre".to_owned(),
        work.dir.join("pre.json").display().to_string(),
        "--post".to_owned(),
        post.display().to_string(),
        "--granularity".to_owned(),
        "device".to_owned(),
    ])
    .expect("valid command line")
}

#[test]
fn compliant_change_exits_zero() {
    let work = Workdir::new("ok");
    let (db, good, _) = quickstart_inputs(&work);
    let mut out = Vec::new();
    let code = run(&check_cmd(&work, &db, &good), &mut out).expect("runs");
    let text = String::from_utf8(out).unwrap();
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("PASS"), "{text}");
}

#[test]
fn violating_change_exits_one_with_counterexample() {
    let work = Workdir::new("violation");
    let (db, _, bad) = quickstart_inputs(&work);
    let mut out = Vec::new();
    let code = run(&check_cmd(&work, &db, &bad), &mut out).expect("runs");
    let text = String::from_utf8(out).unwrap();
    assert_eq!(code, 1, "{text}");
    // the collateral-damage flow must be attributed in the report
    assert!(text.contains("10.2.0.0/24"), "{text}");
}

#[test]
fn usage_and_input_errors_exit_two() {
    // unknown flag value / missing required flag → parse error, code 2
    let err = parse_args(&["check".to_owned(), "--spec".to_owned(), "x".to_owned()])
        .expect_err("incomplete command line");
    assert_eq!(err.code, 2);

    // well-formed command line over missing files → input error, code 2
    let work = Workdir::new("missing");
    let (db, good, _) = quickstart_inputs(&work);
    let mut cmd = check_cmd(&work, &db, &good);
    match &mut cmd {
        Command::Check { spec, .. } => *spec = work.dir.join("nonexistent.rela"),
        other => panic!("unexpected {other:?}"),
    }
    let mut out = Vec::new();
    let err = run(&cmd, &mut out).expect_err("missing spec file");
    assert_eq!(err.code, 2);

    // unparseable spec → input error, code 2
    let work2 = Workdir::new("badspec");
    let (db2, good2, _) = quickstart_inputs(&work2);
    work2.write("spec.rela", "spec oops := { : }".to_owned());
    let mut out = Vec::new();
    let err = run(&check_cmd(&work2, &db2, &good2), &mut out).expect_err("invalid spec");
    assert_eq!(err.code, 2);
}
