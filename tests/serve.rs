//! End-to-end tests for the resident verification service: N concurrent
//! clients against one warm daemon get replies byte-identical to a
//! one-shot `rela check`, warm resubmission replays every class from the
//! store, and `SIGTERM` drains gracefully — the in-flight job finishes,
//! new submissions are refused, and the daemon exits 0.

use rela::cli::{self, Command};
use rela::lang::JobOptions;
use rela::proto::{read_frame, write_frame, KIND_ERROR, KIND_JOB, KIND_PRE, KIND_REPORT};
use serde::Serialize;
use std::io::Read as _;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Process, Stdio};
use std::time::{Duration, Instant};

/// Strip timing/counter lines: what must be byte-identical across
/// engines, cache states, and the serve path.
fn verdict_bytes(text: &str) -> String {
    text.lines()
        .filter(|l| {
            !l.starts_with("checked ")
                && !l.starts_with("behavior classes:")
                && !l.starts_with("cache:")
                && !l.starts_with("warning:")
                && !l.starts_with("base epoch:")
                && !l.starts_with("delta base not retained")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Write the Figure 1 demo inputs into a fresh temp dir.
fn demo_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rela-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cli::run(&Command::Demo { out: dir.clone() }, &mut Vec::new()).expect("demo writes");
    dir
}

/// A spawned daemon that is SIGKILLed and reaped if a test panics
/// before its clean-drain assertions run, so a failing test never
/// leaks a resident process (or a zombie).
struct Daemon(Option<Child>);

impl Daemon {
    fn id(&self) -> u32 {
        self.0.as_ref().expect("daemon not yet reaped").id()
    }

    /// Hand the child back for the clean-exit assertions; the guard no
    /// longer kills it.
    fn into_inner(mut self) -> Child {
        self.0.take().expect("daemon not yet reaped")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().ok();
            child.wait().ok();
        }
    }
}

/// Spawn `rela serve` on `socket` and wait until it answers pings.
fn spawn_daemon(dir: &Path, socket: &Path, cache_dir: Option<&Path>) -> Daemon {
    spawn_daemon_with(dir, socket, cache_dir, &[])
}

/// [`spawn_daemon`] with extra `rela serve` flags (retention knobs) and
/// environment variables (`RELA_FAULTS` fault plans).
fn spawn_daemon_with(
    dir: &Path,
    socket: &Path,
    cache_dir: Option<&Path>,
    extra: &[&str],
) -> Daemon {
    spawn_daemon_env(dir, socket, cache_dir, extra, &[])
}

fn spawn_daemon_env(
    dir: &Path,
    socket: &Path,
    cache_dir: Option<&Path>,
    extra: &[&str],
    env: &[(&str, &str)],
) -> Daemon {
    let mut cmd = Process::new(env!("CARGO_BIN_EXE_rela"));
    cmd.args(["serve", "--socket"])
        .arg(socket)
        .arg("--spec")
        .arg(dir.join("change.rela"))
        .arg("--db")
        .arg(dir.join("db.json"))
        .args(extra)
        .envs(env.iter().copied())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(cache) = cache_dir {
        cmd.arg("--cache-dir").arg(cache);
    }
    let daemon = Daemon(Some(cmd.spawn().expect("daemon spawns")));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if cli::run(
            &Command::Ping {
                socket: socket.to_path_buf(),
            },
            &mut Vec::new(),
        )
        .is_ok()
        {
            return daemon;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Submit and hand back the typed failure instead of panicking — for
/// the error-path tests (deadline, panic, draining).
fn try_submit(
    socket: &Path,
    dir: &Path,
    post: &str,
    job: JobOptions,
) -> Result<(i32, String), cli::CliError> {
    let mut sink = Vec::new();
    let code = cli::run(
        &Command::Submit {
            socket: socket.to_path_buf(),
            pre: dir.join("pre.json"),
            post: dir.join(post),
            delta: None,
            job,
            cache_stats: false,
            retry: rela::client::RetryPolicy::default(),
        },
        &mut sink,
    )?;
    Ok((code, String::from_utf8(sink).unwrap()))
}

fn submit(socket: &Path, dir: &Path, post: &str, cache_stats: bool) -> (i32, String) {
    let mut sink = Vec::new();
    let code = cli::run(
        &Command::Submit {
            socket: socket.to_path_buf(),
            pre: dir.join("pre.json"),
            post: dir.join(post),
            delta: None,
            job: JobOptions::default(),
            cache_stats,
            retry: rela::client::RetryPolicy::default(),
        },
        &mut sink,
    )
    .expect("submit succeeds");
    (code, String::from_utf8(sink).unwrap())
}

/// Submit with delta documents against `base` (full pair stays the
/// fallback); always asks for cache stats so callers can read the
/// decode counters and the daemon's next base epoch.
fn submit_delta(
    socket: &Path,
    dir: &Path,
    post: &str,
    base: &str,
    delta_pre: &Path,
    delta_post: &Path,
) -> (i32, String) {
    let mut sink = Vec::new();
    let code = cli::run(
        &Command::Submit {
            socket: socket.to_path_buf(),
            pre: dir.join("pre.json"),
            post: dir.join(post),
            delta: Some((delta_pre.to_path_buf(), delta_post.to_path_buf())),
            job: JobOptions {
                delta_base: Some(base.parse::<rela::net::SnapshotEpoch>().unwrap().as_u128()),
                ..JobOptions::default()
            },
            cache_stats: true,
            retry: rela::client::RetryPolicy::default(),
        },
        &mut sink,
    )
    .expect("submit succeeds");
    (code, String::from_utf8(sink).unwrap())
}

/// Pull one `name: value`-style stat off a submit --cache-stats tail.
fn stat_line<'t>(text: &'t str, prefix: &str) -> &'t str {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no `{prefix}` line in: {text}"))
}

/// Poll the daemon's status line until it contains `needle`.
fn wait_for_ping(socket: &Path, needle: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut sink = Vec::new();
        let answered = cli::run(
            &Command::Ping {
                socket: socket.to_path_buf(),
            },
            &mut sink,
        )
        .is_ok();
        if answered && String::from_utf8(sink).unwrap().contains(needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reported {needle:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_exit(daemon: Daemon, socket: &Path) {
    let status = daemon.into_inner().wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "drained daemon must exit 0");
    assert!(!socket.exists(), "socket must be unlinked after drain");
}

#[test]
fn concurrent_submits_match_one_shot_and_replay_warm() {
    let dir = demo_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");

    // ground truth: a one-shot `rela check` of the same pair
    let mut sink = Vec::new();
    let one_shot_code = cli::run(
        &Command::Check {
            spec: dir.join("change.rela"),
            db: dir.join("db.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v2.json"),
            granularity: rela::net::Granularity::Group,
            threads: 1,
            job: JobOptions::default(),
            cache_dir: None,
            cache_stats: false,
        },
        &mut sink,
    )
    .expect("one-shot check runs");
    assert_eq!(one_shot_code, 1, "post_v2 has violations (Table 1)");
    let one_shot = String::from_utf8(sink).unwrap();

    let daemon = spawn_daemon(&dir, &socket, Some(&cache));

    // N concurrent clients, one warm daemon: every reply byte-identical
    let replies: Vec<(i32, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| submit(&socket, &dir, "post_v2.json", false)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (code, text) in &replies {
        assert_eq!(*code, 1, "{text}");
        assert_eq!(
            verdict_bytes(text),
            verdict_bytes(&one_shot),
            "daemon reply diverged from one-shot check"
        );
    }

    // resubmission replays every class from the warm store
    let (code, text) = submit(&socket, &dir, "post_v2.json", true);
    assert_eq!(code, 1, "{text}");
    let cache_line = text
        .lines()
        .find(|l| l.starts_with("cache: "))
        .expect("submit --cache-stats prints a cache line");
    let mut counts = cache_line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<usize>().unwrap());
    let warm_hits = counts.next().expect("warm hits count");
    let classes = counts.next().expect("classes count");
    assert!(classes > 0, "{cache_line}");
    assert_eq!(
        warm_hits, classes,
        "warm resubmit must replay every class: {cache_line}"
    );
    assert_eq!(verdict_bytes(&text), verdict_bytes(&one_shot));

    // a different iteration through the same session still agrees with
    // its own one-shot check (v4 is the compliant one)
    let (code, _) = submit(&socket, &dir, "post_v4.json", false);
    assert_eq!(code, 0, "post_v4 is compliant");

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    let ack = String::from_utf8(sink).unwrap();
    assert!(ack.contains("draining"), "{ack}");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// The §8.1 delta-first iteration loop end-to-end: a full submission
/// seeds the daemon's retained base, `rela snapshot diff` computes the
/// same epoch client-side, a delta submission is byte-identical to the
/// full-pair path while decoding only the changed records, an unchanged
/// delta decodes nothing at all, and a stale base falls back to full
/// snapshots without failing the submit.
#[test]
fn delta_submission_matches_full_and_skips_unchanged_decodes() {
    let dir = demo_dir("delta");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");
    // single-slot retention: the stale-base section below relies on the
    // seed epoch being evicted as soon as the base advances
    let daemon = spawn_daemon_with(&dir, &socket, Some(&cache), &["--retain-epochs", "1"]);

    // cache-stats counters come back as: warm hits, classes, fst memo
    // hits, graph decodes
    let counters = |text: &str| -> Vec<usize> {
        stat_line(text, "cache: ")
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect()
    };
    let epoch_of = |text: &str| -> String {
        stat_line(text, "base epoch: ")
            .trim_start_matches("base epoch: ")
            .to_owned()
    };

    // seed the daemon's retained base with a full (pre, v2) submission
    let (code, seeded) = submit(&socket, &dir, "post_v2.json", true);
    assert_eq!(code, 1, "{seeded}");
    let base_v2 = epoch_of(&seeded);
    assert!(counters(&seeded)[3] > 0, "a cold ingest decodes: {seeded}");

    // the client-side scan agrees with the epoch the daemon retained —
    // two parties, no coordination, same content-derived identity
    let mut sink = Vec::new();
    cli::run(
        &Command::SnapshotDiff {
            base_pre: dir.join("pre.json"),
            base_post: dir.join("post_v2.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v4.json"),
            out_pre: dir.join("delta_pre.json"),
            out_post: dir.join("delta_post.json"),
        },
        &mut sink,
    )
    .expect("snapshot diff runs");
    let diffed = String::from_utf8(sink).unwrap();
    assert_eq!(epoch_of(&diffed), base_v2, "{diffed}");
    let post_changed: usize = stat_line(&diffed, "post delta: ")
        .trim_start_matches("post delta: ")
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(post_changed > 0, "{diffed}");

    // ground truth: a one-shot check of the next iteration (pre, v4)
    let mut sink = Vec::new();
    let one_shot_code = cli::run(
        &Command::Check {
            spec: dir.join("change.rela"),
            db: dir.join("db.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v4.json"),
            granularity: rela::net::Granularity::Group,
            threads: 1,
            job: JobOptions::default(),
            cache_dir: None,
            cache_stats: false,
        },
        &mut sink,
    )
    .expect("one-shot check runs");
    assert_eq!(one_shot_code, 0, "post_v4 is compliant");
    let one_shot_v4 = String::from_utf8(sink).unwrap();

    // delta submission: the negotiation accepts, the reply is
    // byte-identical to the full-pair path, and only the changed
    // records were ever decoded
    let (code, delta_text) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &base_v2,
        &dir.join("delta_pre.json"),
        &dir.join("delta_post.json"),
    );
    assert_eq!(code, 0, "{delta_text}");
    assert!(
        !delta_text.contains("sending full snapshots"),
        "negotiation must accept the retained base: {delta_text}"
    );
    assert_eq!(verdict_bytes(&delta_text), verdict_bytes(&one_shot_v4));
    let delta_decodes = counters(&delta_text)[3];
    assert!(
        delta_decodes <= 2 * post_changed,
        "a delta decodes only the changed pairs ({post_changed} changed): {delta_text}"
    );
    let base_v4 = epoch_of(&delta_text);
    assert_ne!(base_v4, base_v2, "the retained base advances");

    // an unchanged iteration: empty deltas, zero graph decodes, every
    // class replayed warm
    let mut sink = Vec::new();
    cli::run(
        &Command::SnapshotDiff {
            base_pre: dir.join("pre.json"),
            base_post: dir.join("post_v4.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v4.json"),
            out_pre: dir.join("delta_pre2.json"),
            out_post: dir.join("delta_post2.json"),
        },
        &mut sink,
    )
    .expect("snapshot diff runs");
    assert_eq!(epoch_of(&String::from_utf8(sink).unwrap()), base_v4);
    let (code, unchanged) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &base_v4,
        &dir.join("delta_pre2.json"),
        &dir.join("delta_post2.json"),
    );
    assert_eq!(code, 0, "{unchanged}");
    let stats = counters(&unchanged);
    let (warm_hits, classes, decodes) = (stats[0], stats[1], stats[3]);
    assert_eq!(decodes, 0, "unchanged classes never decode: {unchanged}");
    assert!(classes > 0, "{unchanged}");
    assert_eq!(warm_hits, classes, "{unchanged}");
    assert_eq!(verdict_bytes(&unchanged), verdict_bytes(&one_shot_v4));

    // a stale base (the daemon has moved on) falls back to the full
    // pair and still completes with identical verdicts
    let (code, stale) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &base_v2,
        &dir.join("delta_pre.json"),
        &dir.join("delta_post.json"),
    );
    assert_eq!(code, 0, "{stale}");
    assert!(
        stale.contains("sending full snapshots"),
        "a stale base must miss: {stale}"
    );
    assert_eq!(verdict_bytes(&stale), verdict_bytes(&one_shot_v4));

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_submission_reports_job_id_and_offset() {
    let dir = demo_dir("malformed");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);

    let mut stream = UnixStream::connect(&socket).expect("connects");
    let options = serde_json::to_string(&JobOptions::default().to_value()).unwrap();
    write_frame(&mut stream, KIND_JOB, options.as_bytes()).unwrap();
    write_frame(&mut stream, KIND_PRE, b"{\"fecs\": [this is not json").unwrap();
    write_frame(&mut stream, KIND_PRE, b"").unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, b"{\"fecs\": []}").unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, b"").unwrap();
    match read_frame(&mut stream).unwrap() {
        Some((kind, payload)) => {
            let text = String::from_utf8(payload).unwrap();
            assert_eq!(kind, KIND_ERROR, "{text}");
            // the diagnostic names the daemon-assigned job, the side,
            // and where in the stream decoding failed
            assert!(text.contains("job-1:pre"), "{text}");
            assert!(text.contains("byte"), "{text}");
        }
        None => panic!("expected an error reply"),
    }
    drop(stream);

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_in_flight_job_and_refuses_new_ones() {
    let dir = demo_dir("drain");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);

    // start a job by hand and leave it mid-snapshot
    let mut stream = UnixStream::connect(&socket).expect("connects");
    let options = serde_json::to_string(&JobOptions::default().to_value()).unwrap();
    write_frame(&mut stream, KIND_JOB, options.as_bytes()).unwrap();
    let pre = std::fs::read(dir.join("pre.json")).unwrap();
    let (head, tail) = pre.split_at(pre.len() / 2);
    write_frame(&mut stream, KIND_PRE, head).unwrap();

    // wait until the daemon has actually started the job — a SIGTERM
    // racing the accept would (correctly) drain with nothing in flight
    wait_for_ping(&socket, ", 1 in flight,");

    // SIGTERM mid-job: the daemon must drain, not die
    let pid = daemon.id().to_string();
    let killed = Process::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    // wait until the daemon reports itself draining
    wait_for_ping(&socket, "draining: true");

    // new submissions are refused while draining
    let mut refused = UnixStream::connect(&socket).expect("still accepting connections");
    write_frame(&mut refused, KIND_JOB, options.as_bytes()).unwrap();
    match read_frame(&mut refused).unwrap() {
        Some((kind, payload)) => {
            assert_eq!(kind, KIND_ERROR);
            let text = String::from_utf8(payload).unwrap();
            assert!(text.contains("draining"), "{text}");
        }
        None => panic!("expected a draining error reply"),
    }
    drop(refused);

    // `rela submit` surfaces the refusal as its own exit code so a
    // deploy pipeline can tell "back off and wait" from "bad input"
    let err = try_submit(&socket, &dir, "post_v4.json", JobOptions::default())
        .expect_err("a draining daemon refuses submissions");
    assert_eq!(err.code, 6, "{}", err.message);
    assert!(err.message.contains("draining"), "{}", err.message);

    // the in-flight job runs to completion and gets its report
    write_frame(&mut stream, KIND_PRE, tail).unwrap();
    write_frame(&mut stream, KIND_PRE, b"").unwrap();
    let post = std::fs::read(dir.join("post_v4.json")).unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, &post).unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, b"").unwrap();
    match read_frame(&mut stream).unwrap() {
        Some((kind, payload)) => {
            assert_eq!(kind, KIND_REPORT, "{}", String::from_utf8_lossy(&payload));
            let text = String::from_utf8(payload).unwrap();
            assert!(text.contains("\"exit\":0"), "{text}");
        }
        None => panic!("expected the in-flight job's report"),
    }
    drop(stream);

    // with the last connection gone the drain completes
    let mut child = daemon.into_inner();
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("daemon never drained");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0));
    assert!(!socket.exists(), "socket must be unlinked after drain");
    let mut out = String::new();
    child.stdout.take().unwrap().read_to_string(&mut out).ok();
    assert!(out.contains("drained after 1 job(s)"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole (b) end-to-end: a fault plan panics the engine on the first
/// job's first class decision. The client gets a typed `panic` error
/// (exit 5) naming the job; the daemon survives and serves the *same*
/// job again byte-identically to a one-shot check.
#[test]
fn a_panicking_job_is_contained_and_the_daemon_keeps_serving() {
    let dir = demo_dir("panic");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon_env(
        &dir,
        &socket,
        None,
        &[],
        &[("RELA_FAULTS", "panic=decide@1")],
    );

    let mut sink = Vec::new();
    let one_shot_code = cli::run(
        &Command::Check {
            spec: dir.join("change.rela"),
            db: dir.join("db.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v2.json"),
            granularity: rela::net::Granularity::Group,
            threads: 1,
            job: JobOptions::default(),
            cache_dir: None,
            cache_stats: false,
        },
        &mut sink,
    )
    .expect("one-shot check runs");
    assert_eq!(one_shot_code, 1);
    let one_shot = String::from_utf8(sink).unwrap();

    let err = try_submit(&socket, &dir, "post_v2.json", JobOptions::default())
        .expect_err("the injected panic must fail the job");
    assert_eq!(err.code, 5, "{}", err.message);
    assert!(err.message.contains("job-1"), "{}", err.message);
    assert!(err.message.contains("panicked"), "{}", err.message);
    assert!(err.message.contains("injected fault"), "{}", err.message);

    // the daemon is still alive and the fault was one-shot: the very
    // same submission now completes, byte-identical to the one-shot
    let (code, text) =
        try_submit(&socket, &dir, "post_v2.json", JobOptions::default()).expect("daemon survived");
    assert_eq!(code, 1, "{text}");
    assert_eq!(verdict_bytes(&text), verdict_bytes(&one_shot));

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole (b): a `deadline_ms` that already expired aborts the job
/// cooperatively — typed `deadline` error, exit 4 — and the session
/// keeps serving jobs without it.
#[test]
fn an_expired_deadline_exits_4_and_the_daemon_survives() {
    let dir = demo_dir("deadline");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);

    let err = try_submit(
        &socket,
        &dir,
        "post_v2.json",
        JobOptions {
            deadline_ms: Some(0),
            ..JobOptions::default()
        },
    )
    .expect_err("a 0ms deadline must abort the job");
    assert_eq!(err.code, 4, "{}", err.message);
    assert!(err.message.contains("deadline"), "{}", err.message);

    let (code, text) =
        try_submit(&socket, &dir, "post_v4.json", JobOptions::default()).expect("daemon survived");
    assert_eq!(code, 0, "{text}");

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole (d) end-to-end: with the default `--retain-epochs 2` two
/// interleaved delta chains — one pinned to (pre, v2), one to (pre, v4)
/// — both take the delta path with zero misses; a third full pair then
/// evicts the older epoch, whose next delta degrades to a full resubmit
/// with an identical report.
#[test]
fn two_retained_epochs_serve_interleaved_delta_chains() {
    let dir = demo_dir("kepoch");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");
    // a verdict store, so unchanged delta classes replay warm instead
    // of re-deciding (that's what makes the 0-decode assertion honest)
    let daemon = spawn_daemon(&dir, &socket, Some(&cache));

    let epoch_of = |text: &str| -> String {
        stat_line(text, "base epoch: ")
            .trim_start_matches("base epoch: ")
            .to_owned()
    };
    let decodes_of = |text: &str| -> usize {
        stat_line(text, "cache: ")
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .nth(3)
            .unwrap()
    };
    let diff_self = |post: &str, out: &str| -> String {
        let mut sink = Vec::new();
        cli::run(
            &Command::SnapshotDiff {
                base_pre: dir.join("pre.json"),
                base_post: dir.join(post),
                pre: dir.join("pre.json"),
                post: dir.join(post),
                out_pre: dir.join(format!("{out}_pre.json")),
                out_post: dir.join(format!("{out}_post.json")),
            },
            &mut sink,
        )
        .expect("snapshot diff runs");
        epoch_of(&String::from_utf8(sink).unwrap())
    };

    // two clients' epochs: (pre, v2) then (pre, v4) — both retained
    let (code, full_v2) = submit(&socket, &dir, "post_v2.json", true);
    assert_eq!(code, 1, "{full_v2}");
    let epoch_v2 = epoch_of(&full_v2);
    let (code, full_v4) = submit(&socket, &dir, "post_v4.json", true);
    assert_eq!(code, 0, "{full_v4}");
    let epoch_v4 = epoch_of(&full_v4);
    assert_ne!(epoch_v2, epoch_v4);

    // client 1 iterates against its v2 base: delta accepted, nothing
    // decoded, report identical to the full submission
    assert_eq!(diff_self("post_v2.json", "delta_a"), epoch_v2);
    let (code, text) = submit_delta(
        &socket,
        &dir,
        "post_v2.json",
        &epoch_v2,
        &dir.join("delta_a_pre.json"),
        &dir.join("delta_a_post.json"),
    );
    assert_eq!(code, 1, "{text}");
    assert!(
        !text.contains("sending full snapshots"),
        "v2 epoch must still be retained under K=2: {text}"
    );
    assert_eq!(
        decodes_of(&text),
        0,
        "an empty delta decodes nothing: {text}"
    );
    assert_eq!(verdict_bytes(&text), verdict_bytes(&full_v2));

    // client 2 interleaves against its v4 base: also zero misses
    assert_eq!(diff_self("post_v4.json", "delta_b"), epoch_v4);
    let (code, text) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &epoch_v4,
        &dir.join("delta_b_pre.json"),
        &dir.join("delta_b_post.json"),
    );
    assert_eq!(code, 0, "{text}");
    assert!(
        !text.contains("sending full snapshots"),
        "v4 epoch must still be retained under K=2: {text}"
    );
    assert_eq!(decodes_of(&text), 0, "{text}");
    assert_eq!(verdict_bytes(&text), verdict_bytes(&full_v4));

    // a third distinct pair evicts the oldest epoch (v2); its verdict
    // (the no-op change violates the spec) is not what's under test
    let (code, text) = submit(&socket, &dir, "pre.json", false);
    assert!(code <= 1, "{text}");

    // ... so client 1's next delta degrades to a full resubmit — same
    // report, no failure, just no longer work-proportional
    let (code, text) = submit_delta(
        &socket,
        &dir,
        "post_v2.json",
        &epoch_v2,
        &dir.join("delta_a_pre.json"),
        &dir.join("delta_a_post.json"),
    );
    assert_eq!(code, 1, "{text}");
    assert!(
        text.contains("sending full snapshots"),
        "the evicted epoch must miss: {text}"
    );
    assert_eq!(verdict_bytes(&text), verdict_bytes(&full_v2));

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a client that dies mid-RSNB-transfer must not leak its
/// spool file — the daemon removes it on the disconnect path and keeps
/// serving.
#[test]
fn a_client_disconnect_mid_spool_leaves_no_temp_files() {
    let dir = demo_dir("spool");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);
    let daemon_pid = daemon.id();

    // open a job whose pre side sniffs as an RSNB body, then vanish
    let mut stream = UnixStream::connect(&socket).expect("connects");
    let options = serde_json::to_string(&JobOptions::default().to_value()).unwrap();
    write_frame(&mut stream, KIND_JOB, options.as_bytes()).unwrap();
    let mut chunk = rela::net::BINARY_MAGIC.to_vec();
    chunk.extend_from_slice(&[0u8; 4096]);
    write_frame(&mut stream, KIND_PRE, &chunk).unwrap();
    drop(stream);

    // the daemon notices the dead peer and cleans its spool up
    let spool_prefix = format!("rela-serve-{daemon_pid}-job");
    let spools = || -> Vec<String> {
        std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with(&spool_prefix))
            .collect()
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while !spools().is_empty() {
        assert!(
            Instant::now() < deadline,
            "spool files leaked: {:?}",
            spools()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // and it still serves
    let (code, _) = submit(&socket, &dir, "post_v4.json", false);
    assert_eq!(code, 0);

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: startup sweeps RSNB spool files abandoned by *dead*
/// daemons (pid no longer in /proc) and leaves live writers' files
/// alone.
#[test]
fn startup_sweeps_spools_of_dead_daemons_only() {
    let tmp = std::env::temp_dir();
    // a u32 pid far above any real one: certainly not in /proc
    let dead = tmp.join("rela-serve-4294000001-job1-pre.rsnb");
    std::fs::write(&dead, b"RSNBleftovers").unwrap();
    // our own pid is alive, so this one must survive the sweep
    let live = tmp.join(format!("rela-serve-{}-job999-pre.rsnb", std::process::id()));
    std::fs::write(&live, b"RSNBinflight").unwrap();

    let dir = demo_dir("sweep");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);

    assert!(!dead.exists(), "dead daemon's spool must be swept");
    assert!(live.exists(), "live writer's spool must be kept");
    std::fs::remove_file(&live).ok();

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// A malformed `RELA_FAULTS` spec is a startup error (exit 2), not a
/// daemon that silently runs un-faulted.
#[test]
fn a_malformed_fault_spec_fails_startup() {
    let dir = demo_dir("badfaults");
    let socket = dir.join("daemon.sock");
    let status = Process::new(env!("CARGO_BIN_EXE_rela"))
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--spec")
        .arg(dir.join("change.rela"))
        .arg("--db")
        .arg(dir.join("db.json"))
        .env("RELA_FAULTS", "panic=decide@0")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("daemon spawns");
    assert_eq!(status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole (e): transport failures retry with backoff. Against a
/// socket nobody serves, each refused connect is retried the configured
/// number of times before the submit fails.
#[test]
fn refused_connects_retry_with_backoff_then_fail() {
    let dir = demo_dir("retrydead");
    let socket = dir.join("nobody-home.sock");
    let mut sink = Vec::new();
    let err = cli::run(
        &Command::Submit {
            socket: socket.clone(),
            pre: dir.join("pre.json"),
            post: dir.join("post_v2.json"),
            delta: None,
            job: JobOptions::default(),
            cache_stats: false,
            retry: rela::client::RetryPolicy {
                retries: 2,
                delay_ms: 1,
            },
        },
        &mut sink,
    )
    .expect_err("no daemon: the submit must fail");
    assert_eq!(err.code, 2, "{}", err.message);
    let log = String::from_utf8(sink).unwrap();
    assert!(log.contains("submit attempt 1 failed"), "{log}");
    assert!(log.contains("submit attempt 2 failed"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole (e): a submit that starts before the daemon exists succeeds
/// once the daemon comes up within the retry budget.
#[test]
fn retries_ride_out_a_daemon_that_starts_late() {
    let dir = demo_dir("retrylate");
    let socket = dir.join("daemon.sock");

    let submit_thread = {
        let (socket, dir) = (socket.clone(), dir.clone());
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let code = cli::run(
                &Command::Submit {
                    socket,
                    pre: dir.join("pre.json"),
                    post: dir.join("post_v4.json"),
                    delta: None,
                    job: JobOptions::default(),
                    cache_stats: false,
                    retry: rela::client::RetryPolicy {
                        retries: 40,
                        delay_ms: 100,
                    },
                },
                &mut sink,
            );
            (code, String::from_utf8(sink).unwrap())
        })
    };
    std::thread::sleep(Duration::from_millis(300));
    let daemon = spawn_daemon(&dir, &socket, None);

    let (code, log) = submit_thread.join().expect("submit thread");
    let code = code.unwrap_or_else(|e| panic!("{}: {log}", e.message));
    assert_eq!(code, 0, "{log}");
    assert!(log.contains("retrying in"), "{log}");

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}
