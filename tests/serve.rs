//! End-to-end tests for the resident verification service: N concurrent
//! clients against one warm daemon get replies byte-identical to a
//! one-shot `rela check`, warm resubmission replays every class from the
//! store, and `SIGTERM` drains gracefully — the in-flight job finishes,
//! new submissions are refused, and the daemon exits 0.

use rela::cli::{self, Command};
use rela::lang::JobOptions;
use rela::proto::{read_frame, write_frame, KIND_ERROR, KIND_JOB, KIND_PRE, KIND_REPORT};
use serde::Serialize;
use std::io::Read as _;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Process, Stdio};
use std::time::{Duration, Instant};

/// Strip timing/counter lines: what must be byte-identical across
/// engines, cache states, and the serve path.
fn verdict_bytes(text: &str) -> String {
    text.lines()
        .filter(|l| {
            !l.starts_with("checked ")
                && !l.starts_with("behavior classes:")
                && !l.starts_with("cache:")
                && !l.starts_with("warning:")
                && !l.starts_with("base epoch:")
                && !l.starts_with("delta base not retained")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Write the Figure 1 demo inputs into a fresh temp dir.
fn demo_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rela-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cli::run(&Command::Demo { out: dir.clone() }, &mut Vec::new()).expect("demo writes");
    dir
}

/// A spawned daemon that is SIGKILLed and reaped if a test panics
/// before its clean-drain assertions run, so a failing test never
/// leaks a resident process (or a zombie).
struct Daemon(Option<Child>);

impl Daemon {
    fn id(&self) -> u32 {
        self.0.as_ref().expect("daemon not yet reaped").id()
    }

    /// Hand the child back for the clean-exit assertions; the guard no
    /// longer kills it.
    fn into_inner(mut self) -> Child {
        self.0.take().expect("daemon not yet reaped")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().ok();
            child.wait().ok();
        }
    }
}

/// Spawn `rela serve` on `socket` and wait until it answers pings.
fn spawn_daemon(dir: &Path, socket: &Path, cache_dir: Option<&Path>) -> Daemon {
    let mut cmd = Process::new(env!("CARGO_BIN_EXE_rela"));
    cmd.args(["serve", "--socket"])
        .arg(socket)
        .arg("--spec")
        .arg(dir.join("change.rela"))
        .arg("--db")
        .arg(dir.join("db.json"))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(cache) = cache_dir {
        cmd.arg("--cache-dir").arg(cache);
    }
    let daemon = Daemon(Some(cmd.spawn().expect("daemon spawns")));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if cli::run(
            &Command::Ping {
                socket: socket.to_path_buf(),
            },
            &mut Vec::new(),
        )
        .is_ok()
        {
            return daemon;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn submit(socket: &Path, dir: &Path, post: &str, cache_stats: bool) -> (i32, String) {
    let mut sink = Vec::new();
    let code = cli::run(
        &Command::Submit {
            socket: socket.to_path_buf(),
            pre: dir.join("pre.json"),
            post: dir.join(post),
            delta: None,
            job: JobOptions::default(),
            cache_stats,
        },
        &mut sink,
    )
    .expect("submit succeeds");
    (code, String::from_utf8(sink).unwrap())
}

/// Submit with delta documents against `base` (full pair stays the
/// fallback); always asks for cache stats so callers can read the
/// decode counters and the daemon's next base epoch.
fn submit_delta(
    socket: &Path,
    dir: &Path,
    post: &str,
    base: &str,
    delta_pre: &Path,
    delta_post: &Path,
) -> (i32, String) {
    let mut sink = Vec::new();
    let code = cli::run(
        &Command::Submit {
            socket: socket.to_path_buf(),
            pre: dir.join("pre.json"),
            post: dir.join(post),
            delta: Some((delta_pre.to_path_buf(), delta_post.to_path_buf())),
            job: JobOptions {
                delta_base: Some(base.parse::<rela::net::SnapshotEpoch>().unwrap().as_u128()),
                ..JobOptions::default()
            },
            cache_stats: true,
        },
        &mut sink,
    )
    .expect("submit succeeds");
    (code, String::from_utf8(sink).unwrap())
}

/// Pull one `name: value`-style stat off a submit --cache-stats tail.
fn stat_line<'t>(text: &'t str, prefix: &str) -> &'t str {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no `{prefix}` line in: {text}"))
}

/// Poll the daemon's status line until it contains `needle`.
fn wait_for_ping(socket: &Path, needle: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut sink = Vec::new();
        let answered = cli::run(
            &Command::Ping {
                socket: socket.to_path_buf(),
            },
            &mut sink,
        )
        .is_ok();
        if answered && String::from_utf8(sink).unwrap().contains(needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reported {needle:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_exit(daemon: Daemon, socket: &Path) {
    let status = daemon.into_inner().wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "drained daemon must exit 0");
    assert!(!socket.exists(), "socket must be unlinked after drain");
}

#[test]
fn concurrent_submits_match_one_shot_and_replay_warm() {
    let dir = demo_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");

    // ground truth: a one-shot `rela check` of the same pair
    let mut sink = Vec::new();
    let one_shot_code = cli::run(
        &Command::Check {
            spec: dir.join("change.rela"),
            db: dir.join("db.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v2.json"),
            granularity: rela::net::Granularity::Group,
            threads: 1,
            job: JobOptions::default(),
            cache_dir: None,
            cache_stats: false,
        },
        &mut sink,
    )
    .expect("one-shot check runs");
    assert_eq!(one_shot_code, 1, "post_v2 has violations (Table 1)");
    let one_shot = String::from_utf8(sink).unwrap();

    let daemon = spawn_daemon(&dir, &socket, Some(&cache));

    // N concurrent clients, one warm daemon: every reply byte-identical
    let replies: Vec<(i32, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| submit(&socket, &dir, "post_v2.json", false)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (code, text) in &replies {
        assert_eq!(*code, 1, "{text}");
        assert_eq!(
            verdict_bytes(text),
            verdict_bytes(&one_shot),
            "daemon reply diverged from one-shot check"
        );
    }

    // resubmission replays every class from the warm store
    let (code, text) = submit(&socket, &dir, "post_v2.json", true);
    assert_eq!(code, 1, "{text}");
    let cache_line = text
        .lines()
        .find(|l| l.starts_with("cache: "))
        .expect("submit --cache-stats prints a cache line");
    let mut counts = cache_line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<usize>().unwrap());
    let warm_hits = counts.next().expect("warm hits count");
    let classes = counts.next().expect("classes count");
    assert!(classes > 0, "{cache_line}");
    assert_eq!(
        warm_hits, classes,
        "warm resubmit must replay every class: {cache_line}"
    );
    assert_eq!(verdict_bytes(&text), verdict_bytes(&one_shot));

    // a different iteration through the same session still agrees with
    // its own one-shot check (v4 is the compliant one)
    let (code, _) = submit(&socket, &dir, "post_v4.json", false);
    assert_eq!(code, 0, "post_v4 is compliant");

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    let ack = String::from_utf8(sink).unwrap();
    assert!(ack.contains("draining"), "{ack}");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

/// The §8.1 delta-first iteration loop end-to-end: a full submission
/// seeds the daemon's retained base, `rela snapshot diff` computes the
/// same epoch client-side, a delta submission is byte-identical to the
/// full-pair path while decoding only the changed records, an unchanged
/// delta decodes nothing at all, and a stale base falls back to full
/// snapshots without failing the submit.
#[test]
fn delta_submission_matches_full_and_skips_unchanged_decodes() {
    let dir = demo_dir("delta");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");
    let daemon = spawn_daemon(&dir, &socket, Some(&cache));

    // cache-stats counters come back as: warm hits, classes, fst memo
    // hits, graph decodes
    let counters = |text: &str| -> Vec<usize> {
        stat_line(text, "cache: ")
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect()
    };
    let epoch_of = |text: &str| -> String {
        stat_line(text, "base epoch: ")
            .trim_start_matches("base epoch: ")
            .to_owned()
    };

    // seed the daemon's retained base with a full (pre, v2) submission
    let (code, seeded) = submit(&socket, &dir, "post_v2.json", true);
    assert_eq!(code, 1, "{seeded}");
    let base_v2 = epoch_of(&seeded);
    assert!(counters(&seeded)[3] > 0, "a cold ingest decodes: {seeded}");

    // the client-side scan agrees with the epoch the daemon retained —
    // two parties, no coordination, same content-derived identity
    let mut sink = Vec::new();
    cli::run(
        &Command::SnapshotDiff {
            base_pre: dir.join("pre.json"),
            base_post: dir.join("post_v2.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v4.json"),
            out_pre: dir.join("delta_pre.json"),
            out_post: dir.join("delta_post.json"),
        },
        &mut sink,
    )
    .expect("snapshot diff runs");
    let diffed = String::from_utf8(sink).unwrap();
    assert_eq!(epoch_of(&diffed), base_v2, "{diffed}");
    let post_changed: usize = stat_line(&diffed, "post delta: ")
        .trim_start_matches("post delta: ")
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(post_changed > 0, "{diffed}");

    // ground truth: a one-shot check of the next iteration (pre, v4)
    let mut sink = Vec::new();
    let one_shot_code = cli::run(
        &Command::Check {
            spec: dir.join("change.rela"),
            db: dir.join("db.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v4.json"),
            granularity: rela::net::Granularity::Group,
            threads: 1,
            job: JobOptions::default(),
            cache_dir: None,
            cache_stats: false,
        },
        &mut sink,
    )
    .expect("one-shot check runs");
    assert_eq!(one_shot_code, 0, "post_v4 is compliant");
    let one_shot_v4 = String::from_utf8(sink).unwrap();

    // delta submission: the negotiation accepts, the reply is
    // byte-identical to the full-pair path, and only the changed
    // records were ever decoded
    let (code, delta_text) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &base_v2,
        &dir.join("delta_pre.json"),
        &dir.join("delta_post.json"),
    );
    assert_eq!(code, 0, "{delta_text}");
    assert!(
        !delta_text.contains("sending full snapshots"),
        "negotiation must accept the retained base: {delta_text}"
    );
    assert_eq!(verdict_bytes(&delta_text), verdict_bytes(&one_shot_v4));
    let delta_decodes = counters(&delta_text)[3];
    assert!(
        delta_decodes <= 2 * post_changed,
        "a delta decodes only the changed pairs ({post_changed} changed): {delta_text}"
    );
    let base_v4 = epoch_of(&delta_text);
    assert_ne!(base_v4, base_v2, "the retained base advances");

    // an unchanged iteration: empty deltas, zero graph decodes, every
    // class replayed warm
    let mut sink = Vec::new();
    cli::run(
        &Command::SnapshotDiff {
            base_pre: dir.join("pre.json"),
            base_post: dir.join("post_v4.json"),
            pre: dir.join("pre.json"),
            post: dir.join("post_v4.json"),
            out_pre: dir.join("delta_pre2.json"),
            out_post: dir.join("delta_post2.json"),
        },
        &mut sink,
    )
    .expect("snapshot diff runs");
    assert_eq!(epoch_of(&String::from_utf8(sink).unwrap()), base_v4);
    let (code, unchanged) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &base_v4,
        &dir.join("delta_pre2.json"),
        &dir.join("delta_post2.json"),
    );
    assert_eq!(code, 0, "{unchanged}");
    let stats = counters(&unchanged);
    let (warm_hits, classes, decodes) = (stats[0], stats[1], stats[3]);
    assert_eq!(decodes, 0, "unchanged classes never decode: {unchanged}");
    assert!(classes > 0, "{unchanged}");
    assert_eq!(warm_hits, classes, "{unchanged}");
    assert_eq!(verdict_bytes(&unchanged), verdict_bytes(&one_shot_v4));

    // a stale base (the daemon has moved on) falls back to the full
    // pair and still completes with identical verdicts
    let (code, stale) = submit_delta(
        &socket,
        &dir,
        "post_v4.json",
        &base_v2,
        &dir.join("delta_pre.json"),
        &dir.join("delta_post.json"),
    );
    assert_eq!(code, 0, "{stale}");
    assert!(
        stale.contains("sending full snapshots"),
        "a stale base must miss: {stale}"
    );
    assert_eq!(verdict_bytes(&stale), verdict_bytes(&one_shot_v4));

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_submission_reports_job_id_and_offset() {
    let dir = demo_dir("malformed");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);

    let mut stream = UnixStream::connect(&socket).expect("connects");
    let options = serde_json::to_string(&JobOptions::default().to_value()).unwrap();
    write_frame(&mut stream, KIND_JOB, options.as_bytes()).unwrap();
    write_frame(&mut stream, KIND_PRE, b"{\"fecs\": [this is not json").unwrap();
    write_frame(&mut stream, KIND_PRE, b"").unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, b"{\"fecs\": []}").unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, b"").unwrap();
    match read_frame(&mut stream).unwrap() {
        Some((kind, payload)) => {
            let text = String::from_utf8(payload).unwrap();
            assert_eq!(kind, KIND_ERROR, "{text}");
            // the diagnostic names the daemon-assigned job, the side,
            // and where in the stream decoding failed
            assert!(text.contains("job-1:pre"), "{text}");
            assert!(text.contains("byte"), "{text}");
        }
        None => panic!("expected an error reply"),
    }
    drop(stream);

    let mut sink = Vec::new();
    cli::run(
        &Command::Shutdown {
            socket: socket.clone(),
        },
        &mut sink,
    )
    .expect("shutdown is acknowledged");
    wait_exit(daemon, &socket);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_in_flight_job_and_refuses_new_ones() {
    let dir = demo_dir("drain");
    let socket = dir.join("daemon.sock");
    let daemon = spawn_daemon(&dir, &socket, None);

    // start a job by hand and leave it mid-snapshot
    let mut stream = UnixStream::connect(&socket).expect("connects");
    let options = serde_json::to_string(&JobOptions::default().to_value()).unwrap();
    write_frame(&mut stream, KIND_JOB, options.as_bytes()).unwrap();
    let pre = std::fs::read(dir.join("pre.json")).unwrap();
    let (head, tail) = pre.split_at(pre.len() / 2);
    write_frame(&mut stream, KIND_PRE, head).unwrap();

    // wait until the daemon has actually started the job — a SIGTERM
    // racing the accept would (correctly) drain with nothing in flight
    wait_for_ping(&socket, ", 1 in flight,");

    // SIGTERM mid-job: the daemon must drain, not die
    let pid = daemon.id().to_string();
    let killed = Process::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    // wait until the daemon reports itself draining
    wait_for_ping(&socket, "draining: true");

    // new submissions are refused while draining
    let mut refused = UnixStream::connect(&socket).expect("still accepting connections");
    write_frame(&mut refused, KIND_JOB, options.as_bytes()).unwrap();
    match read_frame(&mut refused).unwrap() {
        Some((kind, payload)) => {
            assert_eq!(kind, KIND_ERROR);
            let text = String::from_utf8(payload).unwrap();
            assert!(text.contains("draining"), "{text}");
        }
        None => panic!("expected a draining error reply"),
    }
    drop(refused);

    // the in-flight job runs to completion and gets its report
    write_frame(&mut stream, KIND_PRE, tail).unwrap();
    write_frame(&mut stream, KIND_PRE, b"").unwrap();
    let post = std::fs::read(dir.join("post_v4.json")).unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, &post).unwrap();
    write_frame(&mut stream, rela::proto::KIND_POST, b"").unwrap();
    match read_frame(&mut stream).unwrap() {
        Some((kind, payload)) => {
            assert_eq!(kind, KIND_REPORT, "{}", String::from_utf8_lossy(&payload));
            let text = String::from_utf8(payload).unwrap();
            assert!(text.contains("\"exit\":0"), "{text}");
        }
        None => panic!("expected the in-flight job's report"),
    }
    drop(stream);

    // with the last connection gone the drain completes
    let mut child = daemon.into_inner();
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("daemon never drained");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0));
    assert!(!socket.exists(), "socket must be unlinked after drain");
    let mut out = String::new();
    child.stdout.take().unwrap().read_to_string(&mut out).ok();
    assert!(out.contains("drained after 1 job(s)"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}
