//! The ingest-identity property of the delta-first pipeline: a full
//! JSON snapshot, its binary packing, and a delta against a retained
//! base are three encodings of the same pair, so every combination of
//! container × ingest mode × pipeline depth must produce byte-identical
//! reports — and a corrupted byte stream must fail with the same
//! labelled, offset-addressed error no matter which engine path hits
//! it first.

use rela::lang::{
    CheckReport, CheckSession, IngestMode, JobOptions, JobSpec, LabeledSource, SessionConfig,
};
use rela::net::{BinarySnapshotWriter, Granularity, MmapSource, SnapshotFramer};
use rela::sim::workload::{iteration_deltas, spec_of_size, synthetic_wan, WanParams};

fn params() -> WanParams {
    WanParams {
        regions: 3,
        routers_per_group: 1,
        parallel_links: 1,
        fecs_per_pair: 4,
    }
}

/// The three snapshot encodings of one evaluation pair: the canonical
/// JSON text, its binary packing, and (for the second iteration) the
/// delta documents against the first.
struct Fixture {
    spec: String,
    db: rela::net::LocationDb,
    pre_json: String,
    post_seed_json: String,
    post_json: String,
    base_epoch: rela::net::SnapshotEpoch,
    delta_pre: Vec<u8>,
    delta_post: Vec<u8>,
}

fn fixture() -> Fixture {
    let params = params();
    let wan = synthetic_wan(&params);
    let di = iteration_deltas(&wan, &params, 2);
    Fixture {
        spec: spec_of_size(4, params.regions),
        db: wan.topology.db,
        pre_json: di.pre.to_json().unwrap(),
        post_seed_json: di.posts[0].to_json().unwrap(),
        post_json: di.posts[1].to_json().unwrap(),
        base_epoch: di.deltas[0].base,
        delta_pre: di.deltas[0].pre_doc.clone(),
        delta_post: di.deltas[0].post_doc.clone(),
    }
}

fn session(fx: &Fixture, retain_base: bool) -> CheckSession {
    CheckSession::open(
        &fx.spec,
        fx.db.clone(),
        SessionConfig {
            granularity: Granularity::Group,
            threads: 1,
            retain_bases: usize::from(retain_base),
            ..SessionConfig::default()
        },
    )
    .unwrap()
}

/// Pack a canonical JSON snapshot into the binary container by raw
/// span moves — the `rela snapshot pack` path, in memory.
fn pack(json: &str) -> Vec<u8> {
    let mut framer = SnapshotFramer::new(json.as_bytes(), "pack");
    let mut writer = BinarySnapshotWriter::new(Vec::new()).unwrap();
    for raw in &mut framer {
        let raw = raw.unwrap();
        let (flow, graph) = raw.split_spans(Some("pack")).unwrap();
        writer.write_raw(flow.as_slice(), graph.as_slice()).unwrap();
    }
    writer.finish().unwrap()
}

/// Verdict bytes: the report minus its timing- and stats-bearing lines
/// (the filter every engine-equivalence test uses).
fn verdict_bytes(report: &CheckReport) -> String {
    report
        .to_string()
        .lines()
        .filter(|l| !l.starts_with("checked ") && !l.starts_with("behavior classes:"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn stream_job<'a>(pre: &'a [u8], post: &'a [u8], ingest: IngestMode) -> JobSpec<'a> {
    JobSpec::streams(
        LabeledSource::new(pre, "pre"),
        LabeledSource::new(post, "post"),
    )
    .with_options(JobOptions {
        ingest,
        ..JobOptions::default()
    })
}

/// Spool `bytes` to a temp file, memory-map it, and unlink the file —
/// the zero-copy ingest path a mapped RSNB container rides (the mapping
/// keeps the pages alive past the unlink).
fn mapped(bytes: &[u8], label: &str) -> LabeledSource<'static> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SPOOL: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "rela-ingest-identity-{}-{}",
        std::process::id(),
        SPOOL.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&path, bytes).unwrap();
    let map = MmapSource::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    LabeledSource::mapped(map, label)
}

fn mapped_job(pre: &[u8], post: &[u8], ingest: IngestMode) -> JobSpec<'static> {
    JobSpec::streams(mapped(pre, "pre"), mapped(post, "post")).with_options(JobOptions {
        ingest,
        ..JobOptions::default()
    })
}

#[test]
fn every_container_mode_and_depth_agrees_with_materialized_json() {
    let fx = fixture();
    let binary_pre = pack(&fx.pre_json);
    let binary_post = pack(&fx.post_json);
    let baseline = session(&fx, false)
        .run(stream_job(
            fx.pre_json.as_bytes(),
            fx.post_json.as_bytes(),
            IngestMode::Materialized,
        ))
        .unwrap();
    assert!(!baseline.is_compliant(), "the change must be visible");
    let containers: [(&str, &[u8], &[u8]); 2] = [
        ("json", fx.pre_json.as_bytes(), fx.post_json.as_bytes()),
        ("binary", &binary_pre, &binary_post),
    ];
    let modes = [
        IngestMode::Materialized,
        IngestMode::Serial,
        IngestMode::Pipelined { depth: 0 },
        IngestMode::Pipelined { depth: 1 },
        IngestMode::Pipelined { depth: 2 },
        IngestMode::Pipelined { depth: 7 },
    ];
    for (container, pre, post) in containers {
        for mode in modes {
            let report = session(&fx, false)
                .run(stream_job(pre, post, mode))
                .unwrap();
            assert_eq!(
                verdict_bytes(&report),
                verdict_bytes(&baseline),
                "{container} × {mode:?} diverged from materialized JSON"
            );
            // the same container through a memory mapping: zero-copy
            // framing for pipelined RSNB, the stream adapter otherwise
            let report = session(&fx, false)
                .run(mapped_job(pre, post, mode))
                .unwrap();
            assert_eq!(
                verdict_bytes(&report),
                verdict_bytes(&baseline),
                "{container}-mmap × {mode:?} diverged from materialized JSON"
            );
        }
    }
}

#[test]
fn delta_submission_agrees_with_both_containers() {
    let fx = fixture();
    let s = session(&fx, true);
    // seed the retained base with the first iteration's pair
    s.run(stream_job(
        fx.pre_json.as_bytes(),
        fx.post_seed_json.as_bytes(),
        IngestMode::default(),
    ))
    .unwrap();
    assert_eq!(s.base_epoch(), Some(fx.base_epoch));
    let delta_report = s
        .run(
            JobSpec::deltas(
                LabeledSource::new(&fx.delta_pre[..], "delta:pre"),
                LabeledSource::new(&fx.delta_post[..], "delta:post"),
            )
            .with_options(JobOptions {
                delta_base: Some(fx.base_epoch.as_u128()),
                ..JobOptions::default()
            }),
        )
        .unwrap();
    let full = session(&fx, false)
        .run(stream_job(
            fx.pre_json.as_bytes(),
            fx.post_json.as_bytes(),
            IngestMode::Materialized,
        ))
        .unwrap();
    assert_eq!(verdict_bytes(&delta_report), verdict_bytes(&full));
    let binary = session(&fx, false)
        .run(stream_job(
            &pack(&fx.pre_json),
            &pack(&fx.post_json),
            IngestMode::Pipelined { depth: 0 },
        ))
        .unwrap();
    assert_eq!(verdict_bytes(&delta_report), verdict_bytes(&binary));
}

/// Deterministic truncation points spread over `len` bytes, always
/// including the mid-header and one-byte-short extremes.
fn truncation_points(len: usize) -> Vec<usize> {
    let mut points = vec![3.min(len), len.saturating_sub(1)];
    let mut x = 0x9e37_79b9_u64;
    for _ in 0..12 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        points.push((x % len as u64) as usize);
    }
    points.sort_unstable();
    points.dedup();
    points
}

#[test]
fn truncation_errors_keep_the_label_offset_contract_in_every_container() {
    let fx = fixture();
    let containers: [(&str, Vec<u8>, Vec<u8>); 2] = [
        (
            "json",
            fx.pre_json.clone().into_bytes(),
            fx.post_json.clone().into_bytes(),
        ),
        ("binary", pack(&fx.pre_json), pack(&fx.post_json)),
    ];
    for (container, pre, post) in &containers {
        for cut in truncation_points(post.len()) {
            let clipped = &post[..cut];
            // the serial and pipelined engines must surface the same
            // labelled, offset-addressed error for the same corruption
            let serial = session(&fx, false)
                .run(stream_job(pre, clipped, IngestMode::Serial))
                .unwrap_err();
            let pipelined = session(&fx, false)
                .run(stream_job(pre, clipped, IngestMode::Pipelined { depth: 2 }))
                .unwrap_err();
            for err in [&serial, &pipelined] {
                assert_eq!(
                    err.label(),
                    Some("post"),
                    "{container} cut at {cut}: wrong label ({err})"
                );
                assert!(
                    err.byte_offset().is_some(),
                    "{container} cut at {cut}: no byte offset ({err})"
                );
            }
            assert_eq!(
                serial.to_string(),
                pipelined.to_string(),
                "{container} cut at {cut}: serial and pipelined errors diverged"
            );
            // a truncated *mapped* container must surface the identical
            // error: the in-place framer shares the buffered framer's
            // offset/entry contract byte for byte
            let mapped_err = session(&fx, false)
                .run(
                    JobSpec::streams(LabeledSource::new(&pre[..], "pre"), mapped(clipped, "post"))
                        .with_options(JobOptions {
                            ingest: IngestMode::Pipelined { depth: 2 },
                            ..JobOptions::default()
                        }),
                )
                .unwrap_err();
            assert_eq!(
                serial.to_string(),
                mapped_err.to_string(),
                "{container} cut at {cut}: mapped and buffered errors diverged"
            );
        }
    }
}

#[test]
fn truncated_delta_documents_keep_the_error_contract() {
    let fx = fixture();
    for cut in truncation_points(fx.delta_post.len()) {
        let s = session(&fx, true);
        s.run(stream_job(
            fx.pre_json.as_bytes(),
            fx.post_seed_json.as_bytes(),
            IngestMode::default(),
        ))
        .unwrap();
        let err = s
            .run(
                JobSpec::deltas(
                    LabeledSource::new(&fx.delta_pre[..], "delta:pre"),
                    LabeledSource::new(&fx.delta_post[..cut], "delta:post"),
                )
                .with_options(JobOptions {
                    delta_base: Some(fx.base_epoch.as_u128()),
                    ..JobOptions::default()
                }),
            )
            .unwrap_err();
        assert_eq!(err.label(), Some("delta:post"), "cut at {cut}: {err}");
        assert!(
            err.byte_offset().is_some(),
            "cut at {cut}: no offset ({err})"
        );
        // a cut inside the records array addresses the broken entry
        if err.to_string().contains("entry") {
            assert!(err.entry_index().is_some(), "cut at {cut}: {err}");
        }
    }
}
