//! Integration tests for the evaluation pipeline behind Figures 5–7:
//! the synthetic WAN simulates and converges, every generated change
//! spec parses/compiles/checks at its intended granularity, and the
//! whole flow survives a JSON round trip (the file-based interface the
//! paper's toolchain uses, §7).

use rela::lang::{CheckReport, CheckSession, JobSpec, RelaError, SessionConfig};
use rela::net::{Granularity, LocationDb, Snapshot, SnapshotPair};
use rela::sim::workload::{evaluation_specs, spec_of_size, synthetic_wan, WanParams};
use rela::sim::{configured, simulate};

/// Open a one-job session: the session API equivalent of the old
/// `run_check` helper.
fn run_check(
    spec: &str,
    db: &LocationDb,
    granularity: Granularity,
    pair: &SnapshotPair,
) -> Result<CheckReport, RelaError> {
    let session = CheckSession::open(
        spec,
        db.clone(),
        SessionConfig {
            granularity,
            ..SessionConfig::default()
        },
    )?;
    Ok(session.run(JobSpec::pair(pair)).expect("in-memory pair"))
}

fn small_params() -> WanParams {
    WanParams {
        regions: 4,
        routers_per_group: 2,
        parallel_links: 2,
        fecs_per_pair: 2,
    }
}

fn testbed() -> (rela::sim::Topology, SnapshotPair) {
    let wan = synthetic_wan(&small_params());
    let (pre, un) = simulate(&wan.topology, &wan.config, &wan.traffic);
    assert!(un.is_empty());
    let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
    let (post, un) = simulate(&wan.topology, &post_cfg, &wan.traffic);
    assert!(un.is_empty());
    let pair = SnapshotPair::align(&pre, &post);
    (wan.topology, pair)
}

#[test]
fn every_evaluation_spec_validates_end_to_end() {
    let (topology, pair) = testbed();
    let specs = evaluation_specs(&small_params());
    assert_eq!(specs.len(), 30);
    for spec in &specs {
        let report = run_check(&spec.source, &topology.db, spec.granularity, &pair)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}\n{}", spec.id, spec.source));
        assert_eq!(report.total, pair.len(), "{}", spec.id);
    }
}

#[test]
fn representative_change_is_caught_by_nochange() {
    // the ACL insertion must be visible to the N=1 "no change" spec —
    // otherwise Fig. 6's violation columns would be vacuous
    let (topology, pair) = testbed();
    let report = run_check(
        &spec_of_size(1, small_params().regions),
        &topology.db,
        Granularity::Group,
        &pair,
    )
    .expect("compiles");
    assert!(!report.is_compliant());
    assert!(report.count_for("nochange") > 0);
    // and the affected flows are exactly the filtered destination
    for v in &report.violations {
        assert!(
            v.flow.dst.to_string().starts_with("10.1.0"),
            "unexpected violating flow {}",
            v.flow
        );
    }
}

#[test]
fn spec_sizes_compile_at_all_granularities() {
    let (topology, pair) = testbed();
    for n in [1usize, 4, 7] {
        for granularity in [
            Granularity::Group,
            Granularity::Device,
            Granularity::Interface,
        ] {
            let report = run_check(
                &spec_of_size(n, small_params().regions),
                &topology.db,
                granularity,
                &pair,
            )
            .unwrap_or_else(|e| panic!("N={n} at {granularity}: {e}"));
            assert_eq!(report.total, pair.len());
        }
    }
}

#[test]
fn snapshots_survive_json_roundtrip_with_identical_verdicts() {
    let (topology, pair) = testbed();
    // serialize both sides, re-load, re-align, and compare reports
    let pre: Snapshot = pair
        .fecs
        .iter()
        .map(|f| (f.flow.clone(), f.pre.clone()))
        .collect();
    let post: Snapshot = pair
        .fecs
        .iter()
        .map(|f| (f.flow.clone(), f.post.clone()))
        .collect();
    let pre2 = Snapshot::from_json(&pre.to_json().unwrap()).unwrap();
    let post2 = Snapshot::from_json(&post.to_json().unwrap()).unwrap();
    let pair2 = SnapshotPair::align(&pre2, &post2);
    assert_eq!(pair.len(), pair2.len());

    let spec = spec_of_size(4, small_params().regions);
    let r1 = run_check(&spec, &topology.db, Granularity::Group, &pair).unwrap();
    let r2 = run_check(&spec, &topology.db, Granularity::Group, &pair2).unwrap();
    assert_eq!(r1.total, r2.total);
    assert_eq!(r1.compliant, r2.compliant);
    assert_eq!(r1.part_counts, r2.part_counts);
    let flows1: Vec<_> = r1.violations.iter().map(|v| &v.flow).collect();
    let flows2: Vec<_> = r2.violations.iter().map(|v| &v.flow).collect();
    assert_eq!(flows1, flows2);
}

#[test]
fn interface_granularity_is_strictly_finer() {
    // an intra-group ECMP re-balance is invisible at group level but
    // visible at interface level — the Fig. 7 cost has a payoff
    let params = small_params();
    let wan = synthetic_wan(&params);
    let (pre, _) = simulate(&wan.topology, &wan.config, &wan.traffic);
    // raise the cost of R0C–R1C trunk links so different members win;
    // at group granularity paths keep the same group sequence
    let change = vec![rela::sim::ConfigChange::SetGroupLinkCost {
        group_a: "R0C".into(),
        group_b: "R1C".into(),
        cost: 6,
    }];
    let (post, _) = simulate(
        &wan.topology,
        &configured(&wan.config, &wan.topology, &change),
        &wan.traffic,
    );
    let pair = SnapshotPair::align(&pre, &post);
    let nochange = spec_of_size(1, params.regions);
    let group_report =
        run_check(&nochange, &wan.topology.db, Granularity::Group, &pair).expect("compiles");
    let iface_report =
        run_check(&nochange, &wan.topology.db, Granularity::Interface, &pair).expect("compiles");
    // finer granularity can only reveal more differences
    assert!(
        iface_report.violations.len() >= group_report.violations.len(),
        "interface {} < group {}",
        iface_report.violations.len(),
        group_report.violations.len()
    );
}

#[test]
fn path_limit_extension_on_the_wan() {
    // the WAN's parallel trunks give multi-path flows; a tight limit
    // flags them, a loose one passes — end to end through the parser
    let (topology, pair) = testbed();
    let tight = "limit ecmp := 1\ncheck ecmp";
    let report = run_check(tight, &topology.db, Granularity::Group, &pair).unwrap();
    assert!(!report.is_compliant(), "parallel trunks exceed 1 path");
    let loose = "limit ecmp := 1000000\ncheck ecmp";
    let report = run_check(loose, &topology.db, Granularity::Group, &pair).unwrap();
    assert!(report.is_compliant());
}

#[test]
fn declared_spec_sizes_match_ast_counts() {
    // cross-validate the workload generator's declared atomic counts
    // against the parser+AST counting (two independent implementations
    // of the Fig. 5 metric)
    for spec in evaluation_specs(&small_params()) {
        let program =
            rela::lang::parse_program(&spec.source).unwrap_or_else(|e| panic!("{}: {e}", spec.id));
        let counted = program
            .atomic_count("change")
            .unwrap_or_else(|| panic!("{}: cannot count", spec.id));
        assert_eq!(counted, spec.atomic_count, "{}", spec.id);
    }
}
