//! End-to-end reproduction of the paper's §8.1 case study: simulate the
//! Figure 1 network and its four change iterations, check each against
//! the Rela spec of §4, and assert the published violation counts:
//!
//! - v1, original spec:      15 `e2e` + 17 `nochange` violations
//! - v2, refined spec:       15 `e2e` + 24 `nochange` + 0 `sideEffects`
//! - v3, refined spec:       15 `e2e` (the bounce), T2 collateral fixed
//! - v4, refined spec:       fully compliant
//!
//! Table 1's counterexamples (wrong T1 path with the bounce through B3;
//! T2 collateral via the C-region detour) are also asserted.

use rela_core::{CheckSession, JobSpec, SessionConfig};
use rela_net::{FlowSpec, Granularity, SnapshotPair};
use rela_sim::scenarios::{case_study, CASE_STUDY_SPEC, T1_COUNT, T2_COUNT, XA_COUNT};

/// The §8.1 spec refinement: permit the benign xa side effects via a
/// pspec-routed RIR spec (surface `any`/`add` cannot express uncondi-
/// tional additions — paper footnote 3).
fn refined_spec() -> String {
    format!(
        "{CASE_STUDY_SPEC}\n\
         rir sideEffects := pre <= post && post <= (pre | xa .*)\n\
         pspec sideP := (ingress == \"xa\") -> sideEffects\n"
    )
}

fn check_iteration(spec: &str, iteration: usize) -> rela_core::CheckReport {
    let study = case_study();
    let pre = study.pre_snapshot();
    let post = study.post_snapshot(iteration);
    let pair = SnapshotPair::align(&pre, &post);
    let session = CheckSession::open(
        spec,
        study.topology.db.clone(),
        SessionConfig {
            granularity: Granularity::Group,
            ..SessionConfig::default()
        },
    )
    .expect("check runs");
    session.run(JobSpec::pair(&pair)).expect("in-memory pair")
}

#[test]
fn v1_original_spec_matches_section_8_1_counts() {
    let report = check_iteration(CASE_STUDY_SPEC, 0);
    assert_eq!(
        report.count_for("e2e"),
        T1_COUNT as usize,
        "v1: every T1 class fails e2e (traffic did not move)\n{report}"
    );
    assert_eq!(
        report.count_for("nochange"),
        XA_COUNT as usize,
        "v1: the 17 xa classes are benign side effects caught by nochange\n{report}"
    );
    assert_eq!(report.total, (T1_COUNT + T2_COUNT + XA_COUNT) as usize);
    assert!(!report.is_compliant());
}

#[test]
fn v2_refined_spec_matches_section_8_1_counts() {
    let report = check_iteration(&refined_spec(), 1);
    assert_eq!(
        report.count_for("e2e"),
        T1_COUNT as usize,
        "v2: T1 moved but bounces through B3 → still 15 e2e violations\n{report}"
    );
    assert_eq!(
        report.count_for("nochange"),
        T2_COUNT as usize,
        "v2: the typo'd deny breaks all 24 T2 classes\n{report}"
    );
    assert_eq!(
        report.count_for("sideEffects"),
        0,
        "v2: the refined spec suppresses the benign xa diffs\n{report}"
    );
}

#[test]
fn v3_fixes_collateral_damage_but_not_the_bounce() {
    let report = check_iteration(&refined_spec(), 2);
    assert_eq!(report.count_for("e2e"), T1_COUNT as usize, "{report}");
    assert_eq!(report.count_for("nochange"), 0, "{report}");
    assert_eq!(report.count_for("sideEffects"), 0, "{report}");
}

#[test]
fn v4_is_fully_compliant() {
    let report = check_iteration(&refined_spec(), 3);
    assert!(report.is_compliant(), "{report}");
    assert_eq!(report.compliant, (T1_COUNT + T2_COUNT + XA_COUNT) as usize);
}

#[test]
fn table1_counterexamples_for_v2() {
    let report = check_iteration(&refined_spec(), 1);

    // Row 1: a T1 flow — wrong path change (bounce through B3)
    let t1_flow = FlowSpec::new("10.1.0.0/24".parse().unwrap(), "x1");
    let t1 = report
        .violations
        .iter()
        .find(|v| v.flow == t1_flow)
        .expect("T1 flow must violate");
    assert_eq!(t1.pre_paths, vec!["x1 A1 B1 B2 B3 D1 y1"]);
    assert_eq!(t1.post_paths, vec!["x1 A1 A2 A3 B3 D1 y1"]);
    assert_eq!(t1.violations.len(), 1);
    assert_eq!(t1.violations[0].part, "e2e");
    match &t1.violations[0].detail {
        rela_core::ViolationDetail::Equation(diff) => {
            // the `#` marker is rewritten back to the any() target
            assert_eq!(diff.missing, vec!["x1 (a1 a2 a3 d1) y1"]);
            assert_eq!(diff.unexpected, vec!["x1 A1 A2 A3 B3 D1 y1"]);
        }
        other => panic!("unexpected detail {other:?}"),
    }

    // Row 2: a T2 flow — collateral damage
    let t2_flow = FlowSpec::new("10.2.0.0/24".parse().unwrap(), "x2");
    let t2 = report
        .violations
        .iter()
        .find(|v| v.flow == t2_flow)
        .expect("T2 flow must violate");
    assert_eq!(t2.pre_paths, vec!["x2 C1 B1 B2 B3 D1 y2"]);
    assert_eq!(t2.post_paths, vec!["x2 C1 C2 D1 y2"]);
    assert_eq!(t2.violations[0].part, "nochange");
}

#[test]
fn skipping_v3_like_the_paper() {
    // §8.1: "Because Rela discovered two errors at the same time, we
    // skipped the third iteration" — both error kinds are visible in one
    // v2 report.
    let report = check_iteration(&refined_spec(), 1);
    assert!(report.count_for("e2e") > 0 && report.count_for("nochange") > 0);
}

#[test]
fn device_level_check_also_works() {
    // the same change validated at device granularity (finer); the spec
    // uses where-queries so it compiles at any granularity
    let report_spec = format!(
        "{}\nrir sideEffects := pre <= post && post <= (pre | xa .*)\n\
         pspec sideP := (ingress == \"xa\") -> sideEffects\n",
        CASE_STUDY_SPEC
    );
    let study = case_study();
    let pre = study.pre_snapshot();
    let post = study.post_snapshot(3);
    let pair = SnapshotPair::align(&pre, &post);
    let session = CheckSession::open(
        &report_spec,
        study.topology.db.clone(),
        SessionConfig {
            granularity: Granularity::Device,
            ..SessionConfig::default()
        },
    )
    .expect("check runs");
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    assert!(report.is_compliant(), "{report}");
}
