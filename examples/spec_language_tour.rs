//! A tour of the Rela specification language (paper §4–§5): every
//! modifier, composition, `where` queries, the `else` fall-through, and
//! the RIR escape hatch — each demonstrated on a minimal snapshot pair
//! with a passing and a failing case.
//!
//! Run: `cargo run --example spec_language_tour`

use rela::lang::{CheckSession, JobSpec, SessionConfig};
use rela::net::{linear_graph, Device, FlowSpec, Granularity, LocationDb, Snapshot, SnapshotPair};

/// Build a pair from (pre-paths, post-paths) per flow.
fn pair(db_flows: &[(&str, Vec<&str>, Vec<&str>)]) -> SnapshotPair {
    let mut pre = Snapshot::new();
    let mut post = Snapshot::new();
    for (dst, p, q) in db_flows {
        let flow = FlowSpec::new(dst.parse().unwrap(), "x1");
        pre.insert(flow.clone(), linear_graph(p));
        post.insert(flow, linear_graph(q));
    }
    SnapshotPair::align(&pre, &post)
}

fn demo(db: &LocationDb, expect_pass: bool, title: &str, spec: &str, pair: &SnapshotPair) {
    let session = CheckSession::open(
        spec,
        db.clone(),
        SessionConfig {
            granularity: Granularity::Device,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");
    let report = session.run(JobSpec::pair(pair)).expect("in-memory pair");
    let verdict = if report.is_compliant() {
        "PASS"
    } else {
        "FAIL"
    };
    assert_eq!(report.is_compliant(), expect_pass, "{title}: {report}");
    println!("{verdict}  {title}");
    for v in report.violations.iter().take(1) {
        for pv in &v.violations {
            println!("      ↳ {} [{}]: {}", v.flow, pv.part, pv.detail);
        }
    }
}

fn main() {
    let mut db = LocationDb::new();
    for (name, group, region) in [
        ("x1", "x1", "west"),
        ("A1", "A1", "west"),
        ("A2", "A2", "west"),
        ("B1", "B1", "east"),
        ("fw", "fw", "east"),
        ("y1", "y1", "east"),
    ] {
        db.add_device(Device::new(name, group).with_attr("region", region));
    }

    println!("== preserve: nothing changes ==");
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "A1", "y1"],
        vec!["x1", "A1", "y1"],
    )]);
    demo(
        &db,
        true,
        "identical snapshots",
        "spec s := { .* : preserve } check s",
        &p,
    );
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "A1", "y1"],
        vec!["x1", "A2", "y1"],
    )]);
    demo(
        &db,
        false,
        "a path moved",
        "spec s := { .* : preserve } check s",
        &p,
    );

    println!("\n== replace: a specific rewrite ==");
    let spec = "spec s := { x1 .* y1 : replace(x1 A1 y1, x1 A2 y1) } check s";
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "A1", "y1"],
        vec!["x1", "A2", "y1"],
    )]);
    demo(&db, true, "rewrite happened", spec, &p);
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "A1", "y1"],
        vec!["x1", "B1", "y1"],
    )]);
    demo(&db, false, "rewrite went elsewhere", spec, &p);

    println!("\n== any: move to *some* path in a set ==");
    let spec = "spec s := { x1 .* y1 : any(x1 (A1|A2) y1) } check s";
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "B1", "y1"],
        vec!["x1", "A2", "y1"],
    )]);
    demo(&db, true, "moved to one allowed path", spec, &p);
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "B1", "y1"],
        vec!["x1", "B1", "y1"],
    )]);
    demo(&db, false, "did not move", spec, &p);

    println!("\n== add / remove ==");
    let spec = "spec s := { x1 A1 y1 : add(x1 A2 y1) } check s";
    let p = pair(&[(
        "10.1.0.0/24",
        vec!["x1", "A1", "y1"],
        vec!["x1", "A1", "y1"],
    )]);
    demo(&db, false, "addition missing", spec, &p);
    let spec = "spec s := { x1 .* y1 : remove(x1 A1 y1) } check s";
    let p = pair(&[("10.1.0.0/24", vec!["x1", "A1", "y1"], vec![])]);
    demo(&db, true, "path removed as required", spec, &p);

    println!("\n== drop: traffic must be discarded ==");
    // forwarding keeps the ingress hop on dropped paths (x1 drop), so the
    // spec composes: preserve the ingress sub-path, drop the rest
    let spec = "spec s := { x1 : preserve ; .* : drop } else { .* : preserve } check s";
    let mut pre = Snapshot::new();
    let mut post = Snapshot::new();
    let flow = FlowSpec::new("10.1.0.0/24".parse().unwrap(), "x1");
    pre.insert(flow.clone(), linear_graph(&["x1", "A1", "y1"]));
    let mut dropped = rela::net::ForwardingGraph::new();
    let v = dropped.add_vertex("x1");
    dropped.sources.push(v);
    dropped.drops.push(v);
    post.insert(flow, dropped);
    demo(
        &db,
        true,
        "traffic now dropped at ingress",
        spec,
        &SnapshotPair::align(&pre, &post),
    );

    println!("\n== where queries and regions ==");
    let spec = r#"
        spec west := { where(region == "west")* : preserve }
        spec rest := { .* : preserve }
        spec s := west else rest
        check s
    "#;
    let p = pair(&[("10.1.0.0/24", vec!["x1", "A1"], vec!["x1", "A2"])]);
    demo(
        &db,
        false,
        "west-region change caught by the west spec",
        spec,
        &p,
    );

    println!("\n== RIR escape hatch: permit additions in a zone ==");
    let spec = "rir s := pre <= post && post <= (pre | x1 .*)\ncheck s";
    let p = pair(&[("10.1.0.0/24", vec![], vec!["x1", "A1", "y1"])]);
    demo(&db, true, "new path inside the waiver zone", spec, &p);
    let p = pair(&[("10.1.0.0/24", vec![], vec!["B1", "y1"])]);
    demo(&db, false, "new path outside the waiver zone", spec, &p);
}
