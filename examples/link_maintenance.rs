//! Link maintenance: move all traffic off the B1 transit leg before
//! shutting it down — the paper's introductory example ("move all
//! traffic on link A to link B ... and no other traffic is impacted",
//! §1). The drain is implemented as an import deny at A1 for routes
//! learned from B1.
//!
//! The buggy variant types the prefix list wrong (`10.0.0.0/14` instead
//! of `10.0.0.0/8`), draining only a third of the flows — precisely the
//! "all desired path changes occurred?" question that is hard to answer
//! from a path diff (§2.3) and trivial for a relational spec.
//!
//! Run: `cargo run --example link_maintenance`

use rela::lang::{CheckSession, JobSpec, SessionConfig};
use rela::net::{Granularity, SnapshotPair};
use rela::sim::{
    configured, simulate, ConfigChange, DeviceSelector, NetworkConfig, PolicyRule, RuleAction,
    TopologyBuilder, TrafficMatrix,
};

fn main() {
    // Topology: x1 → A1 → {B1 | C1} → D1 → y1; the B1 leg is cheaper and
    // carries everything before the change.
    let mut b = TopologyBuilder::new();
    for (name, group, region) in [
        ("x1", "x1", "edge"),
        ("A1-r1", "A1", "core"),
        ("A1-r2", "A1", "core"),
        ("B1-r1", "B1", "transit"),
        ("C1-r1", "C1", "transit"),
        ("D1-r1", "D1", "core"),
        ("y1", "y1", "edge"),
    ] {
        b.router(name, group, region);
    }
    b.mesh_within_group("A1", 1);
    b.mesh_groups("x1", "A1", 5);
    b.mesh_groups("A1", "B1", 2); // preferred leg
    b.mesh_groups("A1", "C1", 4);
    b.mesh_groups("B1", "D1", 2);
    b.mesh_groups("C1", "D1", 4);
    b.mesh_groups("D1", "y1", 5);
    let topo = b.build();

    let mut cfg = NetworkConfig::new();
    cfg.originate("y1", "10.0.0.0/8".parse().unwrap());

    let mut traffic = TrafficMatrix::new();
    traffic.add_range("10.0.0.0/8".parse().unwrap(), 16, 12, "x1");

    let (pre, _) = simulate(&topo, &cfg, &traffic);

    // The relational spec: everything on the B1 leg moves to the C1 leg;
    // nothing else changes.
    let spec = r#"
        regex viaB := x1 A1 B1 D1 y1
        regex viaC := x1 A1 C1 D1 y1
        spec drain := { x1 .* y1 : replace(viaB, viaC) }
        spec nochange := { .* : preserve }
        spec change := drain else nochange
        check change
    "#;

    let drain_rule = |prefixes: &str| {
        vec![ConfigChange::PrependImport {
            devices: DeviceSelector::Group("A1".into()),
            rule: PolicyRule::new(
                "drain-b1",
                vec![prefixes.parse().unwrap()],
                Some(DeviceSelector::Group("B1".into())),
                RuleAction::Deny,
            ),
        }]
    };

    // One warm session validates both candidate implementations.
    let session = CheckSession::open(
        spec,
        topo.db.clone(),
        SessionConfig {
            granularity: Granularity::Group,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");

    // Correct implementation: deny the whole aggregate from B1.
    let (post, _) = simulate(
        &topo,
        &configured(&cfg, &topo, &drain_rule("10.0.0.0/8")),
        &traffic,
    );
    let pair = SnapshotPair::align(&pre, &post);
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    println!("full drain:\n{report}");
    assert!(report.is_compliant());

    // Buggy implementation: the prefix list covers only 10.0.0.0/14, so
    // eight of the twelve flows never move.
    let (post_bad, _) = simulate(
        &topo,
        &configured(&cfg, &topo, &drain_rule("10.0.0.0/14")),
        &traffic,
    );
    let pair = SnapshotPair::align(&pre, &post_bad);
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    println!("typo'd drain (should FAIL):\n{report}");
    assert!(!report.is_compliant());
    assert_eq!(report.count_for("drain"), 8);
}
