//! The full Figure 1 walkthrough (paper §2.1 and §8.1): four iterations
//! of a seemingly simple traffic-move in a global WAN, each validated by
//! Rela against the same relational spec.
//!
//! Iteration 1 fails because a remote region's high local-pref wins;
//! iteration 2 moves the traffic but a typo'd prefix list breaks other
//! traffic, and the moved traffic bounces through B3 due to a stale IGP
//! cost; iteration 3 fixes the typo (bounce remains); iteration 4 is
//! clean. The paper's engineers needed three weeks of manual auditing to
//! get here — Rela pinpoints both v2 errors in one run.
//!
//! Run: `cargo run --example case_study_fig1`

use rela::lang::{CheckSession, JobSpec, SessionConfig};
use rela::net::{device_path_to_group, FlowSpec, Granularity, SnapshotPair};
use rela::sim::scenarios::{case_study, CASE_STUDY_SPEC};

fn main() {
    let study = case_study();
    let pre = study.pre_snapshot();

    // §8.1: iteration v1 was checked against the original §4 spec; the
    // sideEffects refinement (RIR escape hatch + pspec) was added after
    // triaging v1's benign xa diffs and used from v2 on
    let original = CASE_STUDY_SPEC.to_owned();
    let refined = format!(
        "{CASE_STUDY_SPEC}\n\
         rir sideEffects := pre <= post && post <= (pre | xa .*)\n\
         pspec sideP := (ingress == \"xa\") -> sideEffects\n"
    );
    // compile each spec revision once; every iteration is then a warm
    // job against the matching session (the `rela serve` usage pattern)
    let open = |source: &str| {
        CheckSession::open(
            source,
            study.topology.db.clone(),
            SessionConfig {
                granularity: Granularity::Group,
                ..SessionConfig::default()
            },
        )
        .expect("spec compiles")
    };
    let sessions = [open(&original), open(&refined)];

    // show the T1 path before the change
    let t1 = FlowSpec::new("10.1.0.0/24".parse().unwrap(), "x1");
    let t1_pre = pre.get(&t1).expect("T1 flow simulated");
    let mut group_paths: Vec<String> = t1_pre
        .device_paths(64)
        .iter()
        .map(|p| device_path_to_group(p, &study.topology.db).join(" "))
        .collect();
    group_paths.sort();
    group_paths.dedup();
    println!("T1 pre-change (group-level):");
    for path in group_paths {
        println!("  {path}");
    }
    println!();

    for (ix, iteration) in study.iterations.iter().enumerate() {
        println!("── iteration {}: {}", iteration.name, iteration.description);
        let session = &sessions[usize::from(ix != 0)];
        let post = study.post_snapshot(ix);
        let pair = SnapshotPair::align(&pre, &post);
        let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
        if report.is_compliant() {
            println!("   PASS — change validated automatically and completely\n");
        } else {
            println!(
                "   FAIL — e2e: {}, nochange: {}, sideEffects: {}",
                report.count_for("e2e"),
                report.count_for("nochange"),
                report.count_for("sideEffects")
            );
            // print one counterexample per violated sub-spec
            for part in report.part_counts.keys() {
                if let Some(v) = report
                    .violations
                    .iter()
                    .find(|v| v.violations.iter().any(|pv| &pv.part == part))
                {
                    let pv = v
                        .violations
                        .iter()
                        .find(|pv| &pv.part == part)
                        .expect("present");
                    println!("   e.g. {} [{}]: {}", v.flow, pv.part, pv.detail);
                }
            }
            println!();
        }
    }
}
