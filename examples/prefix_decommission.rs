//! Prefix decommissioning with prefix predicates (paper §7):
//! "decommissioning an IP prefix is a common change for which we want to
//! ensure that the network does not carry traffic for these prefixes
//! along any path", written exactly as the paper does:
//!
//! ```text
//! spec dealloc := { .* : remove(.*) }
//! pspec deallocP := (dstPrefix == 10.9.0.0/16) -> dealloc
//! ```
//!
//! Run: `cargo run --example prefix_decommission`

use rela::lang::{CheckSession, JobSpec, SessionConfig};
use rela::net::{Granularity, SnapshotPair};
use rela::sim::{
    configured, simulate, ConfigChange, DeviceSelector, NetworkConfig, TopologyBuilder,
    TrafficMatrix,
};

fn main() {
    let mut b = TopologyBuilder::new();
    for (name, group) in [
        ("x1", "x1"),
        ("core-r1", "core"),
        ("core-r2", "core"),
        ("y1", "y1"),
    ] {
        b.router(name, group, "pop1");
    }
    b.mesh_within_group("core", 1);
    b.mesh_groups("x1", "core", 5);
    b.mesh_groups("core", "y1", 5);
    let topo = b.build();

    let mut cfg = NetworkConfig::new();
    cfg.originate("y1", "10.1.0.0/16".parse().unwrap()); // kept
    cfg.originate("y1", "10.9.0.0/16".parse().unwrap()); // decommissioned

    let mut traffic = TrafficMatrix::new();
    traffic.add_range("10.1.0.0/16".parse().unwrap(), 24, 6, "x1");
    traffic.add_range("10.9.0.0/16".parse().unwrap(), 24, 6, "x1");

    let (pre, _) = simulate(&topo, &cfg, &traffic);

    let spec = r#"
        spec dealloc := { .* : remove(.*) }
        spec nochange := { .* : preserve }
        pspec deallocP := (dstPrefix == 10.9.0.0/16) -> dealloc
        check nochange
    "#;

    // One warm session validates every candidate implementation.
    let session = CheckSession::open(
        spec,
        topo.db.clone(),
        SessionConfig {
            granularity: Granularity::Device,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");

    // Correct implementation: withdraw the origination.
    let withdraw = vec![ConfigChange::RemoveOrigination {
        devices: DeviceSelector::Name("y1".into()),
        prefixes: vec!["10.9.0.0/16".parse().unwrap()],
    }];
    let (post, _) = simulate(&topo, &configured(&cfg, &topo, &withdraw), &traffic);
    let pair = SnapshotPair::align(&pre, &post);
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    println!("withdrawal validation:\n{report}");

    // Buggy implementation: an ACL filter instead of a withdrawal — the
    // traffic is still *carried* to the filter and dropped there, which
    // `remove(.*)` correctly rejects (paths ending in `drop` still exist).
    let filter = vec![ConfigChange::AddAclDeny {
        devices: DeviceSelector::Group("core".into()),
        prefixes: vec!["10.9.0.0/16".parse().unwrap()],
    }];
    let (post_bad, _) = simulate(&topo, &configured(&cfg, &topo, &filter), &traffic);
    let pair = SnapshotPair::align(&pre, &post_bad);
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    println!("ACL-instead-of-withdrawal (should FAIL):\n{report}");
}
