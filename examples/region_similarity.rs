//! Region similarity — the paper's stated future-work application (§1):
//! "we also expect that it can help verify if two parts of the same
//! snapshot are similar (e.g., two geographic regions), modulo a few
//! exceptions."
//!
//! The relational machinery already suffices: build a *renaming relation*
//! R that maps region-EAST locations to their WEST counterparts, and
//! check `paths(EAST) ⊲ R = paths(WEST)` with the same automata used for
//! change validation. Exceptions are waived by uniting R with an
//! exception relation.
//!
//! Run: `cargo run --example region_similarity`

use rela::automata::{
    compare, determinize, image, DiffWitness, Fst, FstLabel, SymSet, SymbolTable,
};
use rela::net::{graph_to_fsa, Device, ForwardingGraph, Granularity, LocationDb};

/// Build one region's forwarding state: ingress → edge → {core-a|core-b}
/// → out, with a deliberate asymmetry in EAST when `skewed` is set (its
/// second core router is dark — a latent config divergence).
fn region_fec(prefix: &str, skewed: bool) -> ForwardingGraph {
    let mut g = ForwardingGraph::new();
    let ingress = g.add_vertex(format!("{prefix}-in"));
    let edge = g.add_vertex(format!("{prefix}-edge"));
    let core_a = g.add_vertex(format!("{prefix}-core-a"));
    let out = g.add_vertex(format!("{prefix}-out"));
    g.add_edge(ingress, edge, "e0", "e0");
    g.add_edge(edge, core_a, "e1", "e0");
    g.add_edge(core_a, out, "e1", "e0");
    if !skewed {
        let core_b = g.add_vertex(format!("{prefix}-core-b"));
        g.add_edge(edge, core_b, "e2", "e0");
        g.add_edge(core_b, out, "e1", "e1");
    }
    g.sources.push(ingress);
    g.sinks.push(out);
    g
}

/// The renaming relation: a transducer mapping each `from` symbol to its
/// `to` counterpart, one hop at a time, any number of hops —
/// `(∪ᵢ fromᵢ × toᵢ)*` built from the public FST API.
fn renaming(table: &mut SymbolTable, pairs: &[(&str, &str)]) -> Fst {
    let mut step = Fst::new();
    let accept = step.add_state();
    for (from, to) in pairs {
        let f = table.intern(from);
        let t = table.intern(to);
        step.add_arc(
            step.start(),
            FstLabel::Pair(SymSet::singleton(f), SymSet::singleton(t)),
            accept,
        );
    }
    step.set_accepting(accept, true);
    step.star()
}

fn db_for(regions: &[&str]) -> LocationDb {
    let mut db = LocationDb::new();
    for r in regions {
        for role in ["in", "edge", "core-a", "core-b", "out"] {
            let name = format!("{r}-{role}");
            db.add_device(Device::new(&name, &name));
        }
    }
    db
}

fn check_similarity(east: &ForwardingGraph, west: &ForwardingGraph) {
    let db = db_for(&["east", "west"]);
    let mut table = SymbolTable::new();
    let east_fsa = graph_to_fsa(east, &db, Granularity::Device, &mut table);
    let west_fsa = graph_to_fsa(west, &db, Granularity::Device, &mut table);

    let rename = renaming(
        &mut table,
        &[
            ("east-in", "west-in"),
            ("east-edge", "west-edge"),
            ("east-core-a", "west-core-a"),
            ("east-core-b", "west-core-b"),
            ("east-out", "west-out"),
        ],
    );

    // paths(EAST) ⊲ rename  =  paths(WEST)?
    let lhs = determinize(&image(&east_fsa, &rename).trim());
    let rhs = determinize(&west_fsa.trim());
    match compare(&lhs, &rhs) {
        DiffWitness::Equal => println!("  regions are behaviourally identical (modulo renaming)"),
        DiffWitness::LeftOnly(w) => {
            println!("  EAST has behaviour WEST lacks: {}", render(&w, &table))
        }
        DiffWitness::RightOnly(w) => {
            println!("  WEST has behaviour EAST lacks: {}", render(&w, &table))
        }
    }
}

fn render(witness: &[SymSet], table: &SymbolTable) -> String {
    rela::automata::concretize(witness, table)
        .map(|syms| {
            syms.iter()
                .map(|&s| table.name(s).to_owned())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .unwrap_or_else(|| "<unprintable>".to_owned())
}

fn main() {
    println!("symmetric build-out:");
    check_similarity(&region_fec("east", false), &region_fec("west", false));

    println!("east-core-b dark (latent divergence):");
    check_similarity(&region_fec("east", true), &region_fec("west", false));
}
