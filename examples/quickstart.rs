//! Quickstart: validate a network change relationally in ~50 lines.
//!
//! A tiny network moves *web* traffic from router B1 to A2; DNS traffic
//! must stay put. Both flows follow the same path before the change, so
//! a path-based zone alone cannot tell them apart — we route the change
//! spec to the web prefix with a `pspec` predicate (paper §7) and let
//! everything else default to "no change".
//!
//! Run: `cargo run --example quickstart`

use rela::lang::{CheckSession, JobSpec, SessionConfig};
use rela::net::{linear_graph, Device, FlowSpec, Granularity, LocationDb, Snapshot, SnapshotPair};

fn main() {
    // 1. The location database: four routers (each its own group here).
    let mut db = LocationDb::new();
    for name in ["x1", "A2", "B1", "y1"] {
        db.add_device(Device::new(name, name));
    }

    // 2. Pre-change forwarding: two flows, both via B1.
    let web = FlowSpec::new("10.1.0.0/24".parse().unwrap(), "x1");
    let dns = FlowSpec::new("10.2.0.0/24".parse().unwrap(), "x1");
    let mut pre = Snapshot::new();
    pre.insert(web.clone(), linear_graph(&["x1", "B1", "y1"]));
    pre.insert(dns.clone(), linear_graph(&["x1", "B1", "y1"]));

    // 3. The relational change spec: web traffic (routed by prefix)
    //    moves to A2; everything else — one line — stays the same.
    let spec = r#"
        spec moveWeb := { x1 .* y1 : replace(x1 B1 y1, x1 A2 y1) }
        spec nochange := { .* : preserve }
        pspec webP := (dstPrefix == 10.1.0.0/24) -> moveWeb
        check nochange
    "#;

    // 4. Compile the spec once into a session; each candidate
    //    implementation is then one cheap job against the warm session.
    let session = CheckSession::open(
        spec,
        db,
        SessionConfig {
            granularity: Granularity::Device,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");

    // 4a. A correct implementation: web moved, DNS untouched.
    let mut post_good = Snapshot::new();
    post_good.insert(web.clone(), linear_graph(&["x1", "A2", "y1"]));
    post_good.insert(dns.clone(), linear_graph(&["x1", "B1", "y1"]));
    let pair = SnapshotPair::align(&pre, &post_good);
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    println!("correct implementation:\n{report}");
    assert!(report.is_compliant());

    // 4b. A buggy implementation: the DNS flow moved too — collateral
    //     damage that single-snapshot verification cannot express.
    let mut post_bad = Snapshot::new();
    post_bad.insert(web, linear_graph(&["x1", "A2", "y1"]));
    post_bad.insert(dns, linear_graph(&["x1", "A2", "y1"]));
    let pair = SnapshotPair::align(&pre, &post_bad);
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
    println!("buggy implementation:\n{report}");
    assert!(!report.is_compliant());
}
