//! # rela-cache
//!
//! A persistent, cross-run verdict store for incremental re-checking.
//!
//! The paper's operational workflow (§8.1) validates four near-identical
//! iterations of one WAN change; between iterations the overwhelming
//! majority of `(pre, post)` behavior classes are unchanged, so their
//! relational obligations need not be re-decided. This crate persists
//! the checker's `BehaviorHash → verdict` memo across process exits:
//! iteration N+1 re-decides only the classes whose fingerprints moved —
//! the network analogue of proof reuse across related executions in
//! relational program/DNN verification.
//!
//! ## Store layout
//!
//! A cache directory holds one JSON file per **epoch**:
//!
//! ```text
//! <cache-dir>/verdicts-<epoch>.json
//! {
//!   "schema": "rela-cache/v1",
//!   "epoch": "<32 hex digits>",
//!   "entries": { "<pre>:<post>:<granularity>:<route>": { ...payload... } }
//! }
//! ```
//!
//! The epoch is a content hash of the spec AST and the engine version
//! ([`CacheEpoch::derive`]): editing the spec — or upgrading to a
//! checker whose decisions could differ — lands in a different file, so
//! every lookup is a clean miss and stale verdicts can never leak. Keys
//! bind the pre/post behavior fingerprints, the compile granularity, and
//! the pspec route that selected the check, mirroring exactly the
//! identity the in-run dedup engine groups classes by.
//!
//! Robustness contract: a missing, truncated, corrupt, or
//! wrong-schema/wrong-epoch store file is **treated as cold**, never an
//! error — the cache is an accelerator, not a dependency. Writes go
//! through a temp file + atomic rename so a crashed run cannot corrupt
//! an existing store.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rela_net::{content_hash128, BehaviorHash, Granularity};
use serde::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use rela_net::faultio;

/// The on-disk schema tag; bump when the file layout changes shape.
pub const SCHEMA: &str = "rela-cache/v1";

/// Number of internal map shards. Warm-replay consults run concurrently
/// across checker workers (one lookup + payload clone per class); a
/// single mutex would serialize exactly the pass that sharding the
/// consult is meant to parallelize.
const SHARDS: usize = 16;

/// A cache generation: verdicts recorded under one epoch are only ever
/// replayed under the same epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheEpoch(u128);

impl CacheEpoch {
    /// Derive the epoch for a spec/engine combination. `spec_hash` is a
    /// content hash of everything the compiled program depends on — the
    /// spec AST *and* the location database it resolves against (see
    /// `rela_core::cache_epoch`), so formatting and comments don't
    /// churn the cache but any semantic edit to either does — and
    /// `engine` names the deciding engine and its version: a new
    /// engine must never replay an old engine's verdicts.
    pub fn derive(spec_hash: u128, engine: &str) -> CacheEpoch {
        let mut bytes = Vec::with_capacity(16 + engine.len() + 1);
        bytes.extend_from_slice(&spec_hash.to_le_bytes());
        bytes.push(0xff); // separator: (hash, engine) pairs can't collide
        bytes.extend_from_slice(engine.as_bytes());
        CacheEpoch(content_hash128(&bytes))
    }

    /// Rebuild an epoch from its raw value (tests, tooling).
    pub fn from_u128(raw: u128) -> CacheEpoch {
        CacheEpoch(raw)
    }
}

impl fmt::Display for CacheEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// XOR this into [`CacheKey::variant`] to key an entry by **raw record
/// byte hashes** instead of behavior fingerprints. Byte-keyed entries
/// short-circuit admission before any graph decode (`pre`/`post` carry
/// `content_hash128` of the raw graph spans via
/// `BehaviorHash::from_u128`); the salt keeps the two key families
/// disjoint inside one epoch file even on the astronomically unlikely
/// hash coincidence.
pub const BYTE_VARIANT_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The identity of one cached verdict: everything that determines what
/// the checker would decide for a behavior class, minus the spec and
/// engine (which live in the epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Pre-change behavior fingerprint.
    pub pre: BehaviorHash,
    /// Post-change behavior fingerprint.
    pub post: BehaviorHash,
    /// The granularity the program was compiled at (hashing granularity
    /// is already baked into the fingerprints, but rendering and
    /// routing read the compile granularity).
    pub granularity: Granularity,
    /// Index of the pspec route that selected the check (`None` = the
    /// default check).
    pub route: Option<usize>,
    /// Fingerprint of the caller's verdict-shaping options (witness
    /// limits, rendered path counts, ...). Runs with different options
    /// produce differently-shaped payloads and must never share an
    /// entry.
    pub variant: u64,
}

impl CacheKey {
    /// The stable string form used as the JSON object key. Granularity
    /// renders through its canonical `Display` so the key format has
    /// exactly one source of truth.
    fn render(&self) -> String {
        let route = match self.route {
            Some(r) => r.to_string(),
            None => "-".to_owned(),
        };
        format!(
            "{}:{}:{}:{}:{:016x}",
            self.pre, self.post, self.granularity, route, self.variant
        )
    }
}

/// Lookup/insert/persist counters, readable after a run (`--cache-stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Fresh verdicts recorded this run.
    pub inserted: usize,
}

/// The persistent verdict store: an in-memory map hydrated from (and
/// flushed back to) one epoch file. Payloads are opaque JSON values —
/// the checker owns their shape, the store owns identity and durability.
pub struct VerdictStore {
    /// `None` for a memory-only store (tests, `--no-cache` probes).
    path: Option<PathBuf>,
    epoch: CacheEpoch,
    /// Sharded by key hash: warm-replay consults from concurrent checker
    /// workers land on different locks.
    entries: Vec<Mutex<HashMap<String, Value>>>,
    /// How many entries came from disk (for stats/reporting).
    loaded: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    inserted: AtomicUsize,
    /// Set on every `put`, cleared by a successful `persist` — lets a
    /// resident session skip rewriting an unchanged store after every
    /// fully-warm job.
    dirty: AtomicBool,
    /// Monotone persist counter carried in the store file. A recovered
    /// file's generation tells an operator (and the crash-recovery
    /// harness) how many flushes the surviving bytes represent.
    generation: AtomicU64,
    /// Files open-time recovery moved aside instead of deleting:
    /// unparseable (torn) store files and temp files abandoned by dead
    /// writers. Empty on a clean open.
    quarantined: Vec<PathBuf>,
}

fn shard_of(key: &str) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % SHARDS
}

fn shard_map(entries: HashMap<String, Value>) -> Vec<Mutex<HashMap<String, Value>>> {
    let mut shards: Vec<HashMap<String, Value>> = (0..SHARDS).map(|_| HashMap::new()).collect();
    for (k, v) in entries {
        shards[shard_of(&k)].insert(k, v);
    }
    shards.into_iter().map(Mutex::new).collect()
}

impl VerdictStore {
    /// Open (or cold-start) the store for `epoch` under `dir`. The
    /// directory is created if missing. A store file that exists but
    /// does not parse (torn by a crash mid-write, or plain corrupt) is
    /// **quarantined** — renamed to `<name>.quarantine.<n>`, never
    /// silently deleted — and the store cold-starts; so are temp files
    /// abandoned by writers that are provably dead. Recovered paths are
    /// reported by [`VerdictStore::quarantined`].
    pub fn open(dir: &Path, epoch: CacheEpoch) -> std::io::Result<VerdictStore> {
        std::fs::create_dir_all(dir)?;
        let mut quarantined = sweep_stale_temp_files(dir);
        let path = dir.join(format!("verdicts-{epoch}.json"));
        let parsed = match std::fs::read_to_string(&path) {
            Ok(text) => match parse_store(&text, epoch) {
                Some(parsed) => Some(parsed),
                None => {
                    // the bytes are evidence of what went wrong — move
                    // them aside where an operator can inspect them
                    if let Some(moved) = quarantine(&path) {
                        quarantined.push(moved);
                    }
                    None
                }
            },
            Err(_) => None,
        };
        let (entries, generation) = parsed.unwrap_or_default();
        Ok(VerdictStore {
            path: Some(path),
            epoch,
            loaded: entries.len(),
            entries: shard_map(entries),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            inserted: AtomicUsize::new(0),
            dirty: AtomicBool::new(false),
            generation: AtomicU64::new(generation),
            quarantined,
        })
    }

    /// [`VerdictStore::open`] plus an open-time garbage-collection sweep
    /// of the directory under `policy` (the opened epoch's file is never
    /// removed). This is what long-lived change pipelines want: every
    /// `rela check --cache-dir` keeps the directory bounded without a
    /// separate maintenance step. GC failures are swallowed — the sweep
    /// is hygiene, never a reason to fail a run.
    pub fn open_with_gc(
        dir: &Path,
        epoch: CacheEpoch,
        policy: &GcPolicy,
    ) -> std::io::Result<VerdictStore> {
        let store = VerdictStore::open(dir, epoch)?;
        let _ = gc(dir, Some(epoch), policy);
        Ok(store)
    }

    /// A store that never touches disk (`persist` is a no-op).
    pub fn in_memory(epoch: CacheEpoch) -> VerdictStore {
        VerdictStore {
            path: None,
            epoch,
            loaded: 0,
            entries: shard_map(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            inserted: AtomicUsize::new(0),
            dirty: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            quarantined: Vec::new(),
        }
    }

    /// The epoch this store serves.
    pub fn epoch(&self) -> CacheEpoch {
        self.epoch
    }

    /// The persist generation the store file carries: 0 for a cold
    /// start, incremented by every successful [`VerdictStore::persist`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Files open-time recovery quarantined (torn store files, temp
    /// files from dead writers). Empty on a clean open.
    pub fn quarantined(&self) -> &[PathBuf] {
        &self.quarantined
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when no verdicts are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries hydrated from disk at open time.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Look up a verdict payload.
    pub fn get(&self, key: &CacheKey) -> Option<Value> {
        let rendered = key.render();
        let found = self.entries[shard_of(&rendered)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&rendered)
            .cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a verdict payload (last write wins; callers only ever
    /// write identical payloads for identical keys).
    pub fn put(&self, key: &CacheKey, payload: Value) {
        self.inserted.fetch_add(1, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Release);
        let rendered = key.render();
        self.entries[shard_of(&rendered)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(rendered, payload);
    }

    /// This run's lookup/insert counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
        }
    }

    /// Flush the store to its epoch file: temp file, `fsync`, atomic
    /// rename, directory `fsync`. A crash at any instant leaves either
    /// the previous store file or the new one — never a torn mix — and
    /// the renamed bytes are durable, not just in the page cache. Each
    /// flush increments the file's generation marker. No-op for
    /// in-memory stores.
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut fields: Vec<(String, Value)> = self
            .entries
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        // deterministic file bytes: sorted keys, stable across shard and
        // HashMap iteration order and across runs
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        let generation = self.generation.load(Ordering::Acquire) + 1;
        let doc = Value::obj(vec![
            ("schema", Value::Str(SCHEMA.to_owned())),
            ("epoch", Value::Str(self.epoch.to_string())),
            ("generation", Value::UInt(generation)),
            ("entries", Value::Obj(fields)),
        ]);
        // compact, not pretty: the store is machine-read on every warm
        // run, and entry payloads dominate the bytes either way
        let json = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // unique temp name per process and call: concurrent persists to
        // a shared cache dir must never interleave writes on one temp
        // file (the rename itself is atomic; last writer wins whole)
        static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let committed = self.write_and_rename(&tmp, path, json.into_bytes());
        if committed.is_err() {
            // an aborted flush (injected or real ENOSPC, rename failure)
            // must not squat in the directory until a sweep notices it
            let _ = std::fs::remove_file(&tmp);
            return committed;
        }
        self.generation.store(generation, Ordering::Release);
        self.dirty.store(false, Ordering::Release);
        Ok(())
    }

    /// The durability core of [`VerdictStore::persist`], with the fault
    /// hooks the crash harness drives: writes go through the installed
    /// [`faultio`] plan (injected `ENOSPC`/`EINTR`), and the `persist`
    /// lifecycle point between the temp-file `fsync` and the rename can
    /// pause (the kill-9 window), tear the temp file (a simulated
    /// partial flush surviving the rename), or panic.
    fn write_and_rename(&self, tmp: &Path, path: &Path, mut bytes: Vec<u8>) -> std::io::Result<()> {
        use std::io::Write;
        bytes.push(b'\n');
        let mut file = std::fs::File::create(tmp)?;
        match faultio::active() {
            // `write_all` swallows `Interrupted`, exactly like the
            // production retry contract the plan is testing
            Some(plan) => faultio::FaultyWrite::new(&mut file, plan).write_all(&bytes)?,
            None => file.write_all(&bytes)?,
        }
        file.sync_all()?;
        let act = faultio::at("persist");
        if act.tear() {
            file.set_len(bytes.len() as u64 / 2)?;
            file.sync_all()?;
        }
        drop(file);
        act.fire();
        std::fs::rename(tmp, path)?;
        // the rename itself must survive a crash: fsync the directory
        // (best-effort — not every filesystem supports opening a dir)
        if let Some(parent) = path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// True when a `put` has landed since the last successful
    /// [`VerdictStore::persist`].
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    /// [`VerdictStore::persist`], skipped entirely when nothing changed
    /// since the last flush. Returns whether a flush happened. This is
    /// the per-job flush a resident session uses: a fully-warm job
    /// inserts nothing, so a daemon replaying the same pair repeatedly
    /// never rewrites the epoch file.
    pub fn persist_if_dirty(&self) -> std::io::Result<bool> {
        if !self.is_dirty() {
            return Ok(false);
        }
        self.persist()?;
        Ok(true)
    }
}

/// Retention policy for [`gc`] and [`VerdictStore::open_with_gc`].
#[derive(Debug, Clone, Copy)]
pub struct GcPolicy {
    /// Beyond the protected (current) epoch, keep at most this many
    /// other epoch files, most recently modified first. `None` keeps
    /// all; `Some(0)` keeps only the current epoch.
    pub keep_epochs: Option<usize>,
    /// Total byte cap across retained epoch files; the oldest are
    /// removed until the directory fits (the current epoch's file is
    /// never removed). `None` = no cap.
    pub max_bytes: Option<u64>,
}

impl Default for GcPolicy {
    /// The open-time sweep default: a handful of sibling epochs survive
    /// (a change pipeline iterating on a few spec versions stays fully
    /// warm), anything older goes, no size cap.
    fn default() -> GcPolicy {
        GcPolicy {
            keep_epochs: Some(8),
            max_bytes: None,
        }
    }
}

/// What a [`gc`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Files removed (epoch files + stale temp files).
    pub removed_files: usize,
    /// Bytes those files held.
    pub removed_bytes: u64,
    /// Epoch files retained.
    pub retained_files: usize,
    /// Bytes the retained files hold.
    pub retained_bytes: u64,
}

/// Temp files from crashed writers are reclaimed once they are clearly
/// abandoned; a live writer renames its temp file within milliseconds.
const STALE_TEMP_AGE: Duration = Duration::from_secs(3600);

fn is_temp_file(name: &str) -> bool {
    name.starts_with("verdicts-") && name.contains(".tmp.")
}

fn is_stale_temp(path: &Path, meta: &std::fs::Metadata) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    is_temp_file(name)
        && meta
            .modified()
            .ok()
            .and_then(|m| SystemTime::now().duration_since(m).ok())
            .is_some_and(|age| age > STALE_TEMP_AGE)
}

/// The writer pid embedded in a temp file name
/// (`verdicts-<epoch>.tmp.<pid>.<seq>`).
fn temp_writer_pid(name: &str) -> Option<u32> {
    let (_, rest) = name.split_once(".tmp.")?;
    rest.split('.').next()?.parse().ok()
}

/// True when the temp file's writer is provably gone — its pid no
/// longer exists — so the file is a torn flush, not work in progress.
/// Only Linux can prove it (via `/proc`); elsewhere age decides.
fn temp_writer_dead(name: &str) -> bool {
    #[cfg(target_os = "linux")]
    {
        temp_writer_pid(name).is_some_and(|pid| !Path::new(&format!("/proc/{pid}")).exists())
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = name;
        false
    }
}

/// Move `path` aside to `<name>.quarantine.<n>` (first free `n`).
/// Returns the quarantine path, or `None` when the rename failed — the
/// caller treats that as "leave the corpse where it is".
fn quarantine(path: &Path) -> Option<PathBuf> {
    let name = path.file_name()?.to_str()?;
    for n in 0..1000 {
        let target = path.with_file_name(format!("{name}.quarantine.{n}"));
        if target.exists() {
            continue;
        }
        if std::fs::rename(path, &target).is_ok() {
            return Some(target);
        }
    }
    None
}

/// Open-time hygiene for abandoned temp files: a temp whose writer is
/// provably dead is **quarantined** (it is the torn remains of a crash
/// — evidence, not garbage); a temp merely old enough that its writer
/// cannot still be mid-rename is removed. Returns the quarantined
/// paths.
fn sweep_stale_temp_files(dir: &Path) -> Vec<PathBuf> {
    let mut quarantined = Vec::new();
    let Ok(read) = std::fs::read_dir(dir) else {
        return quarantined;
    };
    for entry in read.flatten() {
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if is_temp_file(name) && temp_writer_dead(name) {
            if let Some(moved) = quarantine(&path) {
                quarantined.push(moved);
            }
        } else if let Ok(meta) = entry.metadata() {
            if is_stale_temp(&path, &meta) {
                std::fs::remove_file(&path).ok();
            }
        }
    }
    quarantined
}

/// Garbage-collect a cache directory (`rela cache gc`, and the
/// open-time sweep behind [`VerdictStore::open_with_gc`]).
///
/// Removes, in order:
/// 1. stale temp files abandoned by crashed writers;
/// 2. epoch files beyond `policy.keep_epochs`, most recently modified
///    first — superseded spec versions age out of a long-lived change
///    pipeline's directory;
/// 3. the oldest remaining epoch files until the directory fits
///    `policy.max_bytes`.
///
/// The `current` epoch's file (when given) is always retained — GC must
/// never make the very store a run is using go cold.
pub fn gc(dir: &Path, current: Option<CacheEpoch>, policy: &GcPolicy) -> std::io::Result<GcStats> {
    let mut stats = GcStats::default();
    let current_name = current.map(|e| format!("verdicts-{e}.json"));
    // (mtime, size, path) of every non-current epoch file
    let mut others: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Ok(meta) = entry.metadata() else { continue };
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if is_stale_temp(&path, &meta) {
            stats.removed_files += 1;
            stats.removed_bytes += meta.len();
            std::fs::remove_file(&path).ok();
            continue;
        }
        if !name.starts_with("verdicts-") || !name.ends_with(".json") {
            continue;
        }
        if current_name.as_deref() == Some(name) {
            stats.retained_files += 1;
            stats.retained_bytes += meta.len();
            continue;
        }
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        others.push((mtime, meta.len(), path));
    }
    // newest first; the tail beyond keep_epochs goes
    others.sort_by_key(|(mtime, _, _)| std::cmp::Reverse(*mtime));
    let keep = policy.keep_epochs.unwrap_or(usize::MAX).min(others.len());
    for (_, size, path) in others.drain(keep..) {
        stats.removed_files += 1;
        stats.removed_bytes += size;
        std::fs::remove_file(&path).ok();
    }
    // size cap: drop the oldest retained non-current files until we fit
    if let Some(cap) = policy.max_bytes {
        let mut total: u64 = stats.retained_bytes + others.iter().map(|(_, s, _)| s).sum::<u64>();
        while total > cap {
            let Some((_, size, path)) = others.pop() else {
                break; // only the current epoch remains
            };
            stats.removed_files += 1;
            stats.removed_bytes += size;
            total -= size;
            std::fs::remove_file(&path).ok();
        }
    }
    stats.retained_files += others.len();
    stats.retained_bytes += others.iter().map(|(_, s, _)| s).sum::<u64>();
    Ok(stats)
}

/// Parse a store file's text into its entries and generation marker;
/// `None` on any malformation (wrong JSON, schema, or epoch) so the
/// caller quarantines and cold-starts. Files written before the
/// generation marker existed parse as generation 0.
fn parse_store(text: &str, epoch: CacheEpoch) -> Option<(HashMap<String, Value>, u64)> {
    let value: Value = serde_json::from_str(text).ok()?;
    if value.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return None;
    }
    if value.get("epoch").and_then(Value::as_str) != Some(epoch.to_string().as_str()) {
        return None;
    }
    let generation = value.get("generation").and_then(Value::as_u64).unwrap_or(0);
    let fields = value.get("entries")?.as_obj()?;
    Some((
        fields.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        generation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pre: u128, post: u128, route: Option<usize>) -> CacheKey {
        CacheKey {
            pre: BehaviorHash::from_u128(pre),
            post: BehaviorHash::from_u128(post),
            granularity: Granularity::Group,
            route,
            variant: 0,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rela-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrips_across_open() {
        let dir = tmpdir("roundtrip");
        let epoch = CacheEpoch::derive(42, "engine/v1");
        let store = VerdictStore::open(&dir, epoch).unwrap();
        assert!(store.is_empty());
        store.put(&key(1, 2, None), Value::Str("verdict".into()));
        store.put(&key(1, 2, Some(3)), Value::Int(7));
        store.persist().unwrap();

        let reopened = VerdictStore::open(&dir, epoch).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.loaded(), 2);
        assert_eq!(
            reopened.get(&key(1, 2, None)),
            Some(Value::Str("verdict".into()))
        );
        assert_eq!(reopened.get(&key(1, 2, Some(3))), Some(Value::Int(7)));
        assert_eq!(reopened.get(&key(9, 9, None)), None);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserted), (2, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_change_is_a_full_miss() {
        let dir = tmpdir("epoch");
        let e1 = CacheEpoch::derive(content_hash128(b"spec v1"), "engine/v1");
        let store = VerdictStore::open(&dir, e1).unwrap();
        store.put(&key(1, 2, None), Value::Bool(true));
        store.persist().unwrap();

        // a spec edit derives a different epoch → nothing is replayed
        let e2 = CacheEpoch::derive(content_hash128(b"spec v2"), "engine/v1");
        assert_ne!(e1, e2);
        let cold = VerdictStore::open(&dir, e2).unwrap();
        assert!(cold.is_empty());

        // ...and so does an engine upgrade at the same spec
        let e3 = CacheEpoch::derive(content_hash128(b"spec v1"), "engine/v2");
        assert_ne!(e1, e3);
        assert!(VerdictStore::open(&dir, e3).unwrap().is_empty());

        // the original epoch still hits
        let warm = VerdictStore::open(&dir, e1).unwrap();
        assert_eq!(warm.get(&key(1, 2, None)), Some(Value::Bool(true)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_truncated_files_cold_start() {
        let dir = tmpdir("corrupt");
        let epoch = CacheEpoch::derive(7, "engine/v1");
        let store = VerdictStore::open(&dir, epoch).unwrap();
        store.put(&key(1, 2, None), Value::Bool(true));
        store.persist().unwrap();
        let path = dir.join(format!("verdicts-{epoch}.json"));

        // truncate mid-document
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // outright garbage
        std::fs::write(&path, "not json at all {{{").unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // valid JSON, wrong schema tag
        std::fs::write(&path, r#"{"schema":"other/v9","epoch":"0","entries":{}}"#).unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // valid JSON, wrong recorded epoch (e.g. a renamed file)
        std::fs::write(
            &path,
            format!(
                r#"{{"schema":"{SCHEMA}","epoch":"{:032x}","entries":{{"k":1}}}}"#,
                99
            ),
        )
        .unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // a cold-started store can still persist over the corpse
        let recovered = VerdictStore::open(&dir, epoch).unwrap();
        recovered.put(&key(3, 4, None), Value::Int(1));
        recovered.persist().unwrap();
        assert_eq!(VerdictStore::open(&dir, epoch).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_bytes_are_deterministic() {
        // identical entries at the same generation must produce
        // identical bytes, regardless of insertion order (the
        // generation marker is the only legitimate byte difference
        // between flushes)
        let dir_a = tmpdir("determinism-a");
        let dir_b = tmpdir("determinism-b");
        let epoch = CacheEpoch::derive(5, "e");
        let a = VerdictStore::open(&dir_a, epoch).unwrap();
        a.put(&key(1, 1, None), Value::Int(1));
        a.put(&key(2, 2, None), Value::Int(2));
        a.persist().unwrap();
        let b = VerdictStore::open(&dir_b, epoch).unwrap();
        b.put(&key(2, 2, None), Value::Int(2));
        b.put(&key(1, 1, None), Value::Int(1));
        b.persist().unwrap();
        let name = format!("verdicts-{epoch}.json");
        assert_eq!(
            std::fs::read_to_string(dir_a.join(&name)).unwrap(),
            std::fs::read_to_string(dir_b.join(&name)).unwrap()
        );
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    /// Populate one epoch file in `dir` and return its path.
    fn write_epoch(dir: &Path, tag: u128, entries: usize) -> PathBuf {
        let epoch = CacheEpoch::derive(tag, "engine/v1");
        let store = VerdictStore::open(dir, epoch).unwrap();
        for i in 0..entries {
            store.put(&key(i as u128, 1, None), Value::Int(i as i64));
        }
        store.persist().unwrap();
        dir.join(format!("verdicts-{epoch}.json"))
    }

    #[test]
    fn gc_prunes_superseded_epochs_but_never_the_current_one() {
        let dir = tmpdir("gc-epochs");
        let current = CacheEpoch::derive(0, "engine/v1");
        let current_path = write_epoch(&dir, 0, 4);
        let old_paths: Vec<PathBuf> = (1..=3).map(|t| write_epoch(&dir, t, 2)).collect();

        // keep_epochs = 0: only the current epoch survives
        let stats = gc(
            &dir,
            Some(current),
            &GcPolicy {
                keep_epochs: Some(0),
                max_bytes: None,
            },
        )
        .unwrap();
        assert_eq!(stats.removed_files, 3, "{stats:?}");
        assert_eq!(stats.retained_files, 1);
        assert!(current_path.exists());
        for p in &old_paths {
            assert!(!p.exists(), "{} survived", p.display());
        }
        // the surviving store still replays
        let store = VerdictStore::open(&dir, current).unwrap();
        assert_eq!(store.loaded(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_size_cap_drops_oldest_first() {
        let dir = tmpdir("gc-cap");
        let current = CacheEpoch::derive(0, "engine/v1");
        write_epoch(&dir, 0, 2);
        let oldest = write_epoch(&dir, 1, 50);
        // ensure distinct mtimes (coarse clocks)
        std::thread::sleep(std::time::Duration::from_millis(20));
        let newest = write_epoch(&dir, 2, 2);

        let cap = std::fs::metadata(dir.join(format!("verdicts-{current}.json")))
            .unwrap()
            .len()
            + std::fs::metadata(&newest).unwrap().len();
        let stats = gc(
            &dir,
            Some(current),
            &GcPolicy {
                keep_epochs: None,
                max_bytes: Some(cap),
            },
        )
        .unwrap();
        assert!(!oldest.exists(), "size cap must evict the oldest file");
        assert!(newest.exists());
        assert!(stats.retained_bytes <= cap, "{stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_size_cap_exact_limit_removes_nothing() {
        let dir = tmpdir("gc-cap-exact");
        let current = CacheEpoch::derive(0, "engine/v1");
        let current_path = write_epoch(&dir, 0, 3);
        let sibling = write_epoch(&dir, 1, 5);
        // a store already exactly at the cap is within budget: `total >
        // cap` is strict, so the boundary byte evicts nothing
        let cap = std::fs::metadata(&current_path).unwrap().len()
            + std::fs::metadata(&sibling).unwrap().len();
        let stats = gc(
            &dir,
            Some(current),
            &GcPolicy {
                keep_epochs: None,
                max_bytes: Some(cap),
            },
        )
        .unwrap();
        assert_eq!(stats.removed_files, 0, "{stats:?}");
        assert_eq!(stats.retained_files, 2);
        assert_eq!(stats.retained_bytes, cap);
        assert!(current_path.exists() && sibling.exists());
        // one byte less and the sibling must go
        let stats = gc(
            &dir,
            Some(current),
            &GcPolicy {
                keep_epochs: None,
                max_bytes: Some(cap - 1),
            },
        )
        .unwrap();
        assert_eq!(stats.removed_files, 1, "{stats:?}");
        assert!(current_path.exists());
        assert!(!sibling.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_size_cap_never_evicts_the_current_epoch_even_over_budget() {
        let dir = tmpdir("gc-cap-over");
        let current = CacheEpoch::derive(0, "engine/v1");
        let current_path = write_epoch(&dir, 0, 40);
        let sibling = write_epoch(&dir, 1, 40);
        // a cap below even the current epoch's own size: the sibling is
        // evicted, but the store a run is using must never go cold —
        // the directory is left over budget rather than emptied
        let stats = gc(
            &dir,
            Some(current),
            &GcPolicy {
                keep_epochs: None,
                max_bytes: Some(1),
            },
        )
        .unwrap();
        assert_eq!(stats.removed_files, 1, "{stats:?}");
        assert!(!sibling.exists());
        assert!(current_path.exists(), "current epoch must survive");
        assert!(
            stats.retained_bytes > 1,
            "the current epoch legitimately exceeds the cap: {stats:?}"
        );
        // and it still replays
        let store = VerdictStore::open(&dir, current).unwrap();
        assert_eq!(store.loaded(), 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_size_cap_zero_budget_keeps_only_the_current_epoch() {
        let dir = tmpdir("gc-cap-zero");
        let current = CacheEpoch::derive(0, "engine/v1");
        let current_path = write_epoch(&dir, 0, 2);
        let siblings: Vec<PathBuf> = (1..=3).map(|t| write_epoch(&dir, t, 2)).collect();
        let stats = gc(
            &dir,
            Some(current),
            &GcPolicy {
                keep_epochs: None,
                max_bytes: Some(0),
            },
        )
        .unwrap();
        assert_eq!(stats.removed_files, 3, "{stats:?}");
        assert_eq!(stats.retained_files, 1);
        for p in &siblings {
            assert!(!p.exists(), "{} survived a zero budget", p.display());
        }
        assert!(current_path.exists());
        // with no current epoch, a zero budget empties the directory
        let orphan = write_epoch(&dir, 9, 2);
        let stats = gc(
            &dir,
            None,
            &GcPolicy {
                keep_epochs: None,
                max_bytes: Some(0),
            },
        )
        .unwrap();
        assert!(!orphan.exists());
        assert!(
            !current_path.exists(),
            "no current epoch: nothing is pinned"
        );
        assert_eq!(stats.retained_files, 0, "{stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_with_gc_sweeps_and_still_replays() {
        let dir = tmpdir("gc-open");
        let current = CacheEpoch::derive(0, "engine/v1");
        write_epoch(&dir, 0, 3);
        for t in 1..=12 {
            write_epoch(&dir, t, 1);
        }
        // a fresh temp file from a live writer must survive; gc only
        // reclaims abandoned ones
        let fresh_tmp = dir.join(format!("verdicts-x.json.tmp.{}.0", std::process::id()));
        std::fs::write(&fresh_tmp, "{}").unwrap();

        let store = VerdictStore::open_with_gc(&dir, current, &GcPolicy::default()).unwrap();
        assert_eq!(store.loaded(), 3, "sweep must not touch the opened epoch");
        let epoch_files = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("verdicts-") && name.ends_with(".json")
            })
            .count();
        assert_eq!(epoch_files, 9, "current + 8 most recent siblings");
        assert!(fresh_tmp.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_gets_hit_distinct_shards() {
        // smoke the sharded map under concurrent readers/writers
        let store = std::sync::Arc::new(VerdictStore::in_memory(CacheEpoch::derive(9, "e")));
        for i in 0..256u128 {
            store.put(&key(i, i, None), Value::Int(i as i64));
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..256u128 {
                        assert_eq!(
                            store.get(&key(i, i, None)),
                            Some(Value::Int(i as i64)),
                            "thread {t}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().hits, 256 * 4);
        assert_eq!(store.len(), 256);
    }

    #[test]
    fn keys_disambiguate_route_granularity_and_variant() {
        let epoch = CacheEpoch::derive(1, "e");
        let store = VerdictStore::in_memory(epoch);
        store.put(&key(1, 2, None), Value::Int(0));
        store.put(&key(1, 2, Some(0)), Value::Int(1));
        let mut iface = key(1, 2, None);
        iface.granularity = Granularity::Interface;
        store.put(&iface, Value::Int(2));
        // same class, different verdict-shaping options → separate entry
        let mut wide = key(1, 2, None);
        wide.variant = 7;
        store.put(&wide, Value::Int(3));
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(&key(1, 2, None)), Some(Value::Int(0)));
        assert_eq!(store.get(&key(1, 2, Some(0))), Some(Value::Int(1)));
        assert_eq!(store.get(&iface), Some(Value::Int(2)));
        assert_eq!(store.get(&wide), Some(Value::Int(3)));
        // in-memory stores never persist
        assert!(store.persist().is_ok());
    }
}
