//! # rela-cache
//!
//! A persistent, cross-run verdict store for incremental re-checking.
//!
//! The paper's operational workflow (§8.1) validates four near-identical
//! iterations of one WAN change; between iterations the overwhelming
//! majority of `(pre, post)` behavior classes are unchanged, so their
//! relational obligations need not be re-decided. This crate persists
//! the checker's `BehaviorHash → verdict` memo across process exits:
//! iteration N+1 re-decides only the classes whose fingerprints moved —
//! the network analogue of proof reuse across related executions in
//! relational program/DNN verification.
//!
//! ## Store layout
//!
//! A cache directory holds one JSON file per **epoch**:
//!
//! ```text
//! <cache-dir>/verdicts-<epoch>.json
//! {
//!   "schema": "rela-cache/v1",
//!   "epoch": "<32 hex digits>",
//!   "entries": { "<pre>:<post>:<granularity>:<route>": { ...payload... } }
//! }
//! ```
//!
//! The epoch is a content hash of the spec AST and the engine version
//! ([`CacheEpoch::derive`]): editing the spec — or upgrading to a
//! checker whose decisions could differ — lands in a different file, so
//! every lookup is a clean miss and stale verdicts can never leak. Keys
//! bind the pre/post behavior fingerprints, the compile granularity, and
//! the pspec route that selected the check, mirroring exactly the
//! identity the in-run dedup engine groups classes by.
//!
//! Robustness contract: a missing, truncated, corrupt, or
//! wrong-schema/wrong-epoch store file is **treated as cold**, never an
//! error — the cache is an accelerator, not a dependency. Writes go
//! through a temp file + atomic rename so a crashed run cannot corrupt
//! an existing store.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rela_net::{content_hash128, BehaviorHash, Granularity};
use serde::Value;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The on-disk schema tag; bump when the file layout changes shape.
pub const SCHEMA: &str = "rela-cache/v1";

/// A cache generation: verdicts recorded under one epoch are only ever
/// replayed under the same epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheEpoch(u128);

impl CacheEpoch {
    /// Derive the epoch for a spec/engine combination. `spec_hash` is a
    /// content hash of everything the compiled program depends on — the
    /// spec AST *and* the location database it resolves against (see
    /// `rela_core::cache_epoch`), so formatting and comments don't
    /// churn the cache but any semantic edit to either does — and
    /// `engine` names the deciding engine and its version: a new
    /// engine must never replay an old engine's verdicts.
    pub fn derive(spec_hash: u128, engine: &str) -> CacheEpoch {
        let mut bytes = Vec::with_capacity(16 + engine.len() + 1);
        bytes.extend_from_slice(&spec_hash.to_le_bytes());
        bytes.push(0xff); // separator: (hash, engine) pairs can't collide
        bytes.extend_from_slice(engine.as_bytes());
        CacheEpoch(content_hash128(&bytes))
    }

    /// Rebuild an epoch from its raw value (tests, tooling).
    pub fn from_u128(raw: u128) -> CacheEpoch {
        CacheEpoch(raw)
    }
}

impl fmt::Display for CacheEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The identity of one cached verdict: everything that determines what
/// the checker would decide for a behavior class, minus the spec and
/// engine (which live in the epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Pre-change behavior fingerprint.
    pub pre: BehaviorHash,
    /// Post-change behavior fingerprint.
    pub post: BehaviorHash,
    /// The granularity the program was compiled at (hashing granularity
    /// is already baked into the fingerprints, but rendering and
    /// routing read the compile granularity).
    pub granularity: Granularity,
    /// Index of the pspec route that selected the check (`None` = the
    /// default check).
    pub route: Option<usize>,
    /// Fingerprint of the caller's verdict-shaping options (witness
    /// limits, rendered path counts, ...). Runs with different options
    /// produce differently-shaped payloads and must never share an
    /// entry.
    pub variant: u64,
}

impl CacheKey {
    /// The stable string form used as the JSON object key. Granularity
    /// renders through its canonical `Display` so the key format has
    /// exactly one source of truth.
    fn render(&self) -> String {
        let route = match self.route {
            Some(r) => r.to_string(),
            None => "-".to_owned(),
        };
        format!(
            "{}:{}:{}:{}:{:016x}",
            self.pre, self.post, self.granularity, route, self.variant
        )
    }
}

/// Lookup/insert/persist counters, readable after a run (`--cache-stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Fresh verdicts recorded this run.
    pub inserted: usize,
}

/// The persistent verdict store: an in-memory map hydrated from (and
/// flushed back to) one epoch file. Payloads are opaque JSON values —
/// the checker owns their shape, the store owns identity and durability.
pub struct VerdictStore {
    /// `None` for a memory-only store (tests, `--no-cache` probes).
    path: Option<PathBuf>,
    epoch: CacheEpoch,
    entries: Mutex<HashMap<String, Value>>,
    /// How many entries came from disk (for stats/reporting).
    loaded: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    inserted: AtomicUsize,
}

impl VerdictStore {
    /// Open (or cold-start) the store for `epoch` under `dir`. The
    /// directory is created if missing. Unreadable or malformed store
    /// files yield an empty store — cold, not a crash.
    pub fn open(dir: &Path, epoch: CacheEpoch) -> std::io::Result<VerdictStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("verdicts-{epoch}.json"));
        let entries = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_store(&text, epoch))
            .unwrap_or_default();
        Ok(VerdictStore {
            path: Some(path),
            epoch,
            loaded: entries.len(),
            entries: Mutex::new(entries),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            inserted: AtomicUsize::new(0),
        })
    }

    /// A store that never touches disk (`persist` is a no-op).
    pub fn in_memory(epoch: CacheEpoch) -> VerdictStore {
        VerdictStore {
            path: None,
            epoch,
            loaded: 0,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            inserted: AtomicUsize::new(0),
        }
    }

    /// The epoch this store serves.
    pub fn epoch(&self) -> CacheEpoch {
        self.epoch
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("store lock").len()
    }

    /// True when no verdicts are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries hydrated from disk at open time.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Look up a verdict payload.
    pub fn get(&self, key: &CacheKey) -> Option<Value> {
        let found = self
            .entries
            .lock()
            .expect("store lock")
            .get(&key.render())
            .cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a verdict payload (last write wins; callers only ever
    /// write identical payloads for identical keys).
    pub fn put(&self, key: &CacheKey, payload: Value) {
        self.inserted.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("store lock")
            .insert(key.render(), payload);
    }

    /// This run's lookup/insert counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
        }
    }

    /// Flush the store to its epoch file (temp file + atomic rename).
    /// No-op for in-memory stores.
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let entries = self.entries.lock().expect("store lock");
        let mut fields: Vec<(String, Value)> = entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        // deterministic file bytes: sorted keys, stable across HashMap
        // iteration order and across runs
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        let doc = Value::obj(vec![
            ("schema", Value::Str(SCHEMA.to_owned())),
            ("epoch", Value::Str(self.epoch.to_string())),
            ("entries", Value::Obj(fields)),
        ]);
        // compact, not pretty: the store is machine-read on every warm
        // run, and entry payloads dominate the bytes either way
        let json = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // unique temp name per process and call: concurrent persists to
        // a shared cache dir must never interleave writes on one temp
        // file (the rename itself is atomic; last writer wins whole)
        static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, json + "\n")?;
        std::fs::rename(&tmp, path)
    }
}

/// Parse a store file's text; `None` on any malformation (wrong JSON,
/// schema, or epoch) so the caller cold-starts.
fn parse_store(text: &str, epoch: CacheEpoch) -> Option<HashMap<String, Value>> {
    let value: Value = serde_json::from_str(text).ok()?;
    if value.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return None;
    }
    if value.get("epoch").and_then(Value::as_str) != Some(epoch.to_string().as_str()) {
        return None;
    }
    let fields = value.get("entries")?.as_obj()?;
    Some(fields.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pre: u128, post: u128, route: Option<usize>) -> CacheKey {
        CacheKey {
            pre: BehaviorHash::from_u128(pre),
            post: BehaviorHash::from_u128(post),
            granularity: Granularity::Group,
            route,
            variant: 0,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rela-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrips_across_open() {
        let dir = tmpdir("roundtrip");
        let epoch = CacheEpoch::derive(42, "engine/v1");
        let store = VerdictStore::open(&dir, epoch).unwrap();
        assert!(store.is_empty());
        store.put(&key(1, 2, None), Value::Str("verdict".into()));
        store.put(&key(1, 2, Some(3)), Value::Int(7));
        store.persist().unwrap();

        let reopened = VerdictStore::open(&dir, epoch).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.loaded(), 2);
        assert_eq!(
            reopened.get(&key(1, 2, None)),
            Some(Value::Str("verdict".into()))
        );
        assert_eq!(reopened.get(&key(1, 2, Some(3))), Some(Value::Int(7)));
        assert_eq!(reopened.get(&key(9, 9, None)), None);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserted), (2, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_change_is_a_full_miss() {
        let dir = tmpdir("epoch");
        let e1 = CacheEpoch::derive(content_hash128(b"spec v1"), "engine/v1");
        let store = VerdictStore::open(&dir, e1).unwrap();
        store.put(&key(1, 2, None), Value::Bool(true));
        store.persist().unwrap();

        // a spec edit derives a different epoch → nothing is replayed
        let e2 = CacheEpoch::derive(content_hash128(b"spec v2"), "engine/v1");
        assert_ne!(e1, e2);
        let cold = VerdictStore::open(&dir, e2).unwrap();
        assert!(cold.is_empty());

        // ...and so does an engine upgrade at the same spec
        let e3 = CacheEpoch::derive(content_hash128(b"spec v1"), "engine/v2");
        assert_ne!(e1, e3);
        assert!(VerdictStore::open(&dir, e3).unwrap().is_empty());

        // the original epoch still hits
        let warm = VerdictStore::open(&dir, e1).unwrap();
        assert_eq!(warm.get(&key(1, 2, None)), Some(Value::Bool(true)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_truncated_files_cold_start() {
        let dir = tmpdir("corrupt");
        let epoch = CacheEpoch::derive(7, "engine/v1");
        let store = VerdictStore::open(&dir, epoch).unwrap();
        store.put(&key(1, 2, None), Value::Bool(true));
        store.persist().unwrap();
        let path = dir.join(format!("verdicts-{epoch}.json"));

        // truncate mid-document
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // outright garbage
        std::fs::write(&path, "not json at all {{{").unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // valid JSON, wrong schema tag
        std::fs::write(&path, r#"{"schema":"other/v9","epoch":"0","entries":{}}"#).unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // valid JSON, wrong recorded epoch (e.g. a renamed file)
        std::fs::write(
            &path,
            format!(
                r#"{{"schema":"{SCHEMA}","epoch":"{:032x}","entries":{{"k":1}}}}"#,
                99
            ),
        )
        .unwrap();
        assert!(VerdictStore::open(&dir, epoch).unwrap().is_empty());

        // a cold-started store can still persist over the corpse
        let recovered = VerdictStore::open(&dir, epoch).unwrap();
        recovered.put(&key(3, 4, None), Value::Int(1));
        recovered.persist().unwrap();
        assert_eq!(VerdictStore::open(&dir, epoch).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_bytes_are_deterministic() {
        let dir = tmpdir("determinism");
        let epoch = CacheEpoch::derive(5, "e");
        let a = VerdictStore::open(&dir, epoch).unwrap();
        // insert in one order...
        a.put(&key(1, 1, None), Value::Int(1));
        a.put(&key(2, 2, None), Value::Int(2));
        a.persist().unwrap();
        let path = dir.join(format!("verdicts-{epoch}.json"));
        let first = std::fs::read_to_string(&path).unwrap();
        // ...reopen and re-persist after inserting in the other order
        let b = VerdictStore::open(&dir, epoch).unwrap();
        b.put(&key(2, 2, None), Value::Int(2));
        b.put(&key(1, 1, None), Value::Int(1));
        b.persist().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_disambiguate_route_granularity_and_variant() {
        let epoch = CacheEpoch::derive(1, "e");
        let store = VerdictStore::in_memory(epoch);
        store.put(&key(1, 2, None), Value::Int(0));
        store.put(&key(1, 2, Some(0)), Value::Int(1));
        let mut iface = key(1, 2, None);
        iface.granularity = Granularity::Interface;
        store.put(&iface, Value::Int(2));
        // same class, different verdict-shaping options → separate entry
        let mut wide = key(1, 2, None);
        wide.variant = 7;
        store.put(&wide, Value::Int(3));
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(&key(1, 2, None)), Some(Value::Int(0)));
        assert_eq!(store.get(&key(1, 2, Some(0))), Some(Value::Int(1)));
        assert_eq!(store.get(&iface), Some(Value::Int(2)));
        assert_eq!(store.get(&wide), Some(Value::Int(3)));
        // in-memory stores never persist
        assert!(store.persist().is_ok());
    }
}
