//! Fault-injected persistence tests for the verdict store: injected
//! `ENOSPC` is a typed error that never touches the committed file, a
//! torn rename is quarantined (not silently deleted) on the next open,
//! and the generation marker counts exactly the successful flushes.
//!
//! These tests install the **process-global** fault plan, so they live
//! in their own integration binary and serialize on one lock — a plan
//! leaking into a concurrent test would fault I/O it doesn't own.

use rela_cache::{CacheEpoch, CacheKey, VerdictStore};
use rela_net::faultio::{self, FaultPlan};
use rela_net::{BehaviorHash, Granularity};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Run `body` with `spec` installed as the global plan; always clears
/// the plan afterwards, even when `body` panics.
fn with_plan(spec: &str, body: impl FnOnce()) {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faultio::install(FaultPlan::parse(spec).expect("valid fault spec"));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    faultio::clear();
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

fn key(n: u128) -> CacheKey {
    CacheKey {
        pre: BehaviorHash::from_u128(n),
        post: BehaviorHash::from_u128(n + 1),
        granularity: Granularity::Group,
        route: None,
        variant: 0,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rela-crashfaults-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn store_files(dir: &Path, marker: &str) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.contains(marker))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn injected_enospc_fails_the_flush_but_never_the_committed_file() {
    let dir = tmpdir("enospc");
    let epoch = CacheEpoch::derive(1, "engine/v1");
    let store = VerdictStore::open(&dir, epoch).unwrap();
    store.put(&key(1), Value::Int(1));
    store.persist().unwrap();
    assert_eq!(store.generation(), 1);
    let path = dir.join(format!("verdicts-{epoch}.json"));
    let committed = std::fs::read_to_string(&path).unwrap();

    store.put(&key(2), Value::Int(2));
    with_plan("enospc-after=16", || {
        let err = store.persist().expect_err("the write budget must run out");
        assert!(err.to_string().contains("No space left"), "{err}");
    });
    // the failed flush: no generation bump, still dirty, no temp corpse,
    // and the committed bytes untouched
    assert_eq!(store.generation(), 1);
    assert!(store.is_dirty());
    assert_eq!(store_files(&dir, ".tmp."), Vec::<String>::new());
    assert_eq!(std::fs::read_to_string(&path).unwrap(), committed);

    // with the plan gone the same flush goes through
    store.persist().unwrap();
    assert_eq!(store.generation(), 2);
    assert!(!store.is_dirty());
    let reopened = VerdictStore::open(&dir, epoch).unwrap();
    assert_eq!(reopened.loaded(), 2);
    assert_eq!(reopened.generation(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_rename_is_quarantined_not_silently_dropped() {
    let dir = tmpdir("torn");
    let epoch = CacheEpoch::derive(2, "engine/v1");
    let store = VerdictStore::open(&dir, epoch).unwrap();
    store.put(&key(1), Value::Int(1));
    // the tear truncates the temp file *after* its fsync, so the rename
    // commits half a document — the classic torn-write crash artifact
    with_plan("tear=persist@1", || {
        store.persist().unwrap();
    });

    let recovered = VerdictStore::open(&dir, epoch).unwrap();
    assert!(recovered.is_empty(), "a torn store must cold-start");
    let quarantined = recovered.quarantined();
    assert_eq!(quarantined.len(), 1, "{quarantined:?}");
    assert!(
        quarantined[0].to_string_lossy().contains(".quarantine."),
        "{quarantined:?}"
    );
    assert!(
        quarantined[0].exists(),
        "the torn bytes are evidence, not garbage"
    );

    // the recovered store can rebuild and persist over the loss
    recovered.put(&key(1), Value::Int(1));
    recovered.persist().unwrap();
    let warm = VerdictStore::open(&dir, epoch).unwrap();
    assert_eq!(warm.loaded(), 1);
    assert!(warm.quarantined().is_empty(), "clean open after recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_panic_mid_persist_leaves_the_previous_file_intact() {
    let dir = tmpdir("panic");
    let epoch = CacheEpoch::derive(3, "engine/v1");
    let store = VerdictStore::open(&dir, epoch).unwrap();
    store.put(&key(1), Value::Int(1));
    store.persist().unwrap();
    let path = dir.join(format!("verdicts-{epoch}.json"));
    let committed = std::fs::read_to_string(&path).unwrap();

    store.put(&key(2), Value::Int(2));
    with_plan("panic=persist@1", || {
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.persist()));
        assert!(unwound.is_err(), "the injected panic must fire");
    });
    // the crash window is between temp-fsync and rename: the committed
    // file is exactly the previous flush
    assert_eq!(std::fs::read_to_string(&path).unwrap(), committed);
    assert_eq!(store.generation(), 1);

    // a later clean flush commits both entries
    store.persist().unwrap();
    let reopened = VerdictStore::open(&dir, epoch).unwrap();
    assert_eq!(reopened.loaded(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eintr_during_the_flush_is_retried_not_fatal() {
    let dir = tmpdir("eintr");
    let epoch = CacheEpoch::derive(4, "engine/v1");
    let store = VerdictStore::open(&dir, epoch).unwrap();
    for n in 0..64 {
        store.put(&key(n), Value::Int(n as i64));
    }
    // a high EINTR rate: `write_all` must absorb every interruption
    with_plan("seed=11,eintr=0.4", || {
        store.persist().unwrap();
    });
    let reopened = VerdictStore::open(&dir, epoch).unwrap();
    assert_eq!(reopened.loaded(), 64);
    assert!(reopened.quarantined().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
