//! Criterion micro-benchmarks for the automata substrate: the primitive
//! costs behind the paper's decision procedure (§6) — determinization,
//! minimization, equivalence, transducer composition, and image
//! computation — as a function of input size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rela_automata::{compose, determinize, equivalent, image, minimize, Fst, Nfa, Regex, Symbol};
use std::hint::black_box;

fn sym(ix: usize) -> Symbol {
    Symbol::from_index(ix)
}

/// A chain-of-choices regex: (a0|b0)(a1|b1)...(an|bn) — DFA-friendly but
/// grows linearly.
fn chain_regex(n: usize) -> Regex {
    Regex::concat(
        (0..n)
            .map(|i| Regex::union(vec![Regex::sym(sym(2 * i)), Regex::sym(sym(2 * i + 1))]))
            .collect(),
    )
}

/// The classic exponential-determinization family: .* a .{n}
fn needle_regex(n: usize) -> Regex {
    let mut parts = vec![Regex::any_star(), Regex::sym(sym(0))];
    parts.extend(std::iter::repeat_n(Regex::any(), n));
    Regex::concat(parts)
}

fn bench_determinize(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinize");
    for n in [4usize, 8, 12] {
        let nfa = needle_regex(n).to_nfa();
        group.bench_with_input(BenchmarkId::new("needle", n), &nfa, |b, nfa| {
            b.iter(|| determinize(black_box(nfa)))
        });
        let chain = chain_regex(n * 4).to_nfa();
        group.bench_with_input(BenchmarkId::new("chain", n * 4), &chain, |b, nfa| {
            b.iter(|| determinize(black_box(nfa)))
        });
    }
    group.finish();
}

fn bench_minimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimize");
    for n in [4usize, 8] {
        let dfa = determinize(&needle_regex(n).to_nfa());
        group.bench_with_input(BenchmarkId::new("needle", n), &dfa, |b, dfa| {
            b.iter(|| minimize(black_box(dfa)))
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence");
    for n in [8usize, 16, 32] {
        let d1 = determinize(&chain_regex(n).to_nfa());
        let d2 = determinize(&chain_regex(n).to_nfa());
        group.bench_with_input(BenchmarkId::new("equal-chains", n), &n, |b, _| {
            b.iter(|| equivalent(black_box(&d1), black_box(&d2)))
        });
    }
    group.finish();
}

fn bench_fst(c: &mut Criterion) {
    let mut group = c.benchmark_group("fst");
    for n in [4usize, 8, 16] {
        // identity over a chain, composed with a rewrite relation
        let base = chain_regex(n).to_nfa();
        let ident = Fst::identity(&base);
        let rewrite = Fst::cross(&base, &chain_regex(n).to_nfa());
        group.bench_with_input(BenchmarkId::new("compose", n), &n, |b, _| {
            b.iter(|| compose(black_box(&ident), black_box(&rewrite)))
        });
        let word: Vec<Symbol> = (0..n).map(|i| sym(2 * i)).collect();
        let p = Nfa::word(&word);
        group.bench_with_input(BenchmarkId::new("image", n), &n, |b, _| {
            b.iter(|| image(black_box(&p), black_box(&rewrite)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_determinize,
    bench_minimize,
    bench_equivalence,
    bench_fst
);
criterion_main!(benches);
