//! Criterion version of the paper's performance evaluation (§9.2):
//! end-to-end validation cost by spec size and granularity on the
//! synthetic WAN, plus the path-diff baseline for comparison.
//!
//! This complements the `fig6`/`fig7` harness bins: the bins print the
//! paper's exact rows/series; these benches give statistically robust
//! per-configuration timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rela_baseline::{path_diff, DiffOptions};
use rela_bench::{build_testbed, Testbed};
use rela_core::{CheckReport, CheckSession, JobSpec, SessionConfig};
use rela_net::{Granularity, LocationDb, SnapshotPair};
use rela_sim::workload::{spec_of_size, WanParams};
use std::hint::black_box;

/// One cold validation (parse + compile + check) through the session
/// API — the quantity the paper's Fig. 6/7 time.
fn run_check(
    source: &str,
    db: &LocationDb,
    granularity: Granularity,
    pair: &SnapshotPair,
) -> CheckReport {
    let session = CheckSession::open(
        source,
        db.clone(),
        SessionConfig {
            granularity,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");
    session.run(JobSpec::pair(pair)).expect("in-memory pair")
}

fn small_params() -> WanParams {
    WanParams {
        regions: 4,
        routers_per_group: 2,
        parallel_links: 2,
        fecs_per_pair: 2,
    }
}

fn bench_by_spec_size(c: &mut Criterion) {
    let params = small_params();
    let tb: Testbed = build_testbed(&params);
    let mut group = c.benchmark_group("validation-by-spec-size");
    group.sample_size(10);
    for n in [1usize, 4, 7, 13] {
        let source = spec_of_size(n, params.regions);
        group.bench_with_input(BenchmarkId::from_parameter(n), &source, |b, src| {
            b.iter(|| {
                run_check(
                    black_box(src),
                    &tb.wan.topology.db,
                    Granularity::Group,
                    &tb.pair,
                )
            })
        });
    }
    group.finish();
}

fn bench_by_granularity(c: &mut Criterion) {
    let params = small_params();
    let tb = build_testbed(&params);
    let source = spec_of_size(4, params.regions);
    let mut group = c.benchmark_group("validation-by-granularity");
    group.sample_size(10);
    for granularity in [
        Granularity::Group,
        Granularity::Device,
        Granularity::Interface,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(granularity),
            &granularity,
            |b, &g| b.iter(|| run_check(black_box(&source), &tb.wan.topology.db, g, &tb.pair)),
        );
    }
    group.finish();
}

fn bench_pathdiff_baseline(c: &mut Criterion) {
    let params = small_params();
    let tb = build_testbed(&params);
    let mut group = c.benchmark_group("baseline");
    group.sample_size(10);
    group.bench_function("path-diff", |b| {
        b.iter(|| {
            path_diff(
                black_box(&tb.pair),
                &tb.wan.topology.db,
                DiffOptions::default(),
            )
        })
    });
    let nochange = spec_of_size(1, params.regions);
    group.bench_function("rela-nochange", |b| {
        b.iter(|| {
            run_check(
                black_box(&nochange),
                &tb.wan.topology.db,
                Granularity::Device,
                &tb.pair,
            )
        })
    });
    group.finish();
}

/// The dedup-and-memoize engine vs. from-scratch checking, on a testbed
/// with heavy behavior duplication (many FECs per region pair sharing
/// one forwarding graph) — the workload of the paper's 10⁶-class claim.
fn bench_dedup_engine(c: &mut Criterion) {
    let params = WanParams {
        regions: 3,
        routers_per_group: 1,
        parallel_links: 1,
        fecs_per_pair: 32,
    };
    let tb = build_testbed(&params);
    let source = spec_of_size(4, params.regions);
    let program = rela_core::parse_program(&source).expect("spec parses");
    let compiled = rela_core::compile_program(&program, &tb.wan.topology.db, Granularity::Group)
        .expect("spec compiles");
    let mut group = c.benchmark_group("dedup-engine");
    group.sample_size(10);
    for dedup in [true, false] {
        let label = if dedup { "dedup" } else { "no-dedup" };
        group.bench_function(label, |b| {
            b.iter(|| {
                rela_core::Checker::new(black_box(&compiled), &tb.wan.topology.db)
                    .with_options(rela_core::CheckOptions {
                        dedup,
                        threads: 1,
                        ..rela_core::CheckOptions::default()
                    })
                    .check(&tb.pair)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_by_spec_size,
    bench_by_granularity,
    bench_pathdiff_baseline,
    bench_dedup_engine
);
criterion_main!(benches);
