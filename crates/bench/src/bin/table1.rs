//! Regenerates **Table 1**: the counterexamples Rela reports when
//! verifying the Figure 1c implementation (iteration v2) against the §4
//! change spec — one wrong path change for T1 (the B3 bounce) and one
//! collateral-damage entry for T2.
//!
//! Run: `cargo run --release -p rela-bench --bin table1`

use rela_core::{CheckSession, JobSpec, SessionConfig};
use rela_net::{Granularity, SnapshotPair};
use rela_sim::scenarios::{case_study, CASE_STUDY_SPEC};

fn main() {
    let study = case_study();
    let spec = format!(
        "{CASE_STUDY_SPEC}\n\
         rir sideEffects := pre <= post && post <= (pre | xa .*)\n\
         pspec sideP := (ingress == \"xa\") -> sideEffects\n"
    );
    let pre = study.pre_snapshot();
    let post = study.post_snapshot(1); // v2 = Figure 1c
    let pair = SnapshotPair::align(&pre, &post);
    let session = CheckSession::open(
        &spec,
        study.topology.db.clone(),
        SessionConfig {
            granularity: Granularity::Group,
            ..SessionConfig::default()
        },
    )
    .expect("case-study spec compiles");
    let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");

    println!("== Table 1: counterexamples for the Figure 1c implementation (v2) ==");
    println!();
    println!("{report}");
    println!();
    println!("paper reference (Table 1):");
    println!("  T1 row: pre x1 A1 B1 B2 B3 D1 y1 → post x1 A1 A2 A3 B3 D1 y1,");
    println!("          e2e expected {{x1 A1 A2 A3 D1 y1}}");
    println!("  T2 row: pre x2 C1 B1 B2 B3 D1 y2 → post x2 C1 C2 D1 y2 (nochange)");
}
