//! Regenerates the **§8.1 case study**: all four iterations of the
//! Figure 1 change validated with Rela, reporting violation counts per
//! sub-spec and comparing them to the published numbers
//! (v1: 15 e2e + 17 nochange; v2: 15 e2e + 24 nochange + 0 sideEffects;
//! v4: clean).
//!
//! Run: `cargo run --release -p rela-bench --bin case_study`

use rela_core::{CheckSession, JobSpec, SessionConfig};
use rela_net::{Granularity, SnapshotPair};
use rela_sim::scenarios::{case_study, CASE_STUDY_SPEC};

fn main() {
    let study = case_study();
    let original = CASE_STUDY_SPEC.to_owned();
    let refined = format!(
        "{CASE_STUDY_SPEC}\n\
         rir sideEffects := pre <= post && post <= (pre | xa .*)\n\
         pspec sideP := (ingress == \"xa\") -> sideEffects\n"
    );
    let pre = study.pre_snapshot();
    // compile each spec revision once; the four iterations then replay
    // against warm sessions, the paper's iterate-and-resubmit loop
    let open = |source: &str| {
        CheckSession::open(
            source,
            study.topology.db.clone(),
            SessionConfig {
                granularity: Granularity::Group,
                ..SessionConfig::default()
            },
        )
        .expect("spec compiles")
    };
    let sessions = [open(&original), open(&refined)];

    println!("== §8.1 case study: four iterations of the Figure 1 change ==");
    println!();
    println!(
        "{:<4} {:<10} {:>6} {:>9} {:>12}  paper (§8.1)",
        "iter", "spec", "e2e", "nochange", "sideEffects"
    );
    let expectations = [
        "17 nochange + 15 e2e (original spec)",
        "15 e2e + 24 nochange + 0 sideEffects",
        "(skipped by the paper: both v2 errors were visible at once)",
        "validated automatically and completely",
    ];
    for (ix, iteration) in study.iterations.iter().enumerate() {
        // v1 was checked with the original spec; the sideEffects
        // refinement exists from v2 on (§8.1)
        let (session, label) = if ix == 0 {
            (&sessions[0], "original")
        } else {
            (&sessions[1], "refined")
        };
        let post = study.post_snapshot(ix);
        let pair = SnapshotPair::align(&pre, &post);
        let report = session.run(JobSpec::pair(&pair)).expect("in-memory pair");
        println!(
            "{:<4} {:<10} {:>6} {:>9} {:>12}  {}",
            iteration.name,
            label,
            report.count_for("e2e"),
            report.count_for("nochange"),
            report.count_for("sideEffects"),
            expectations[ix]
        );
    }
    println!();
    println!("iteration descriptions:");
    for iteration in &study.iterations {
        println!("  {}: {}", iteration.name, iteration.description);
    }
}
