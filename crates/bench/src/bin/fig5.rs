//! Regenerates **Figure 5**: the CDF of relational-spec sizes (number of
//! atomic specs) across the change dataset, plus — with `--coverage` —
//! the §9.1 expressiveness inventory.
//!
//! Run: `cargo run --release -p rela-bench --bin fig5 [-- --coverage]`
//!
//! `--smoke` additionally drives one end-to-end validation (synthesize a
//! tiny WAN, simulate pre/post, check a spec) and fails loudly if any
//! stage breaks — CI runs this so the evaluation pipeline cannot rot.

use rela_sim::workload::{evaluation_specs, size_cdf, spec_of_size, WanParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let params = if smoke {
        // tiny WAN: 3 regions × 1 router/group, single links, 1 FEC/pair
        WanParams {
            regions: 3,
            routers_per_group: 1,
            parallel_links: 1,
            fecs_per_pair: 1,
        }
    } else {
        WanParams::default()
    };
    let specs = evaluation_specs(&params);

    println!("== Figure 5: CDF of atomic specs per change ==");
    println!();
    println!("{:>6} {:>8}", "size", "CDF");
    for (size, fraction) in size_cdf(&specs) {
        println!("{size:>6} {fraction:>8.3}");
    }
    println!();
    let one = specs.iter().filter(|s| s.atomic_count == 1).count();
    let under_ten = specs.iter().filter(|s| s.atomic_count < 10).count();
    println!(
        "headline: {:.0}% need exactly one atomic spec (paper: 50%), \
         {:.0}% need fewer than ten (paper: 93%)",
        100.0 * one as f64 / specs.len() as f64,
        100.0 * under_ten as f64 / specs.len() as f64,
    );

    if smoke {
        println!();
        println!("== smoke: end-to-end validation on the tiny WAN ==");
        let testbed = rela_bench::build_testbed(&params);
        let spec = spec_of_size(1, params.regions);
        let (elapsed, report) = rela_bench::time_validation(
            &spec,
            &testbed.wan.topology.db,
            rela_net::Granularity::Group,
            &testbed.pair,
        );
        println!(
            "checked {} traffic classes in {} ({})",
            report.total,
            rela_bench::secs(elapsed),
            if report.is_compliant() {
                "PASS"
            } else {
                "violations found"
            },
        );
        assert_eq!(
            report.total,
            params.regions * (params.regions - 1) * params.fecs_per_pair as usize,
            "smoke testbed lost traffic classes"
        );
        // the representative change reroutes traffic, so a nochange spec
        // must flag violations; a "compliant" verdict here means the
        // simulator stopped applying the change or the checker went blind
        assert!(
            !report.is_compliant(),
            "smoke check unexpectedly compliant — the pipeline is not detecting changes"
        );
    }

    if args.iter().any(|a| a == "--coverage") {
        println!();
        println!("== §9.1 expressiveness: change-intent inventory ==");
        println!();
        let inventory = [
            ("no expected impact / standardization", true, ""),
            ("traffic shift between paths", true, ""),
            ("link / group maintenance drain", true, ""),
            ("prefix decommission (pspec + remove)", true, ""),
            ("filter insertion (drop modifier)", true, ""),
            ("routing architecture migration", true, ""),
            (
                "unconditional path additions",
                true,
                "needs the RIR escape hatch (footnote 3)",
            ),
            (
                "ECMP path-count limits (e.g. ≤128 paths)",
                false,
                "path counting is outside regular relations (paper's stated limitation)",
            ),
        ];
        let expressible = inventory.iter().filter(|(_, ok, _)| *ok).count();
        for (intent, ok, note) in &inventory {
            let mark = if *ok { "yes" } else { "NO" };
            if note.is_empty() {
                println!("  {mark:<4} {intent}");
            } else {
                println!("  {mark:<4} {intent} — {note}");
            }
        }
        println!();
        println!(
            "coverage: {}/{} intent kinds ({:.0}%; paper: 97% of changes, \
             with path counting the one gap)",
            expressible,
            inventory.len(),
            100.0 * expressible as f64 / inventory.len() as f64
        );
    }
}
