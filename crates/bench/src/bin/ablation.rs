//! Ablations for the design choices DESIGN.md §5 calls out:
//!
//! 1. **Parallel per-FEC checking** (paper §7: "each equivalence class is
//!    processed in parallel") — the same validation with a growing
//!    worker pool, reporting speedup over single-threaded.
//! 2. **Symbolic transitions** — `.` as one co-finite arc versus the
//!    dense encoding (an explicit alternation over every location the
//!    database knows), measuring what set-labelled arcs buy.
//!
//! Run: `cargo run --release -p rela-bench --bin ablation [-- --regions 6 --fecs-per-pair 8]`

use rela_bench::{build_testbed, secs, time_validation};
use rela_core::{CheckSession, JobSpec, SessionConfig};
use rela_net::Granularity;
use rela_sim::workload::spec_of_size;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = rela_bench::params_from_args(&args);
    let tb = build_testbed(&params);
    eprintln!("testbed: {} FECs", tb.pair.len());

    let source = spec_of_size(7, params.regions);

    println!("== Ablation: worker threads for per-FEC checking ==");
    println!();
    println!("{:>8} {:>12} {:>9}", "threads", "time", "speedup");
    let mut base: Option<Duration> = None;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut candidates = vec![1usize, 2, 4, 8, 16];
    candidates.retain(|&t| t <= cores.max(1) * 2);
    for threads in candidates {
        // thread count is session state, so each pool size is its own
        // session; compilation stays outside the timed region either way
        let session = CheckSession::open(
            &source,
            tb.wan.topology.db.clone(),
            SessionConfig {
                granularity: Granularity::Group,
                threads,
                ..SessionConfig::default()
            },
        )
        .expect("compiles");
        // warm up, then take the best of 3 to suppress scheduler noise
        let _ = session.run(JobSpec::pair(&tb.pair));
        let best = (0..3)
            .map(|_| {
                let start = Instant::now();
                let _ = session.run(JobSpec::pair(&tb.pair));
                start.elapsed()
            })
            .min()
            .expect("three runs");
        let baseline = *base.get_or_insert(best);
        println!(
            "{threads:>8} {:>12} {:>8.2}x",
            secs(best),
            baseline.as_secs_f64() / best.as_secs_f64()
        );
    }
    println!();
    println!(
        "(available parallelism: {cores}; speedup saturates at the FEC count / \
         per-FEC work ratio)"
    );

    // ---- symbolic vs. dense alphabet ----------------------------------
    println!();
    println!("== Ablation: symbolic `.` vs. enumerated location alternation ==");
    println!();
    let db = &tb.wan.topology.db;
    let all_groups = db.all_locations(Granularity::Group);
    let dense_any = format!("({})", all_groups.join(" | "));
    let symbolic = "spec nochange := { .* : preserve }\ncheck nochange".to_owned();
    let dense = format!("spec nochange := {{ {dense_any}* : preserve }}\ncheck nochange");
    println!(
        "{:>10} {:>12}   (alphabet: {} group locations)",
        "encoding",
        "time",
        all_groups.len()
    );
    for (label, source) in [("symbolic", &symbolic), ("dense", &dense)] {
        // best of 3
        let best = (0..3)
            .map(|_| time_validation(source, db, Granularity::Group, &tb.pair).0)
            .min()
            .expect("three runs");
        println!("{label:>10} {:>12}", secs(best));
    }
    println!();
    println!(
        "(dense must also be *rewritten* whenever locations are added; the \
         symbolic arc is stable — see DESIGN.md §5.1. Note: an enumerated \
         alternation over the known alphabet is not even equivalent to `.` \
         for locations added later.)"
    );
}
