//! The checker perf harness: measures the dedup engine and the
//! persistent incremental re-check path, and writes the results to a
//! machine-readable `BENCH_check.json` so the perf trajectory of the
//! checker is observable (and gated) across PRs.
//!
//! Nine scenario kinds:
//!
//! - **dedup** — the fig6/fig7 testbeds at several WAN scales, with
//!   dedup on *and* off at equal thread count, asserting identical
//!   verdicts. The `--fecs-per-pair` sweep (64/128/1024) tracks the
//!   paper's 10⁶-FEC headline; at 1024 the serial fingerprint pass
//!   would dominate, which is what the sharded grouping pass addresses.
//! - **iterative** — the §8.1 operational loop: K near-identical
//!   iterations of one change replayed against a persistent verdict
//!   cache ([`rela_cache::VerdictStore`]), measuring cold→warm speedup
//!   with cache-free runs cross-checking every replayed verdict.
//! - **ablation** — minimize-before-equiv: Hopcroft-minimizing each
//!   determinized equation side before the equivalence check, plain vs.
//!   minimized at interface granularity over trunked cores (`speedup` =
//!   plain ÷ minimized wall; > 1 means minimization pays).
//! - **ingest** — the cold path from snapshot files on disk to a
//!   verdict, streamed (`SnapshotReader` → `align_streaming` →
//!   `check_stream`) vs. materialized (`from_json` → `align` → `check`)
//!   at 12k and 100k+ FECs. Each path runs in a fresh child process so
//!   peak RSS (`VmHWM`) isolates its true footprint; report identity is
//!   asserted via a verdict fingerprint, and the scenario's `speedup`
//!   records the peak-RSS reduction (materialized ÷ streamed).
//! - **pipelined-ingest** — the pipelined cold path
//!   (`check_pipelined`: framers → bounded channel → decode pool →
//!   decide-while-loading) vs. the serial streamed baseline, same
//!   child-process methodology; `speedup` is the wall ratio
//!   (serial ÷ pipelined) and `rss_ratio` the memory cost of the
//!   in-flight spans (pipelined ÷ serial).
//! - **delta-ingest** — the §8.1 loop delta-first: a resident session
//!   (`retain_bases`) re-checks one iteration submitted as delta
//!   documents (`rela-sim`'s native emitter) vs. the same pair
//!   resubmitted in full with every verdict warm; `speedup` is
//!   full-warm ÷ delta wall, reports byte-identical, decodes bounded
//!   by the changed-record count.
//! - **binary-ingest** — the cold pipelined path fed the
//!   length-prefixed binary container (`rela snapshot pack` output)
//!   vs. the same snapshots as JSON; `speedup` is JSON ÷ binary wall
//!   and `rss_ratio` binary ÷ JSON peak RSS.
//! - **mmap-ingest** — the same binary containers framed zero-copy out
//!   of a memory mapping (`SnapshotFramer::from_map`) vs. buffered
//!   `BufReader` framing of the identical files; `speedup` is
//!   buffered ÷ mapped wall and `rss_ratio` mapped ÷ buffered peak
//!   RSS, with report fingerprints asserted identical.
//! - **adversarial** — the operational scenario generators
//!   (`rela_sim::adversarial`: failover drills, rolling maintenance,
//!   policy migrations, ECMP churn, class skew) at a fixed seed,
//!   checking each scenario's last iteration against the exact path
//!   diff (`rela_baseline::path_diff`) as an independent oracle;
//!   `speedup` is path-diff ÷ checker wall (measured even in smoke —
//!   both runs are needed for the verdict cross-check anyway) and
//!   `verdicts_match` records flow-set agreement.
//!
//! Every scenario object carries `rss_ratio` — a positive measurement
//! for the child-process ingest kinds, `null` for everything else.
//!
//! Run: `cargo run --release -p rela-bench --bin perf [-- --smoke]
//!       [--out FILE] [--threads N]`
//!
//! `--smoke` runs tiny scenarios (CI-friendly, a few seconds) and still
//! exercises the full measure → serialize → re-read → validate loop. To
//! keep CI fast it **skips the no-dedup baseline**, emitting `null` for
//! `wall_nodedup_s` / `speedup` / `verdicts_match` on dedup scenarios;
//! the top-level `"smoke": true` marker tells the CI regression gate
//! (`scripts/bench_gate.py`) to skip absolute-time comparisons.
//!
//! The JSON schema (`rela-perf/v1`):
//!
//! ```json
//! {
//!   "schema": "rela-perf/v1",
//!   "threads": 1,
//!   "smoke": false,
//!   "scenarios": [
//!     {
//!       "name": "dedup-sweep-64", "kind": "dedup", "regions": 4,
//!       "routers_per_group": 2, "parallel_links": 2, "fecs_per_pair": 64,
//!       "spec_atomics": 4, "granularity": "group", "fecs": 768,
//!       "classes": 12, "cache_hits": 756, "cache_hit_rate": 0.984,
//!       "wall_s": 0.05, "wall_nodedup_s": 2.61, "speedup": 52.2,
//!       "verdicts_match": true, "violations": 64, "max_class_s": 0.01,
//!       "phases_s": {"lower": ..., "determinize": ..., "equivalent": ...,
//!                    "witness": ...}
//!     },
//!     {
//!       "name": "iterative-change", "kind": "iterative", "iterations": 4,
//!       "warm_hits": 21, "wall_cold_s": 0.04, "wall_warm_s": 0.004,
//!       "wall_s": 0.004, "wall_nodedup_s": null, "speedup": 10.3,
//!       "verdicts_match": true, ...
//!     }
//!   ]
//! }
//! ```

use rela_bench::{build_testbed, secs, Testbed};
use rela_cache::VerdictStore;
use rela_core::{
    compile_program, parse_program, CheckOptions, CheckReport, CheckSession, Checker,
    CompiledProgram, JobOptions, JobSpec, LabeledSource, SessionConfig,
};
use rela_net::{
    content_hash128, BinarySnapshotWriter, Granularity, MmapSource, Snapshot, SnapshotFramer,
    SnapshotPair, SnapshotReader, SnapshotWriter,
};
use rela_sim::adversarial::{self, ScenarioFamily};
use rela_sim::workload::{
    iteration_changes, iteration_deltas, spec_of_size, synthetic_wan, WanParams,
};
use rela_sim::{configured, simulate, simulate_each};
use serde::{Serialize, Value};
use std::io::BufWriter;
use std::path::Path;
use std::time::{Duration, Instant};

struct Scenario {
    name: &'static str,
    params: WanParams,
    spec_atomics: usize,
    granularity: Granularity,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    if smoke {
        return vec![Scenario {
            name: "smoke",
            params: WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 4,
            },
            spec_atomics: 1,
            granularity: Granularity::Group,
        }];
    }
    vec![
        // the Fig. 6 testbed at its default scale
        Scenario {
            name: "fig6-default",
            params: WanParams::default(),
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
        // the Fig. 7 interface-granularity column (the path-explosion one)
        Scenario {
            name: "fig7-interface",
            params: WanParams::default(),
            spec_atomics: 1,
            granularity: Granularity::Interface,
        },
        // high fecs-per-pair sweep: many prefixes share one forwarding
        // behavior per region pair, so dedup dominates; 1024 is the
        // scale point where the fingerprint pass itself matters
        Scenario {
            name: "dedup-sweep-64",
            params: WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 64,
            },
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
        Scenario {
            name: "dedup-sweep-128",
            params: WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 128,
            },
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
        Scenario {
            name: "dedup-sweep-1024",
            params: WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 1024,
            },
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
    ]
}

fn check(
    tb: &Testbed,
    compiled: &CompiledProgram,
    dedup: bool,
    threads: usize,
) -> (Duration, CheckReport) {
    let start = Instant::now();
    let report = Checker::new(compiled, &tb.wan.topology.db)
        .with_options(CheckOptions {
            dedup,
            threads,
            ..CheckOptions::default()
        })
        .check(&tb.pair);
    (start.elapsed(), report)
}

fn reports_agree(a: &CheckReport, b: &CheckReport) -> bool {
    a.total == b.total
        && a.compliant == b.compliant
        && a.part_counts == b.part_counts
        && a.violations == b.violations
}

/// The fields every scenario kind shares, taken from one report.
fn base_fields(
    name: &str,
    kind: &str,
    params: &WanParams,
    spec_atomics: usize,
    granularity: Granularity,
    report: &CheckReport,
) -> Vec<(String, Value)> {
    let stats = report.stats;
    let phases = stats.phases;
    vec![
        ("name".to_owned(), name.to_value()),
        ("kind".to_owned(), kind.to_value()),
        ("regions".to_owned(), params.regions.to_value()),
        (
            "routers_per_group".to_owned(),
            params.routers_per_group.to_value(),
        ),
        (
            "parallel_links".to_owned(),
            params.parallel_links.to_value(),
        ),
        (
            "fecs_per_pair".to_owned(),
            (params.fecs_per_pair as usize).to_value(),
        ),
        ("spec_atomics".to_owned(), spec_atomics.to_value()),
        ("granularity".to_owned(), granularity.to_string().to_value()),
        ("fecs".to_owned(), stats.fecs.to_value()),
        ("classes".to_owned(), stats.classes.to_value()),
        ("cache_hits".to_owned(), stats.dedup_hits.to_value()),
        ("cache_hit_rate".to_owned(), stats.hit_rate().to_value()),
        ("violations".to_owned(), report.violations.len().to_value()),
        (
            "max_class_s".to_owned(),
            stats.max_class_time.as_secs_f64().to_value(),
        ),
        ("phases_s".to_owned(), phases.to_cache_value()),
    ]
}

fn run_scenario(s: &Scenario, threads: usize, smoke: bool) -> Value {
    eprintln!(
        "[{}] building testbed ({} regions, {} routers/group, {} links, {} FECs/pair)...",
        s.name,
        s.params.regions,
        s.params.routers_per_group,
        s.params.parallel_links,
        s.params.fecs_per_pair,
    );
    let tb = build_testbed(&s.params);
    let source = spec_of_size(s.spec_atomics, s.params.regions);
    let program = parse_program(&source).expect("spec parses");
    let compiled =
        compile_program(&program, &tb.wan.topology.db, s.granularity).expect("spec compiles");

    let (wall, report) = check(&tb, &compiled, true, threads);
    // the no-dedup baseline re-decides every FEC from scratch — the
    // expensive half of the measurement, skipped in --smoke (CI) runs
    let baseline = if smoke {
        None
    } else {
        let (wall_nodedup, report_nodedup) = check(&tb, &compiled, false, threads);
        Some((wall_nodedup, reports_agree(&report, &report_nodedup)))
    };
    let stats = report.stats;
    // (no-dedup wall, speedup, verdicts agree) — computed once, read by
    // both the progress line and the serialized scenario fields
    let measured = baseline.map(|(wall_nodedup, verdicts_match)| {
        let speedup = wall_nodedup.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON);
        (wall_nodedup, speedup, verdicts_match)
    });
    match measured {
        Some((wall_nodedup, speedup, verdicts_match)) => {
            eprintln!(
                "[{}] {} FECs → {} classes ({:.1}% hits) | dedup {} vs no-dedup {} ({speedup:.1}×) | verdicts {}",
                s.name,
                stats.fecs,
                stats.classes,
                100.0 * stats.hit_rate(),
                secs(wall),
                secs(wall_nodedup),
                if verdicts_match { "identical" } else { "DIVERGED" },
            );
            assert!(
                verdicts_match,
                "[{}] dedup changed the verdict — the engine is unsound",
                s.name
            );
        }
        None => eprintln!(
            "[{}] {} FECs → {} classes ({:.1}% hits) | dedup {} | no-dedup baseline skipped (smoke)",
            s.name,
            stats.fecs,
            stats.classes,
            100.0 * stats.hit_rate(),
            secs(wall),
        ),
    }

    let mut fields = base_fields(
        s.name,
        "dedup",
        &s.params,
        s.spec_atomics,
        s.granularity,
        &report,
    );
    fields.push(("wall_s".to_owned(), wall.as_secs_f64().to_value()));
    match measured {
        Some((wall_nodedup, speedup, verdicts_match)) => {
            fields.push((
                "wall_nodedup_s".to_owned(),
                wall_nodedup.as_secs_f64().to_value(),
            ));
            fields.push(("speedup".to_owned(), speedup.to_value()));
            fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
        }
        None => {
            fields.push(("wall_nodedup_s".to_owned(), Value::Null));
            fields.push(("speedup".to_owned(), Value::Null));
            fields.push(("verdicts_match".to_owned(), Value::Null));
        }
    }
    // rss_ratio is measured only by the ingest kinds; every scenario
    // carries the key so consumers need no kind-specific schema
    fields.push(("rss_ratio".to_owned(), Value::Null));
    Value::Obj(fields)
}

/// The §8.1 loop: K near-identical post-change snapshots validated in
/// sequence, each "run" opening the persistent store, checking, and
/// persisting — exactly what `rela check --cache-dir` does per ticket
/// iteration. Every warm verdict is cross-checked against a cache-free
/// decision of the same pair.
fn run_iterative(threads: usize, smoke: bool) -> Value {
    let (name, params, spec_atomics, iterations) = if smoke {
        (
            "iterative-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 2,
            },
            4,
            3usize,
        )
    } else {
        // interface granularity over heavily-trunked cores: deciding a
        // class is expensive (the §6.1 path explosion), hashing a FEC is
        // not — the regime where persistent warm hits pay the most
        (
            "iterative-change",
            WanParams {
                regions: 5,
                routers_per_group: 3,
                parallel_links: 8,
                fecs_per_pair: 4,
            },
            1,
            4usize,
        )
    };
    let granularity = if smoke {
        Granularity::Group
    } else {
        Granularity::Interface
    };
    eprintln!(
        "[{name}] building {} iteration snapshots ({} regions, {} FECs/pair)...",
        iterations, params.regions, params.fecs_per_pair,
    );
    let wan = synthetic_wan(&params);
    let (pre, unconverged) = simulate(&wan.topology, &wan.config, &wan.traffic);
    assert!(unconverged.is_empty(), "base WAN must converge");
    let pairs: Vec<SnapshotPair> = iteration_changes(&params, iterations)
        .iter()
        .map(|changes| {
            let cfg = configured(&wan.config, &wan.topology, changes);
            let (post, unconverged) = simulate(&wan.topology, &cfg, &wan.traffic);
            assert!(unconverged.is_empty(), "changed WAN must converge");
            SnapshotPair::align(&pre, &post)
        })
        .collect();

    let source = spec_of_size(spec_atomics, params.regions);
    let cache_dir = std::env::temp_dir().join(format!("rela-perf-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();

    // the resident-service model (`rela serve`): one warm session holds
    // the compiled spec, the open store, and the FST memo across every
    // iteration — iteration N+1 pays only for classes whose behavior
    // moved
    let mut session = CheckSession::open(
        &source,
        wan.topology.db.clone(),
        SessionConfig {
            granularity,
            threads,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");
    let store = VerdictStore::open(&cache_dir, session.epoch()).expect("cache dir is writable");
    session.attach_store(store);
    let mut verdicts_match = true;
    let mut walls: Vec<Duration> = Vec::new();
    let mut last_report = None;
    let mut last_warm = 0;
    for (ix, pair) in pairs.iter().enumerate() {
        let t0 = Instant::now();
        let report = session.run(JobSpec::pair(pair)).expect("in-memory pair");
        session.persist_if_dirty().expect("cache persists");
        let wall = t0.elapsed();
        walls.push(wall);

        // correctness: a cache-free decision of the same pair agrees
        let fresh = session
            .run(JobSpec::pair(pair).with_options(JobOptions {
                use_cache: false,
                ..JobOptions::default()
            }))
            .expect("in-memory pair");
        verdicts_match &= reports_agree(&report, &fresh);
        eprintln!(
            "[{name}] iteration {}: {} in {} ({} of {} classes warm)",
            ix + 1,
            if ix == 0 { "cold" } else { "warm" },
            secs(wall),
            report.stats.warm_hits,
            report.stats.classes,
        );
        if ix == 0 {
            assert_eq!(report.stats.warm_hits, 0, "first iteration must be cold");
        } else {
            assert!(
                report.stats.warm_hits > 0,
                "[{name}] iteration {} found no warm classes — the store is not replaying",
                ix + 1
            );
        }
        last_warm = report.stats.warm_hits;
        last_report = Some(report);
    }
    std::fs::remove_dir_all(&cache_dir).ok();
    assert!(verdicts_match, "[{name}] cached replay changed a verdict");

    let wall_cold = walls[0];
    let warm_runs = &walls[1..];
    let wall_warm = warm_runs.iter().sum::<Duration>() / warm_runs.len() as u32;
    let speedup = wall_cold.as_secs_f64() / wall_warm.as_secs_f64().max(f64::EPSILON);
    eprintln!(
        "[{name}] cold {} vs warm {} ({speedup:.1}×) | verdicts identical",
        secs(wall_cold),
        secs(wall_warm),
    );

    let report = last_report.expect("at least one iteration");
    let mut fields = base_fields(
        name,
        "iterative",
        &params,
        spec_atomics,
        granularity,
        &report,
    );
    fields.push(("iterations".to_owned(), iterations.to_value()));
    fields.push(("warm_hits".to_owned(), last_warm.to_value()));
    fields.push(("wall_cold_s".to_owned(), wall_cold.as_secs_f64().to_value()));
    fields.push(("wall_warm_s".to_owned(), wall_warm.as_secs_f64().to_value()));
    // wall_s mirrors wall_warm_s so kind-agnostic consumers see the
    // steady-state cost; no-dedup does not apply to this kind
    fields.push(("wall_s".to_owned(), wall_warm.as_secs_f64().to_value()));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("speedup".to_owned(), speedup.to_value()));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    fields.push(("rss_ratio".to_owned(), Value::Null));
    Value::Obj(fields)
}

// ---- cold-ingest: streamed vs. materialized snapshot loading ----------

/// Peak resident set of this process (`VmHWM`), in KiB. Linux-only;
/// `None` elsewhere (the scenario then records null RSS fields).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// A fingerprint of everything verdict-relevant in a report (its
/// rendering minus the timing lines): lets two ingest-worker processes
/// prove they produced byte-identical reports without shipping them.
fn report_fingerprint(report: &CheckReport) -> String {
    let normalized = report
        .to_string()
        .lines()
        .filter(|l| !l.starts_with("checked ") && !l.starts_with("behavior classes:"))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{:032x}", content_hash128(normalized.as_bytes()))
}

/// Child-process entry point (`perf --ingest-worker MODE PRE POST
/// REGIONS RPG LINKS FPP ATOMICS THREADS`): run one cold ingest+check in
/// a fresh address space — so `VmHWM` measures exactly this load path,
/// unpolluted by the allocator retention of whatever ran before — and
/// print a one-line JSON result.
fn ingest_worker(args: &[String]) -> ! {
    let mode = args[0].as_str();
    let (pre_path, post_path) = (&args[1], &args[2]);
    let params = WanParams {
        regions: args[3].parse().expect("regions"),
        routers_per_group: args[4].parse().expect("routers_per_group"),
        parallel_links: args[5].parse().expect("parallel_links"),
        fecs_per_pair: args[6].parse().expect("fecs_per_pair"),
    };
    let spec_atomics: usize = args[7].parse().expect("spec_atomics");
    let threads: usize = args[8].parse().expect("threads");

    // rebuild the deterministic WAN for its location db + spec
    let wan = synthetic_wan(&params);
    let program = parse_program(&spec_of_size(spec_atomics, params.regions)).expect("spec parses");
    let compiled =
        compile_program(&program, &wan.topology.db, Granularity::Group).expect("spec compiles");
    let checker = Checker::new(&compiled, &wan.topology.db).with_options(CheckOptions {
        threads,
        ..CheckOptions::default()
    });

    let t0 = Instant::now();
    let report = match mode {
        "materialized" => {
            let load = |path: &str| -> Snapshot {
                let text = std::fs::read_to_string(path).expect("snapshot file");
                Snapshot::from_json(&text).expect("snapshot parses")
            };
            let pair = SnapshotPair::align(&load(pre_path), &load(post_path));
            checker.check(&pair)
        }
        "stream" => {
            let open = |path: &str| {
                SnapshotReader::new(std::fs::File::open(path).expect("snapshot file"))
                    .with_label(path)
            };
            checker
                .check_stream(SnapshotPair::align_streaming(
                    open(pre_path),
                    open(post_path),
                ))
                .expect("snapshot streams")
        }
        "pipelined" => {
            let frame = |path: &str| {
                SnapshotFramer::new(std::fs::File::open(path).expect("snapshot file"), path)
            };
            checker
                .check_pipelined(frame(pre_path), frame(post_path))
                .expect("snapshot pipelines")
        }
        "mmap" => {
            let frame = |path: &str| {
                SnapshotFramer::from_map(MmapSource::open(path).expect("snapshot map"), path)
            };
            checker
                .check_pipelined(frame(pre_path), frame(post_path))
                .expect("snapshot maps")
        }
        other => panic!("unknown ingest mode `{other}`"),
    };
    let wall = t0.elapsed();

    let stats = report.stats;
    let doc = Value::obj(vec![
        ("wall_s", wall.as_secs_f64().to_value()),
        (
            "peak_rss_kb",
            match peak_rss_kb() {
                Some(kb) => kb.to_value(),
                None => Value::Null,
            },
        ),
        ("fecs", stats.fecs.to_value()),
        ("classes", stats.classes.to_value()),
        ("cache_hits", stats.dedup_hits.to_value()),
        ("cache_hit_rate", stats.hit_rate().to_value()),
        ("violations", report.violations.len().to_value()),
        ("report_hash", report_fingerprint(&report).to_value()),
    ]);
    println!("{}", serde_json::to_string(&doc).expect("serializes"));
    std::process::exit(0)
}

/// Write one snapshot file record-by-record (never holding the
/// snapshot), returning its byte size.
fn write_snapshot_file(
    path: &Path,
    topo: &rela_sim::Topology,
    cfg: &rela_sim::NetworkConfig,
    traffic: &rela_sim::TrafficMatrix,
) -> u64 {
    let file = std::fs::File::create(path).expect("snapshot file");
    let mut writer = SnapshotWriter::new(BufWriter::new(file)).expect("snapshot header");
    let unconverged = simulate_each(topo, cfg, traffic, |flow, graph| {
        writer.write(&flow, &graph).expect("snapshot record");
    });
    assert!(unconverged.is_empty(), "ingest WAN must converge");
    writer.finish().expect("snapshot trailer");
    std::fs::metadata(path).expect("written file").len()
}

/// Spawn this binary as an ingest worker and parse its JSON result.
fn ingest_child(mode: &str, pre: &Path, post: &Path, params: &WanParams, threads: usize) -> Value {
    let exe = std::env::current_exe().expect("own binary path");
    let out = std::process::Command::new(exe)
        .arg("--ingest-worker")
        .arg(mode)
        .arg(pre)
        .arg(post)
        .args(
            [
                params.regions,
                params.routers_per_group,
                params.parallel_links,
                params.fecs_per_pair as usize,
                INGEST_SPEC_ATOMICS,
                threads,
            ]
            .map(|n| n.to_string()),
        )
        .output()
        .expect("spawn ingest worker");
    assert!(
        out.status.success(),
        "ingest worker ({mode}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("worker output is utf-8");
    let line = stdout.lines().last().expect("worker printed a result");
    serde_json::from_str(line).expect("worker result parses")
}

/// The cold-ingest spec size (3·1 + 1 atomics, same family as fig6).
const INGEST_SPEC_ATOMICS: usize = 4;

/// The **ingest** scenario kind: how fast — and in how much memory — a
/// cold validation gets from snapshot files on disk to a verdict, with
/// the streamed path (`SnapshotReader` → `align_streaming` →
/// `check_stream`) measured against the materialized one
/// (`from_json` → `align` → `check`). Each path runs in a fresh child
/// process so `VmHWM` isolates its true peak; both must produce a
/// byte-identical report (asserted via a verdict fingerprint). The
/// scenario's `speedup` field records the peak-RSS reduction
/// (materialized ÷ streamed).
fn run_ingest(name: &str, params: &WanParams, threads: usize) -> Value {
    eprintln!(
        "[{name}] generating snapshot files ({} regions, {} FECs/pair)...",
        params.regions, params.fecs_per_pair,
    );
    let wan = synthetic_wan(params);
    let dir = std::env::temp_dir().join(format!("rela-perf-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pre_path = dir.join("pre.json");
    let post_path = dir.join("post.json");
    let t0 = Instant::now();
    let pre_bytes = write_snapshot_file(&pre_path, &wan.topology, &wan.config, &wan.traffic);
    let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
    let post_bytes = write_snapshot_file(&post_path, &wan.topology, &post_cfg, &wan.traffic);
    let gen = t0.elapsed();
    eprintln!(
        "[{name}] wrote {:.1} MiB in {} (streamed, record-by-record)",
        (pre_bytes + post_bytes) as f64 / (1024.0 * 1024.0),
        secs(gen),
    );

    let streamed = ingest_child("stream", &pre_path, &post_path, params, threads);
    let materialized = ingest_child("materialized", &pre_path, &post_path, params, threads);
    std::fs::remove_dir_all(&dir).ok();

    let f = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64);
    let verdicts_match = streamed.get("report_hash") == materialized.get("report_hash")
        && streamed.get("report_hash").is_some();
    assert!(
        verdicts_match,
        "[{name}] streamed and materialized reports diverged — the streaming path is unsound"
    );
    let rss_stream = f(&streamed, "peak_rss_kb");
    let rss_mat = f(&materialized, "peak_rss_kb");
    let reduction = match (rss_mat, rss_stream) {
        (Some(m), Some(s)) if s > 0.0 => Some(m / s),
        _ => None,
    };
    eprintln!(
        "[{name}] {} FECs | stream {} / {} KiB vs materialized {} / {} KiB | peak-RSS reduction {}",
        streamed.get("fecs").and_then(Value::as_u64).unwrap_or(0),
        secs(Duration::from_secs_f64(
            f(&streamed, "wall_s").unwrap_or(0.0)
        )),
        rss_stream.map_or_else(|| "?".into(), |v| format!("{v:.0}")),
        secs(Duration::from_secs_f64(
            f(&materialized, "wall_s").unwrap_or(0.0)
        )),
        rss_mat.map_or_else(|| "?".into(), |v| format!("{v:.0}")),
        reduction.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
    );

    let copy = |v: &Value, key: &str| v.get(key).cloned().unwrap_or(Value::Null);
    let mut fields = vec![
        ("name".to_owned(), name.to_value()),
        ("kind".to_owned(), "ingest".to_value()),
        ("regions".to_owned(), params.regions.to_value()),
        (
            "routers_per_group".to_owned(),
            params.routers_per_group.to_value(),
        ),
        (
            "parallel_links".to_owned(),
            params.parallel_links.to_value(),
        ),
        (
            "fecs_per_pair".to_owned(),
            (params.fecs_per_pair as usize).to_value(),
        ),
        ("spec_atomics".to_owned(), INGEST_SPEC_ATOMICS.to_value()),
        ("granularity".to_owned(), "group".to_value()),
        (
            "snapshot_bytes".to_owned(),
            (pre_bytes + post_bytes).to_value(),
        ),
        ("gen_s".to_owned(), gen.as_secs_f64().to_value()),
    ];
    for key in [
        "fecs",
        "classes",
        "cache_hits",
        "cache_hit_rate",
        "violations",
    ] {
        fields.push((key.to_owned(), copy(&streamed, key)));
    }
    fields.push(("wall_s".to_owned(), copy(&streamed, "wall_s")));
    fields.push((
        "wall_materialized_s".to_owned(),
        copy(&materialized, "wall_s"),
    ));
    fields.push((
        "peak_rss_streamed_kb".to_owned(),
        copy(&streamed, "peak_rss_kb"),
    ));
    fields.push((
        "peak_rss_materialized_kb".to_owned(),
        copy(&materialized, "peak_rss_kb"),
    ));
    // kind-agnostic consumers (the gate) read the RSS reduction as the
    // scenario's "speedup": the quantity streaming exists to improve
    fields.push((
        "speedup".to_owned(),
        match reduction {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    // same orientation as the other ingest kinds: measured path ÷
    // baseline (streamed ÷ materialized — the reciprocal of `speedup`)
    fields.push((
        "rss_ratio".to_owned(),
        match (rss_stream, rss_mat) {
            (Some(s), Some(m)) if m > 0.0 => (s / m).to_value(),
            _ => Value::Null,
        },
    ));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    Value::Obj(fields)
}

/// The **pipelined-ingest** scenario kind: the pipelined cold path
/// (framer threads → bounded channel → decode/fingerprint pool →
/// decide-while-loading) measured against the serial streamed path (the
/// PR 4 baseline: one reader thread decodes, hashes, and groups, and
/// deciding starts after the stream ends). Each path runs in a fresh
/// child process for an isolated `VmHWM`; both must produce a
/// byte-identical report (asserted via the verdict fingerprint). The
/// scenario's `speedup` is the wall-time ratio (serial ÷ pipelined) —
/// the quantity pipelining exists to improve — and `rss_ratio` records
/// the memory cost of the in-flight spans (pipelined ÷ serial).
fn run_pipelined_ingest(name: &str, params: &WanParams, threads: usize) -> Value {
    eprintln!(
        "[{name}] generating snapshot files ({} regions, {} FECs/pair)...",
        params.regions, params.fecs_per_pair,
    );
    let wan = synthetic_wan(params);
    let dir = std::env::temp_dir().join(format!("rela-perf-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pre_path = dir.join("pre.json");
    let post_path = dir.join("post.json");
    let t0 = Instant::now();
    let pre_bytes = write_snapshot_file(&pre_path, &wan.topology, &wan.config, &wan.traffic);
    let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
    let post_bytes = write_snapshot_file(&post_path, &wan.topology, &post_cfg, &wan.traffic);
    let gen = t0.elapsed();

    let serial = ingest_child("stream", &pre_path, &post_path, params, threads);
    let pipelined = ingest_child("pipelined", &pre_path, &post_path, params, threads);
    std::fs::remove_dir_all(&dir).ok();

    let f = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64);
    let verdicts_match = pipelined.get("report_hash") == serial.get("report_hash")
        && pipelined.get("report_hash").is_some();
    assert!(
        verdicts_match,
        "[{name}] pipelined and serial streamed reports diverged — the pipeline is unsound"
    );
    let wall_serial = f(&serial, "wall_s").unwrap_or(0.0);
    let wall_piped = f(&pipelined, "wall_s").unwrap_or(0.0);
    let speedup = if wall_piped > 0.0 {
        Some(wall_serial / wall_piped)
    } else {
        None
    };
    let rss_ratio = match (f(&pipelined, "peak_rss_kb"), f(&serial, "peak_rss_kb")) {
        (Some(p), Some(s)) if s > 0.0 => Some(p / s),
        _ => None,
    };
    eprintln!(
        "[{name}] {} FECs | pipelined {} vs serial-stream {} ({}) | RSS ratio {}",
        pipelined.get("fecs").and_then(Value::as_u64).unwrap_or(0),
        secs(Duration::from_secs_f64(wall_piped)),
        secs(Duration::from_secs_f64(wall_serial)),
        speedup.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
        rss_ratio.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
    );

    let copy = |v: &Value, key: &str| v.get(key).cloned().unwrap_or(Value::Null);
    let mut fields = vec![
        ("name".to_owned(), name.to_value()),
        ("kind".to_owned(), "pipelined-ingest".to_value()),
        ("regions".to_owned(), params.regions.to_value()),
        (
            "routers_per_group".to_owned(),
            params.routers_per_group.to_value(),
        ),
        (
            "parallel_links".to_owned(),
            params.parallel_links.to_value(),
        ),
        (
            "fecs_per_pair".to_owned(),
            (params.fecs_per_pair as usize).to_value(),
        ),
        ("spec_atomics".to_owned(), INGEST_SPEC_ATOMICS.to_value()),
        ("granularity".to_owned(), "group".to_value()),
        (
            "snapshot_bytes".to_owned(),
            (pre_bytes + post_bytes).to_value(),
        ),
        ("gen_s".to_owned(), gen.as_secs_f64().to_value()),
    ];
    for key in [
        "fecs",
        "classes",
        "cache_hits",
        "cache_hit_rate",
        "violations",
    ] {
        fields.push((key.to_owned(), copy(&pipelined, key)));
    }
    fields.push(("wall_s".to_owned(), copy(&pipelined, "wall_s")));
    fields.push(("wall_serial_stream_s".to_owned(), copy(&serial, "wall_s")));
    fields.push((
        "peak_rss_pipelined_kb".to_owned(),
        copy(&pipelined, "peak_rss_kb"),
    ));
    fields.push((
        "peak_rss_serial_kb".to_owned(),
        copy(&serial, "peak_rss_kb"),
    ));
    fields.push((
        "rss_ratio".to_owned(),
        match rss_ratio {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    fields.push((
        "speedup".to_owned(),
        match speedup {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    Value::Obj(fields)
}

/// The pipelined-ingest scales: the dedup-sweep scale point and the
/// 100k+ headline scale (the acceptance scale for decide-while-loading),
/// or a tiny scale in smoke mode.
fn pipelined_scales(smoke: bool) -> Vec<(&'static str, WanParams)> {
    if smoke {
        return vec![(
            "pipelined-ingest-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 32,
            },
        )];
    }
    vec![
        (
            "pipelined-ingest-12k",
            WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 1024,
            },
        ),
        (
            "pipelined-ingest-102k",
            WanParams {
                regions: 5,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 5120,
            },
        ),
    ]
}

/// The **delta-ingest** scenario kind: the §8.1 loop delta-first. A
/// resident session ([`SessionConfig::retain_bases`] plus an in-memory
/// verdict store) ingests the seed pair cold, advances one iteration in
/// full (so the retained base is one small change behind), then
/// receives the next iteration twice: once as the delta documents
/// `rela-sim` now emits natively ([`iteration_deltas`]) and once as a
/// full warm resubmission of the very same pair — the prior baseline,
/// where every verdict is warm but every byte is still re-framed and
/// re-hashed. Reports must be byte-identical (verdict fingerprint), the
/// delta run may decode at most the changed records, and `speedup` is
/// full-warm wall ÷ delta wall: the work-proportionality claim that
/// wall time scales with the changed-FEC count, not the snapshot size.
fn run_delta_ingest(name: &str, params: &WanParams, threads: usize, smoke: bool) -> Value {
    eprintln!(
        "[{name}] building delta iterations ({} regions, {} FECs/pair)...",
        params.regions, params.fecs_per_pair,
    );
    let wan = synthetic_wan(params);
    let di = iteration_deltas(&wan, params, 3);
    let pre_json = di.pre.to_json().expect("snapshot serializes");
    let posts: Vec<String> = di
        .posts
        .iter()
        .map(|p| p.to_json().expect("snapshot serializes"))
        .collect();

    let source = spec_of_size(INGEST_SPEC_ATOMICS, params.regions);
    let mut session = CheckSession::open(
        &source,
        wan.topology.db.clone(),
        SessionConfig {
            granularity: Granularity::Group,
            threads,
            retain_bases: 1,
            ..SessionConfig::default()
        },
    )
    .expect("spec compiles");
    session.attach_store(VerdictStore::in_memory(session.epoch()));
    let full = |session: &CheckSession, post: &str, label: &str| {
        let t0 = Instant::now();
        let report = session
            .run(JobSpec::streams(
                LabeledSource::new(pre_json.as_bytes(), "pre"),
                LabeledSource::new(post.as_bytes(), label.to_owned()),
            ))
            .expect("snapshot streams");
        (t0.elapsed(), report)
    };
    let (wall_cold, _) = full(&session, &posts[0], "post-0");
    assert_eq!(
        session.base_epoch(),
        Some(di.seed_epoch),
        "[{name}] the session's retained epoch must match the emitter's"
    );
    // advance the base to iteration 1 so the measured delta carries
    // exactly one iteration's change
    full(&session, &posts[1], "post-1");
    let delta = &di.deltas[1];
    let t0 = Instant::now();
    let delta_report = session
        .run(
            JobSpec::deltas(
                LabeledSource::new(&delta.pre_doc[..], "delta:pre"),
                LabeledSource::new(&delta.post_doc[..], "delta:post"),
            )
            .with_options(JobOptions {
                delta_base: Some(delta.base.as_u128()),
                ..JobOptions::default()
            }),
        )
        .expect("delta job");
    let wall_delta = t0.elapsed();
    assert!(
        delta_report.stats.graph_decodes <= 2 * delta.changed,
        "[{name}] delta decoded {} graphs for {} changed records",
        delta_report.stats.graph_decodes,
        delta.changed,
    );
    // the baseline: the same iteration-2 pair resubmitted in full with
    // every verdict already warm — re-framing and re-hashing the whole
    // snapshot is all that's left, which is exactly what a delta avoids
    let (wall_full, full_report) = full(&session, &posts[2], "post-2");
    let verdicts_match = report_fingerprint(&delta_report) == report_fingerprint(&full_report);
    assert!(
        verdicts_match,
        "[{name}] delta and full reports diverged — the delta path is unsound"
    );
    let speedup = wall_full.as_secs_f64() / wall_delta.as_secs_f64().max(f64::EPSILON);
    eprintln!(
        "[{name}] {} FECs, {} changed | delta {} ({} decodes) vs full-warm {} ({speedup:.1}×) | cold {} | verdicts identical",
        delta_report.stats.fecs,
        delta.changed,
        secs(wall_delta),
        delta_report.stats.graph_decodes,
        secs(wall_full),
        secs(wall_cold),
    );
    if !smoke {
        assert!(
            speedup >= 5.0,
            "[{name}] a delta must beat a warm full resubmission by ≥5× (got {speedup:.1}×)"
        );
    }

    let mut fields = base_fields(
        name,
        "delta-ingest",
        params,
        INGEST_SPEC_ATOMICS,
        Granularity::Group,
        &delta_report,
    );
    fields.push(("changed_records".to_owned(), delta.changed.to_value()));
    fields.push((
        "graph_decodes".to_owned(),
        delta_report.stats.graph_decodes.to_value(),
    ));
    fields.push(("wall_s".to_owned(), wall_delta.as_secs_f64().to_value()));
    fields.push((
        "wall_full_warm_s".to_owned(),
        wall_full.as_secs_f64().to_value(),
    ));
    fields.push(("wall_cold_s".to_owned(), wall_cold.as_secs_f64().to_value()));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("speedup".to_owned(), speedup.to_value()));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    // in-process measurement — no per-path child, so no RSS isolation
    fields.push(("rss_ratio".to_owned(), Value::Null));
    Value::Obj(fields)
}

/// The delta-ingest scales: the 12k-FEC dedup-sweep scale point (the
/// acceptance scale for work-proportional re-ingest) or a tiny smoke
/// scale.
fn delta_scales(smoke: bool) -> Vec<(&'static str, WanParams)> {
    if smoke {
        return vec![(
            "delta-ingest-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 32,
            },
        )];
    }
    vec![(
        "delta-ingest-12k",
        WanParams {
            regions: 4,
            routers_per_group: 2,
            parallel_links: 2,
            fecs_per_pair: 1024,
        },
    )]
}

/// Pack a JSON snapshot file into the binary container byte-exactly
/// (raw span moves, never a graph decode), returning the output size.
fn pack_binary(src: &Path, dst: &Path) -> u64 {
    let label = src.display().to_string();
    let input = std::fs::File::open(src).expect("snapshot file");
    let mut framer = SnapshotFramer::new(std::io::BufReader::new(input), label.clone());
    let out = std::fs::File::create(dst).expect("binary snapshot file");
    let mut writer = BinarySnapshotWriter::new(BufWriter::new(out)).expect("binary header");
    for raw in &mut framer {
        let raw = raw.expect("snapshot frames");
        let (flow, graph) = raw.split_spans(Some(&label)).expect("canonical records");
        writer
            .write_raw(flow.as_slice(), graph.as_slice())
            .expect("binary record");
    }
    writer.finish().expect("binary trailer");
    std::fs::metadata(dst).expect("written file").len()
}

/// The **binary-ingest** scenario kind: the same cold pipelined
/// validation fed the length-prefixed binary container
/// (`docs/SNAPSHOT_FORMAT.md`) instead of JSON. The JSON files are
/// packed with raw span moves (`rela snapshot pack` semantics), both
/// containers run through the pipelined ingest in fresh child
/// processes, and the reports must be byte-identical — the container is
/// a transport encoding, never a semantic one. `speedup` is JSON wall ÷
/// binary wall (length-prefixed framing skips the per-byte JSON
/// scanner) and `rss_ratio` is binary ÷ JSON peak RSS.
fn run_binary_ingest(name: &str, params: &WanParams, threads: usize) -> Value {
    eprintln!(
        "[{name}] generating snapshot files ({} regions, {} FECs/pair)...",
        params.regions, params.fecs_per_pair,
    );
    let wan = synthetic_wan(params);
    let dir = std::env::temp_dir().join(format!("rela-perf-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pre_json = dir.join("pre.json");
    let post_json = dir.join("post.json");
    let t0 = Instant::now();
    let json_bytes = write_snapshot_file(&pre_json, &wan.topology, &wan.config, &wan.traffic) + {
        let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
        write_snapshot_file(&post_json, &wan.topology, &post_cfg, &wan.traffic)
    };
    let gen = t0.elapsed();
    let pre_rsnb = dir.join("pre.rsnb");
    let post_rsnb = dir.join("post.rsnb");
    let t0 = Instant::now();
    let binary_bytes = pack_binary(&pre_json, &pre_rsnb) + pack_binary(&post_json, &post_rsnb);
    let pack = t0.elapsed();
    eprintln!(
        "[{name}] packed {:.1} MiB of JSON into {:.1} MiB of binary in {}",
        json_bytes as f64 / (1024.0 * 1024.0),
        binary_bytes as f64 / (1024.0 * 1024.0),
        secs(pack),
    );

    let json_run = ingest_child("pipelined", &pre_json, &post_json, params, threads);
    let binary_run = ingest_child("pipelined", &pre_rsnb, &post_rsnb, params, threads);
    std::fs::remove_dir_all(&dir).ok();

    let f = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64);
    let verdicts_match = binary_run.get("report_hash") == json_run.get("report_hash")
        && binary_run.get("report_hash").is_some();
    assert!(
        verdicts_match,
        "[{name}] binary and JSON ingest reports diverged — the container changed a verdict"
    );
    let wall_json = f(&json_run, "wall_s").unwrap_or(0.0);
    let wall_binary = f(&binary_run, "wall_s").unwrap_or(0.0);
    let speedup = if wall_binary > 0.0 {
        Some(wall_json / wall_binary)
    } else {
        None
    };
    let rss_ratio = match (f(&binary_run, "peak_rss_kb"), f(&json_run, "peak_rss_kb")) {
        (Some(b), Some(j)) if j > 0.0 => Some(b / j),
        _ => None,
    };
    eprintln!(
        "[{name}] {} FECs | binary {} vs JSON {} ({}) | RSS ratio {}",
        binary_run.get("fecs").and_then(Value::as_u64).unwrap_or(0),
        secs(Duration::from_secs_f64(wall_binary)),
        secs(Duration::from_secs_f64(wall_json)),
        speedup.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
        rss_ratio.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
    );

    let copy = |v: &Value, key: &str| v.get(key).cloned().unwrap_or(Value::Null);
    let mut fields = vec![
        ("name".to_owned(), name.to_value()),
        ("kind".to_owned(), "binary-ingest".to_value()),
        ("regions".to_owned(), params.regions.to_value()),
        (
            "routers_per_group".to_owned(),
            params.routers_per_group.to_value(),
        ),
        (
            "parallel_links".to_owned(),
            params.parallel_links.to_value(),
        ),
        (
            "fecs_per_pair".to_owned(),
            (params.fecs_per_pair as usize).to_value(),
        ),
        ("spec_atomics".to_owned(), INGEST_SPEC_ATOMICS.to_value()),
        ("granularity".to_owned(), "group".to_value()),
        ("snapshot_bytes".to_owned(), json_bytes.to_value()),
        ("binary_bytes".to_owned(), binary_bytes.to_value()),
        ("gen_s".to_owned(), gen.as_secs_f64().to_value()),
        ("pack_s".to_owned(), pack.as_secs_f64().to_value()),
    ];
    for key in [
        "fecs",
        "classes",
        "cache_hits",
        "cache_hit_rate",
        "violations",
    ] {
        fields.push((key.to_owned(), copy(&binary_run, key)));
    }
    fields.push(("wall_s".to_owned(), copy(&binary_run, "wall_s")));
    fields.push(("wall_json_s".to_owned(), copy(&json_run, "wall_s")));
    fields.push((
        "peak_rss_binary_kb".to_owned(),
        copy(&binary_run, "peak_rss_kb"),
    ));
    fields.push((
        "peak_rss_json_kb".to_owned(),
        copy(&json_run, "peak_rss_kb"),
    ));
    fields.push((
        "rss_ratio".to_owned(),
        match rss_ratio {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    fields.push((
        "speedup".to_owned(),
        match speedup {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    Value::Obj(fields)
}

/// The binary-ingest scales: the 100k+ headline scale (the acceptance
/// point is its cold wall against the committed JSON `cold-ingest-100k`
/// trajectory), or a tiny smoke scale.
fn binary_scales(smoke: bool) -> Vec<(&'static str, WanParams)> {
    if smoke {
        return vec![(
            "binary-ingest-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 32,
            },
        )];
    }
    vec![(
        "binary-ingest-102k",
        WanParams {
            regions: 5,
            routers_per_group: 2,
            parallel_links: 2,
            fecs_per_pair: 5120,
        },
    )]
}

/// The **mmap-ingest** scenario kind: the same binary containers,
/// framed zero-copy out of a memory mapping
/// (`SnapshotFramer::from_map`) vs. buffered `BufReader` framing of the
/// identical files. Both runs are fresh child processes over the same
/// on-disk `.rsnb` pair, so wall and `VmHWM` isolate exactly the
/// framing strategy; the reports must be fingerprint-identical (the
/// mapping is an ingest transport, never a semantic change). `speedup`
/// is buffered ÷ mapped wall and `rss_ratio` mapped ÷ buffered peak
/// RSS — record spans borrowing the page cache should never cost more
/// memory than copying them through a reader.
fn run_mmap_ingest(name: &str, params: &WanParams, threads: usize) -> Value {
    eprintln!(
        "[{name}] generating snapshot files ({} regions, {} FECs/pair)...",
        params.regions, params.fecs_per_pair,
    );
    let wan = synthetic_wan(params);
    let dir = std::env::temp_dir().join(format!("rela-perf-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pre_json = dir.join("pre.json");
    let post_json = dir.join("post.json");
    let json_bytes = write_snapshot_file(&pre_json, &wan.topology, &wan.config, &wan.traffic) + {
        let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
        write_snapshot_file(&post_json, &wan.topology, &post_cfg, &wan.traffic)
    };
    let pre_rsnb = dir.join("pre.rsnb");
    let post_rsnb = dir.join("post.rsnb");
    let binary_bytes = pack_binary(&pre_json, &pre_rsnb) + pack_binary(&post_json, &post_rsnb);
    eprintln!(
        "[{name}] packed {:.1} MiB of JSON into {:.1} MiB of binary",
        json_bytes as f64 / (1024.0 * 1024.0),
        binary_bytes as f64 / (1024.0 * 1024.0),
    );

    let buffered_run = ingest_child("pipelined", &pre_rsnb, &post_rsnb, params, threads);
    let mapped_run = ingest_child("mmap", &pre_rsnb, &post_rsnb, params, threads);
    std::fs::remove_dir_all(&dir).ok();

    let f = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64);
    let verdicts_match = mapped_run.get("report_hash") == buffered_run.get("report_hash")
        && mapped_run.get("report_hash").is_some();
    assert!(
        verdicts_match,
        "[{name}] mapped and buffered ingest reports diverged — the mapping changed a verdict"
    );
    let wall_buffered = f(&buffered_run, "wall_s").unwrap_or(0.0);
    let wall_mapped = f(&mapped_run, "wall_s").unwrap_or(0.0);
    let speedup = if wall_mapped > 0.0 {
        Some(wall_buffered / wall_mapped)
    } else {
        None
    };
    let rss_ratio = match (
        f(&mapped_run, "peak_rss_kb"),
        f(&buffered_run, "peak_rss_kb"),
    ) {
        (Some(m), Some(b)) if b > 0.0 => Some(m / b),
        _ => None,
    };
    eprintln!(
        "[{name}] {} FECs | mapped {} vs buffered {} ({}) | RSS ratio {}",
        mapped_run.get("fecs").and_then(Value::as_u64).unwrap_or(0),
        secs(Duration::from_secs_f64(wall_mapped)),
        secs(Duration::from_secs_f64(wall_buffered)),
        speedup.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
        rss_ratio.map_or_else(|| "?".into(), |v| format!("{v:.2}×")),
    );

    let copy = |v: &Value, key: &str| v.get(key).cloned().unwrap_or(Value::Null);
    let mut fields = vec![
        ("name".to_owned(), name.to_value()),
        ("kind".to_owned(), "mmap-ingest".to_value()),
        ("regions".to_owned(), params.regions.to_value()),
        (
            "routers_per_group".to_owned(),
            params.routers_per_group.to_value(),
        ),
        (
            "parallel_links".to_owned(),
            params.parallel_links.to_value(),
        ),
        (
            "fecs_per_pair".to_owned(),
            (params.fecs_per_pair as usize).to_value(),
        ),
        ("spec_atomics".to_owned(), INGEST_SPEC_ATOMICS.to_value()),
        ("granularity".to_owned(), "group".to_value()),
        ("snapshot_bytes".to_owned(), json_bytes.to_value()),
        ("binary_bytes".to_owned(), binary_bytes.to_value()),
    ];
    for key in [
        "fecs",
        "classes",
        "cache_hits",
        "cache_hit_rate",
        "violations",
    ] {
        fields.push((key.to_owned(), copy(&mapped_run, key)));
    }
    fields.push(("wall_s".to_owned(), copy(&mapped_run, "wall_s")));
    fields.push(("wall_binary_s".to_owned(), copy(&buffered_run, "wall_s")));
    fields.push((
        "peak_rss_mmap_kb".to_owned(),
        copy(&mapped_run, "peak_rss_kb"),
    ));
    fields.push((
        "peak_rss_binary_kb".to_owned(),
        copy(&buffered_run, "peak_rss_kb"),
    ));
    fields.push((
        "rss_ratio".to_owned(),
        match rss_ratio {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    fields.push((
        "speedup".to_owned(),
        match speedup {
            Some(r) => r.to_value(),
            None => Value::Null,
        },
    ));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    Value::Obj(fields)
}

/// The mmap-ingest scales: the same 100k+ headline point as
/// binary-ingest (the acceptance criterion compares the two directly),
/// or a tiny smoke scale.
fn mmap_scales(smoke: bool) -> Vec<(&'static str, WanParams)> {
    if smoke {
        return vec![(
            "mmap-ingest-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 32,
            },
        )];
    }
    vec![(
        "mmap-ingest-102k",
        WanParams {
            regions: 5,
            routers_per_group: 2,
            parallel_links: 2,
            fecs_per_pair: 5120,
        },
    )]
}

/// The **ablation** scenario kind: does Hopcroft-minimizing each
/// determinized equation side before the equivalence check pay for
/// itself on the interface-granularity path explosion (ROADMAP:
/// minimize-before-equiv)? Heavily-trunked cores at interface
/// granularity are the regime where the sides are largest; `speedup` is
/// wall-plain ÷ wall-minimized (>1 ⇒ minimization pays). Verdicts are
/// compared at the verdict level — minimization may legitimately
/// reorder witness enumeration, never what holds.
fn run_ablation(threads: usize, smoke: bool) -> Value {
    let (name, params, spec_atomics) = if smoke {
        (
            "ablation-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 2,
                fecs_per_pair: 2,
            },
            1,
        )
    } else {
        (
            "ablation-minimize",
            WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 6,
                fecs_per_pair: 4,
            },
            1,
        )
    };
    let granularity = Granularity::Interface;
    eprintln!(
        "[{name}] building testbed ({} regions, {} links, interface granularity)...",
        params.regions, params.parallel_links,
    );
    let tb = build_testbed(&params);
    let source = spec_of_size(spec_atomics, params.regions);
    let program = parse_program(&source).expect("spec parses");
    let compiled =
        compile_program(&program, &tb.wan.topology.db, granularity).expect("spec compiles");

    let run = |minimize_sides: bool| {
        let start = Instant::now();
        let report = Checker::new(&compiled, &tb.wan.topology.db)
            .with_options(CheckOptions {
                threads,
                minimize_sides,
                ..CheckOptions::default()
            })
            .check(&tb.pair);
        (start.elapsed(), report)
    };
    let (wall_plain, plain) = run(false);
    let (wall_min, minimized) = run(true);
    // verdict-level agreement (witness order may differ by design)
    let verdicts_match = plain.total == minimized.total
        && plain.compliant == minimized.compliant
        && plain.part_counts == minimized.part_counts
        && plain
            .violations
            .iter()
            .map(|v| &v.flow)
            .eq(minimized.violations.iter().map(|v| &v.flow));
    assert!(
        verdicts_match,
        "[{name}] side minimization changed a verdict — minimize() is unsound"
    );
    let speedup = wall_plain.as_secs_f64() / wall_min.as_secs_f64().max(f64::EPSILON);
    eprintln!(
        "[{name}] {} classes | plain {} vs minimized {} ({speedup:.2}× {} minimization)",
        plain.stats.classes,
        secs(wall_plain),
        secs(wall_min),
        if speedup >= 1.0 { "for" } else { "against" },
    );

    let mut fields = base_fields(
        name,
        "ablation",
        &params,
        spec_atomics,
        granularity,
        &minimized,
    );
    fields.push(("wall_s".to_owned(), wall_min.as_secs_f64().to_value()));
    fields.push((
        "wall_plain_s".to_owned(),
        wall_plain.as_secs_f64().to_value(),
    ));
    fields.push(("wall_nodedup_s".to_owned(), Value::Null));
    fields.push(("speedup".to_owned(), speedup.to_value()));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    fields.push(("rss_ratio".to_owned(), Value::Null));
    Value::Obj(fields)
}

/// Re-read the emitted file and assert the invariants CI relies on:
/// it parses, has scenarios, every scenario decided at least one class,
/// reports a hit rate, and no measured comparison diverged. `smoke`
/// runs may carry `null` baselines (skipped), never divergent ones.
/// The fixed seed the committed adversarial trajectory points use —
/// scenario names embed it, so changing it renames every scenario (the
/// gate treats them as new, not regressed).
const ADVERSARIAL_SEED: u64 = 1;

/// The **adversarial** scenario kind: one generated operational
/// scenario, its last iteration checked against the exact path diff as
/// an independent oracle. Both sides always run (the verdict
/// cross-check needs them), so `speedup` — path-diff ÷ checker wall —
/// is a real `Float` even in smoke mode.
fn run_adversarial(family: ScenarioFamily, threads: usize) -> Value {
    let sc = adversarial::generate(family, ADVERSARIAL_SEED);
    eprintln!(
        "[{}] generating ({} iterations, {} granularity): {}",
        sc.name,
        sc.iteration_count(),
        sc.granularity,
        sc.description,
    );
    let db = &sc.wan.topology.db;
    let post = sc
        .iterations
        .posts
        .last()
        .expect("scenarios have iterations");
    let pair = SnapshotPair::align(&sc.iterations.pre, post);
    let program = parse_program(&sc.spec).expect("nochange spec parses");
    let compiled = compile_program(&program, db, sc.granularity).expect("nochange spec compiles");
    let start = Instant::now();
    let report = Checker::new(&compiled, db)
        .with_options(CheckOptions {
            threads,
            ..CheckOptions::default()
        })
        .check(&pair);
    let wall = start.elapsed();
    let start = Instant::now();
    let diff = rela_baseline::path_diff(
        &pair,
        db,
        rela_baseline::DiffOptions {
            granularity: sc.granularity,
            max_paths_listed: 1,
        },
    );
    let wall_pathdiff = start.elapsed();
    let want = rela_baseline::changed_flows(&diff);
    let got: rela_baseline::ChangedFlows =
        report.violations.iter().map(|v| v.flow.clone()).collect();
    let verdicts_match = want == got;
    let speedup = wall_pathdiff.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON);
    eprintln!(
        "[{}] {} FECs → {} classes ({:.1}% hits) | checker {} vs path-diff {} ({speedup:.1}×) | verdicts {}",
        sc.name,
        report.stats.fecs,
        report.stats.classes,
        100.0 * report.stats.hit_rate(),
        secs(wall),
        secs(wall_pathdiff),
        if verdicts_match { "agree" } else { "DISAGREE" },
    );
    assert!(
        verdicts_match,
        "[{}] checker disagrees with the path-diff oracle — run the differential fuzz \
         harness with RELA_FUZZ_SEEDS={ADVERSARIAL_SEED} for the repro bundle",
        sc.name
    );
    let mut fields = base_fields(
        &sc.name,
        "adversarial",
        &sc.params,
        1,
        sc.granularity,
        &report,
    );
    fields.push(("family".to_owned(), family.name().to_value()));
    fields.push(("seed".to_owned(), (ADVERSARIAL_SEED as usize).to_value()));
    fields.push(("iterations".to_owned(), sc.iteration_count().to_value()));
    fields.push(("description".to_owned(), sc.description.to_value()));
    fields.push(("wall_s".to_owned(), wall.as_secs_f64().to_value()));
    fields.push((
        "wall_pathdiff_s".to_owned(),
        wall_pathdiff.as_secs_f64().to_value(),
    ));
    fields.push(("speedup".to_owned(), speedup.to_value()));
    fields.push(("verdicts_match".to_owned(), Value::Bool(verdicts_match)));
    fields.push(("rss_ratio".to_owned(), Value::Null));
    Value::Obj(fields)
}

/// Which families the adversarial kind measures: a cheap two-family
/// sample in smoke mode, the whole registry otherwise.
fn adversarial_scales(smoke: bool) -> Vec<ScenarioFamily> {
    if smoke {
        vec![ScenarioFamily::LinkMaintenance, ScenarioFamily::ClassSkew]
    } else {
        ScenarioFamily::ALL.to_vec()
    }
}

fn validate(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("re-reading {path}: {e}"));
    let value: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    assert_eq!(
        value.get("schema").and_then(Value::as_str),
        Some("rela-perf/v1"),
        "{path}: bad schema tag"
    );
    let smoke = value.get("smoke").and_then(Value::as_bool) == Some(true);
    let scenarios = value
        .get("scenarios")
        .and_then(Value::as_arr)
        .expect("scenarios array");
    assert!(!scenarios.is_empty(), "{path}: no scenarios");
    for s in scenarios {
        let name = s.get("name").and_then(Value::as_str).expect("name");
        let classes = s.get("classes").and_then(Value::as_u64).expect("classes");
        assert!(classes > 0, "{name}: zero classes");
        let fecs = s.get("fecs").and_then(Value::as_u64).expect("fecs");
        let rate = s
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .expect("cache_hit_rate");
        assert!((0.0..=1.0).contains(&rate), "{name}: bad hit rate {rate}");
        assert!(classes <= fecs, "{name}: more classes than FECs");
        assert!(
            s.get("cache_hits").and_then(Value::as_u64) == Some(fecs - classes),
            "{name}: inconsistent cache_hits"
        );
        match s.get("verdicts_match") {
            Some(Value::Bool(true)) => {}
            Some(Value::Null) if smoke => {} // baseline skipped in smoke
            other => panic!("{name}: verdicts_match is {other:?}"),
        }
        match s.get("speedup") {
            Some(Value::Float(f)) => assert!(*f > 0.0, "{name}: bad speedup {f}"),
            Some(Value::Null) if smoke => {}
            other => panic!("{name}: speedup is {other:?}"),
        }
        // every scenario carries rss_ratio: a positive measurement for
        // the child-process ingest kinds, null elsewhere
        match s.get("rss_ratio") {
            Some(Value::Float(f)) => assert!(*f > 0.0, "{name}: bad rss_ratio {f}"),
            Some(Value::Null) => {}
            other => panic!("{name}: rss_ratio is {other:?}"),
        }
        if s.get("kind").and_then(Value::as_str) == Some("delta-ingest") {
            let changed = s
                .get("changed_records")
                .and_then(Value::as_u64)
                .expect("changed_records");
            assert!(changed > 0, "{name}: a delta run must carry a real change");
            let decodes = s
                .get("graph_decodes")
                .and_then(Value::as_u64)
                .expect("graph_decodes");
            assert!(
                decodes <= 2 * changed,
                "{name}: {decodes} decodes for {changed} changed records"
            );
        }
        if s.get("kind").and_then(Value::as_str) == Some("iterative") {
            let warm = s
                .get("warm_hits")
                .and_then(Value::as_u64)
                .expect("warm_hits");
            assert!(warm > 0, "{name}: an iterative run must go warm");
        }
    }
    eprintln!("{path}: validated ({} scenarios)", scenarios.len());
}

/// The cold-ingest scales: ~12k FECs (the dedup-sweep scale point) and
/// 100k+ FECs (tracking the paper's 10⁶ headline), or one tiny scale in
/// smoke mode.
fn ingest_scales(smoke: bool) -> Vec<(&'static str, WanParams)> {
    if smoke {
        return vec![(
            "cold-ingest-smoke",
            WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 32,
            },
        )];
    }
    vec![
        (
            "cold-ingest-12k",
            WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 1024,
            },
        ),
        (
            "cold-ingest-100k",
            WanParams {
                regions: 5,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 5120,
            },
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--ingest-worker") {
        ingest_worker(&args[1..]);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|ix| args.get(ix + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_check.json".to_owned());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|ix| args.get(ix + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);

    let mut results: Vec<Value> = scenarios(smoke)
        .iter()
        .map(|s| run_scenario(s, threads, smoke))
        .collect();
    results.push(run_iterative(threads, smoke));
    results.push(run_ablation(threads, smoke));
    for (name, params) in ingest_scales(smoke) {
        results.push(run_ingest(name, &params, threads));
    }
    for (name, params) in pipelined_scales(smoke) {
        results.push(run_pipelined_ingest(name, &params, threads));
    }
    for (name, params) in delta_scales(smoke) {
        results.push(run_delta_ingest(name, &params, threads, smoke));
    }
    for (name, params) in binary_scales(smoke) {
        results.push(run_binary_ingest(name, &params, threads));
    }
    for (name, params) in mmap_scales(smoke) {
        results.push(run_mmap_ingest(name, &params, threads));
    }
    for family in adversarial_scales(smoke) {
        results.push(run_adversarial(family, threads));
    }
    let doc = Value::obj(vec![
        ("schema", "rela-perf/v1".to_value()),
        ("threads", threads.to_value()),
        ("smoke", Value::Bool(smoke)),
        ("scenarios", Value::Arr(results)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    validate(&out_path);

    // human-readable summary
    let text = std::fs::read_to_string(&out_path).expect("readable");
    let value: Value = serde_json::from_str(&text).expect("parses");
    println!("== checker perf ({}) ==", out_path);
    println!(
        "{:>17} {:>10} {:>7} {:>8} {:>7} {:>10} {:>12} {:>8}",
        "scenario", "kind", "fecs", "classes", "hits%", "wall", "baseline", "speedup"
    );
    for s in value.get("scenarios").and_then(Value::as_arr).unwrap() {
        let kind = s.get("kind").and_then(Value::as_str).unwrap_or("dedup");
        // baseline column: no-dedup wall for dedup runs, cold wall for
        // iterative runs; "-" when skipped (smoke)
        let baseline = match kind {
            "iterative" => s.get("wall_cold_s").and_then(Value::as_f64),
            "delta-ingest" => s.get("wall_full_warm_s").and_then(Value::as_f64),
            "binary-ingest" => s.get("wall_json_s").and_then(Value::as_f64),
            "mmap-ingest" => s.get("wall_binary_s").and_then(Value::as_f64),
            "adversarial" => s.get("wall_pathdiff_s").and_then(Value::as_f64),
            _ => s.get("wall_nodedup_s").and_then(Value::as_f64),
        };
        let fmt_s = |v: Option<f64>| match v {
            Some(f) => format!("{f:.3}s"),
            None => "-".to_owned(),
        };
        println!(
            "{:>17} {:>10} {:>7} {:>8} {:>6.1}% {:>10} {:>12} {:>8}",
            s.get("name").and_then(Value::as_str).unwrap(),
            kind,
            s.get("fecs").and_then(Value::as_u64).unwrap(),
            s.get("classes").and_then(Value::as_u64).unwrap(),
            100.0 * s.get("cache_hit_rate").and_then(Value::as_f64).unwrap(),
            fmt_s(s.get("wall_s").and_then(Value::as_f64)),
            fmt_s(baseline),
            match s.get("speedup").and_then(Value::as_f64) {
                Some(f) => format!("{f:.1}×"),
                None => "-".to_owned(),
            },
        );
    }
}
