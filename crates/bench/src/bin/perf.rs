//! The checker perf harness: runs the fig6/fig7 testbeds at several
//! WAN scales — including a high `--fecs-per-pair` sweep where
//! behavior-class dedup dominates — with dedup on *and* off at equal
//! thread count, asserts the verdicts are identical, and writes the
//! results to a machine-readable `BENCH_check.json` so the perf
//! trajectory of the checker is observable across PRs.
//!
//! Run: `cargo run --release -p rela-bench --bin perf [-- --smoke]
//!       [--out FILE] [--threads N]`
//!
//! `--smoke` runs one tiny scenario (CI-friendly, a few seconds) and
//! still exercises the full measure → serialize → re-read → validate
//! loop. The JSON schema (`rela-perf/v1`):
//!
//! ```json
//! {
//!   "schema": "rela-perf/v1",
//!   "threads": 1,
//!   "smoke": false,
//!   "scenarios": [
//!     {
//!       "name": "dedup-sweep-64", "regions": 4, "routers_per_group": 2,
//!       "parallel_links": 2, "fecs_per_pair": 64, "spec_atomics": 4,
//!       "granularity": "group", "fecs": 768, "classes": 12,
//!       "cache_hits": 756, "cache_hit_rate": 0.984,
//!       "wall_s": 0.05, "wall_nodedup_s": 2.61, "speedup": 52.2,
//!       "verdicts_match": true, "violations": 64, "max_class_s": 0.01,
//!       "phases_s": {"lower": ..., "determinize": ..., "equivalent": ...,
//!                    "witness": ...}
//!     }
//!   ]
//! }
//! ```

use rela_bench::{build_testbed, secs, Testbed};
use rela_core::{compile_program, parse_program, CheckOptions, CheckReport, Checker};
use rela_net::Granularity;
use rela_sim::workload::{spec_of_size, WanParams};
use serde::{Serialize, Value};
use std::time::{Duration, Instant};

struct Scenario {
    name: &'static str,
    params: WanParams,
    spec_atomics: usize,
    granularity: Granularity,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    if smoke {
        return vec![Scenario {
            name: "smoke",
            params: WanParams {
                regions: 3,
                routers_per_group: 1,
                parallel_links: 1,
                fecs_per_pair: 4,
            },
            spec_atomics: 1,
            granularity: Granularity::Group,
        }];
    }
    vec![
        // the Fig. 6 testbed at its default scale
        Scenario {
            name: "fig6-default",
            params: WanParams::default(),
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
        // the Fig. 7 interface-granularity column (the path-explosion one)
        Scenario {
            name: "fig7-interface",
            params: WanParams::default(),
            spec_atomics: 1,
            granularity: Granularity::Interface,
        },
        // high fecs-per-pair sweep: many prefixes share one forwarding
        // behavior per region pair, so dedup dominates
        Scenario {
            name: "dedup-sweep-64",
            params: WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 64,
            },
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
        Scenario {
            name: "dedup-sweep-128",
            params: WanParams {
                regions: 4,
                routers_per_group: 2,
                parallel_links: 2,
                fecs_per_pair: 128,
            },
            spec_atomics: 4,
            granularity: Granularity::Group,
        },
    ]
}

fn check(
    tb: &Testbed,
    compiled: &rela_core::CompiledProgram,
    dedup: bool,
    threads: usize,
) -> (Duration, CheckReport) {
    let start = Instant::now();
    let report = Checker::new(compiled, &tb.wan.topology.db)
        .with_options(CheckOptions {
            dedup,
            threads,
            ..CheckOptions::default()
        })
        .check(&tb.pair);
    (start.elapsed(), report)
}

fn reports_agree(a: &CheckReport, b: &CheckReport) -> bool {
    a.total == b.total
        && a.compliant == b.compliant
        && a.part_counts == b.part_counts
        && a.violations == b.violations
}

fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::Group => "group",
        Granularity::Device => "device",
        Granularity::Interface => "interface",
    }
}

fn run_scenario(s: &Scenario, threads: usize) -> Value {
    eprintln!(
        "[{}] building testbed ({} regions, {} routers/group, {} links, {} FECs/pair)...",
        s.name,
        s.params.regions,
        s.params.routers_per_group,
        s.params.parallel_links,
        s.params.fecs_per_pair,
    );
    let tb = build_testbed(&s.params);
    let source = spec_of_size(s.spec_atomics, s.params.regions);
    let program = parse_program(&source).expect("spec parses");
    let compiled =
        compile_program(&program, &tb.wan.topology.db, s.granularity).expect("spec compiles");

    let (wall, report) = check(&tb, &compiled, true, threads);
    let (wall_nodedup, report_nodedup) = check(&tb, &compiled, false, threads);
    let verdicts_match = reports_agree(&report, &report_nodedup);
    let speedup = wall_nodedup.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON);
    let stats = report.stats;
    eprintln!(
        "[{}] {} FECs → {} classes ({:.1}% hits) | dedup {} vs no-dedup {} ({speedup:.1}×) | verdicts {}",
        s.name,
        stats.fecs,
        stats.classes,
        100.0 * stats.hit_rate(),
        secs(wall),
        secs(wall_nodedup),
        if verdicts_match { "identical" } else { "DIVERGED" },
    );
    assert!(
        verdicts_match,
        "[{}] dedup changed the verdict — the engine is unsound",
        s.name
    );

    let phases = stats.phases;
    Value::obj(vec![
        ("name", s.name.to_value()),
        ("regions", s.params.regions.to_value()),
        ("routers_per_group", s.params.routers_per_group.to_value()),
        ("parallel_links", s.params.parallel_links.to_value()),
        (
            "fecs_per_pair",
            (s.params.fecs_per_pair as usize).to_value(),
        ),
        ("spec_atomics", s.spec_atomics.to_value()),
        ("granularity", granularity_name(s.granularity).to_value()),
        ("fecs", stats.fecs.to_value()),
        ("classes", stats.classes.to_value()),
        ("cache_hits", stats.dedup_hits.to_value()),
        ("cache_hit_rate", stats.hit_rate().to_value()),
        ("wall_s", wall.as_secs_f64().to_value()),
        ("wall_nodedup_s", wall_nodedup.as_secs_f64().to_value()),
        ("speedup", speedup.to_value()),
        ("verdicts_match", Value::Bool(verdicts_match)),
        ("violations", report.violations.len().to_value()),
        ("max_class_s", stats.max_class_time.as_secs_f64().to_value()),
        (
            "phases_s",
            Value::obj(vec![
                ("lower", phases.lower.as_secs_f64().to_value()),
                ("determinize", phases.determinize.as_secs_f64().to_value()),
                ("equivalent", phases.equivalent.as_secs_f64().to_value()),
                ("witness", phases.witness.as_secs_f64().to_value()),
            ]),
        ),
    ])
}

/// Re-read the emitted file and assert the invariants CI relies on:
/// it parses, has scenarios, every scenario decided at least one class,
/// reports a hit rate, and dedup never changed a verdict.
fn validate(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("re-reading {path}: {e}"));
    let value: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    assert_eq!(
        value.get("schema").and_then(Value::as_str),
        Some("rela-perf/v1"),
        "{path}: bad schema tag"
    );
    let scenarios = value
        .get("scenarios")
        .and_then(Value::as_arr)
        .expect("scenarios array");
    assert!(!scenarios.is_empty(), "{path}: no scenarios");
    for s in scenarios {
        let name = s.get("name").and_then(Value::as_str).expect("name");
        let classes = s.get("classes").and_then(Value::as_u64).expect("classes");
        assert!(classes > 0, "{name}: zero classes");
        let fecs = s.get("fecs").and_then(Value::as_u64).expect("fecs");
        let rate = s
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .expect("cache_hit_rate");
        assert!((0.0..=1.0).contains(&rate), "{name}: bad hit rate {rate}");
        assert!(classes <= fecs, "{name}: more classes than FECs");
        assert!(
            s.get("verdicts_match").and_then(Value::as_bool) == Some(true),
            "{name}: verdicts diverged"
        );
        assert!(
            s.get("cache_hits").and_then(Value::as_u64) == Some(fecs - classes),
            "{name}: inconsistent cache_hits"
        );
    }
    eprintln!("{path}: validated ({} scenarios)", scenarios.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|ix| args.get(ix + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_check.json".to_owned());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|ix| args.get(ix + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);

    let results: Vec<Value> = scenarios(smoke)
        .iter()
        .map(|s| run_scenario(s, threads))
        .collect();
    let doc = Value::obj(vec![
        ("schema", "rela-perf/v1".to_value()),
        ("threads", threads.to_value()),
        ("smoke", Value::Bool(smoke)),
        ("scenarios", Value::Arr(results)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    validate(&out_path);

    // human-readable summary
    let text = std::fs::read_to_string(&out_path).expect("readable");
    let value: Value = serde_json::from_str(&text).expect("parses");
    println!("== checker perf ({}) ==", out_path);
    println!(
        "{:>16} {:>7} {:>8} {:>7} {:>10} {:>12} {:>8}",
        "scenario", "fecs", "classes", "hits%", "wall", "no-dedup", "speedup"
    );
    for s in value.get("scenarios").and_then(Value::as_arr).unwrap() {
        println!(
            "{:>16} {:>7} {:>8} {:>6.1}% {:>9.3}s {:>11.3}s {:>7.1}×",
            s.get("name").and_then(Value::as_str).unwrap(),
            s.get("fecs").and_then(Value::as_u64).unwrap(),
            s.get("classes").and_then(Value::as_u64).unwrap(),
            100.0 * s.get("cache_hit_rate").and_then(Value::as_f64).unwrap(),
            s.get("wall_s").and_then(Value::as_f64).unwrap(),
            s.get("wall_nodedup_s").and_then(Value::as_f64).unwrap(),
            s.get("speedup").and_then(Value::as_f64).unwrap(),
        );
    }
}
