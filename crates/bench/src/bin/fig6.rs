//! Regenerates **Figure 6**: the CDF of validation time across the
//! change dataset, following the paper's methodology (§9.2): every spec
//! is validated against the same snapshot pair, and the reported time
//! covers deserialization-equivalent work, FSA/FST construction, and
//! equivalence checking.
//!
//! Expected shape: the median equals the cost of the "no change" spec
//! (half the dataset is exactly that spec), and the tail is driven by
//! the N=13 / N=37 outliers.
//!
//! Run: `cargo run --release -p rela-bench --bin fig6 [-- --regions 6 --fecs-per-pair 10]`

use rela_bench::{build_testbed, cdf, percentile, secs, time_validation};
use rela_sim::workload::{evaluation_specs, spec_of_size};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = rela_bench::params_from_args(&args);
    eprintln!(
        "building testbed: {} regions, {} routers/group, {} parallel links, {} FECs/pair",
        params.regions, params.routers_per_group, params.parallel_links, params.fecs_per_pair
    );
    let tb = build_testbed(&params);
    eprintln!("testbed ready: {} FECs", tb.pair.len());

    let specs = evaluation_specs(&params);
    let mut times: Vec<Duration> = Vec::with_capacity(specs.len());
    for spec in &specs {
        let (elapsed, report) = time_validation(
            &spec.source,
            &tb.wan.topology.db,
            spec.granularity,
            &tb.pair,
        );
        eprintln!(
            "  {} (N={}, {}): {} — {} violations",
            spec.id,
            spec.atomic_count,
            spec.granularity,
            secs(elapsed),
            report.violations.len()
        );
        times.push(elapsed);
    }

    println!(
        "== Figure 6: CDF of validation time ({} changes) ==",
        specs.len()
    );
    println!();
    println!("{:>12} {:>8}", "time", "CDF");
    for (t, fraction) in cdf(times.clone()) {
        println!("{:>12} {fraction:>8.3}", secs(t));
    }

    let mut sorted = times;
    sorted.sort();
    let (nochange_time, _) = time_validation(
        &spec_of_size(1, params.regions),
        &tb.wan.topology.db,
        rela_net::Granularity::Group,
        &tb.pair,
    );
    println!();
    println!(
        "median {} vs. no-change spec {} (paper: the median IS the no-change spec)",
        secs(percentile(&sorted, 50.0)),
        secs(nochange_time),
    );
    println!(
        "p80 {} | max {} (paper: 80% under 20 min, max 150 min on 10^6 FECs)",
        secs(percentile(&sorted, 80.0)),
        secs(percentile(&sorted, 100.0)),
    );
}
