//! Regenerates **Figure 7**: validation time for spec sizes
//! N ∈ {1, 4, 7, 13, 37} at the three location granularities.
//!
//! Expected shape (paper §9.2): time grows with N; router-group and
//! router granularity are close; interface granularity costs ~10× more
//! because of the interface-level path explosion.
//!
//! Run: `cargo run --release -p rela-bench --bin fig7 [-- --regions 6 --parallel-links 4]`

use rela_bench::{build_testbed, secs, time_validation};
use rela_net::Granularity;
use rela_sim::workload::spec_of_size;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = rela_bench::params_from_args(&args);
    eprintln!(
        "building testbed: {} regions, {} routers/group, {} parallel links, {} FECs/pair",
        params.regions, params.routers_per_group, params.parallel_links, params.fecs_per_pair
    );
    let tb = build_testbed(&params);
    eprintln!("testbed ready: {} FECs", tb.pair.len());

    const SIZES: [usize; 5] = [1, 4, 7, 13, 37];
    const GRANULARITIES: [Granularity; 3] = [
        Granularity::Group,
        Granularity::Device,
        Granularity::Interface,
    ];

    println!("== Figure 7: validation time by spec size × granularity ==");
    println!();
    println!(
        "{:>5} {:>14} {:>14} {:>14}",
        "N", "group", "router", "interface"
    );
    let mut group_total = 0.0f64;
    let mut iface_total = 0.0f64;
    for n in SIZES {
        let source = spec_of_size(n, params.regions);
        let mut row = Vec::new();
        for granularity in GRANULARITIES {
            let (elapsed, _) = time_validation(&source, &tb.wan.topology.db, granularity, &tb.pair);
            if granularity == Granularity::Group {
                group_total += elapsed.as_secs_f64();
            }
            if granularity == Granularity::Interface {
                iface_total += elapsed.as_secs_f64();
            }
            row.push(secs(elapsed));
        }
        println!("{n:>5} {:>14} {:>14} {:>14}", row[0], row[1], row[2]);
    }
    println!();
    println!(
        "interface/group cost ratio: {:.1}× (paper: ~10×; ratio grows with --parallel-links)",
        iface_total / group_total.max(f64::EPSILON)
    );
}
