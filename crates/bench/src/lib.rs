//! # rela-bench
//!
//! Shared harness code for regenerating every table and figure of the
//! paper's evaluation (§8–§9). The runnable entry points live in
//! `src/bin/`:
//!
//! - `table1` — the counterexample table for the Figure 1c implementation
//! - `case_study` — §8.1 violation counts across all four iterations
//! - `fig5` — CDF of spec sizes (and the §9.1 expressiveness inventory)
//! - `fig6` — CDF of validation times over the change dataset
//! - `fig7` — validation time vs. spec size × granularity
//!
//! Criterion micro-benchmarks are under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rela_core::{CheckReport, CheckSession, JobSpec, SessionConfig};
use rela_net::{Granularity, LocationDb, SnapshotPair};
use rela_sim::workload::{synthetic_wan, SyntheticWan, WanParams};
use rela_sim::{configured, simulate};
use std::time::{Duration, Instant};

/// A WAN with its pre/post snapshots, ready for timing runs.
pub struct Testbed {
    /// The generated network.
    pub wan: SyntheticWan,
    /// Aligned pre/post forwarding state.
    pub pair: SnapshotPair,
}

/// Build the evaluation testbed: synthesize the WAN, simulate the base
/// configuration and the representative change, and align the snapshots.
pub fn build_testbed(params: &WanParams) -> Testbed {
    let wan = synthetic_wan(params);
    let (pre, unconverged) = simulate(&wan.topology, &wan.config, &wan.traffic);
    assert!(unconverged.is_empty(), "base WAN must converge");
    let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
    let (post, unconverged) = simulate(&wan.topology, &post_cfg, &wan.traffic);
    assert!(unconverged.is_empty(), "changed WAN must converge");
    let pair = SnapshotPair::align(&pre, &post);
    Testbed { wan, pair }
}

/// Time one full validation (parse + compile + check), the quantity
/// Fig. 6/7 report.
pub fn time_validation(
    source: &str,
    db: &LocationDb,
    granularity: Granularity,
    pair: &SnapshotPair,
) -> (Duration, CheckReport) {
    // the clone stays outside the timer: Fig. 6/7 time the validation
    // (parse + compile + check), not harness bookkeeping
    let db = db.clone();
    let start = Instant::now();
    // session open + one job = exactly the old one-shot path
    let session = CheckSession::open(
        source,
        db,
        SessionConfig {
            granularity,
            ..SessionConfig::default()
        },
    )
    .expect("spec must compile");
    let report = session.run(JobSpec::pair(pair)).expect("in-memory pair");
    (start.elapsed(), report)
}

/// Simple CDF: sorted values with cumulative fractions.
pub fn cdf<T: Copy + PartialOrd>(mut values: Vec<T>) -> Vec<(T, f64)> {
    values.sort_by(|a, b| a.partial_cmp(b).expect("orderable"));
    let n = values.len() as f64;
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Percentile (0–100) of a sorted sample.
pub fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let ix = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[ix.min(sorted.len() - 1)]
}

/// Parse `--key value` style CLI overrides for WAN scale.
pub fn params_from_args(args: &[String]) -> WanParams {
    let mut params = WanParams::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--regions" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    params.regions = v;
                }
            }
            "--routers-per-group" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    params.routers_per_group = v;
                }
            }
            "--parallel-links" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    params.parallel_links = v;
                }
            }
            "--fecs-per-pair" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    params.fecs_per_pair = v;
                }
            }
            _ => {}
        }
    }
    params
}

/// Pretty Duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_builds_at_small_scale() {
        let params = WanParams {
            regions: 3,
            routers_per_group: 1,
            parallel_links: 1,
            fecs_per_pair: 1,
        };
        let tb = build_testbed(&params);
        assert_eq!(tb.pair.len(), 6); // 6 ordered pairs × 1 FEC
    }

    #[test]
    fn cdf_is_monotone() {
        let points = cdf(vec![3, 1, 2, 2]);
        assert_eq!(points.first().unwrap().0, 1);
        assert_eq!(points.last().unwrap().1, 1.0);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn percentile_bounds() {
        let sample: Vec<Duration> = (1..=10).map(Duration::from_secs).collect();
        assert_eq!(percentile(&sample, 0.0), Duration::from_secs(1));
        assert_eq!(percentile(&sample, 100.0), Duration::from_secs(10));
        assert_eq!(percentile(&sample, 50.0), Duration::from_secs(6));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn args_parsing() {
        let args: Vec<String> = ["--regions", "7", "--fecs-per-pair", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = params_from_args(&args);
        assert_eq!(p.regions, 7);
        assert_eq!(p.fecs_per_pair, 3);
        assert_eq!(p.routers_per_group, WanParams::default().routers_per_group);
    }

    /// One end-to-end timing run at tiny scale keeps the harness honest.
    #[test]
    fn time_validation_runs() {
        let params = WanParams {
            regions: 3,
            routers_per_group: 1,
            parallel_links: 1,
            fecs_per_pair: 1,
        };
        let tb = build_testbed(&params);
        let spec = rela_sim::workload::spec_of_size(1, params.regions);
        let (elapsed, report) =
            time_validation(&spec, &tb.wan.topology.db, Granularity::Group, &tb.pair);
        assert!(elapsed > Duration::ZERO);
        assert_eq!(report.total, 6);
    }
}
