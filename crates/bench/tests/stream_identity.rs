//! The streamed and pipelined cold paths must be indistinguishable from
//! the materialized one: on the fig6/fig7 testbeds, feeding the
//! serialized snapshots through `SnapshotReader` → `align_streaming` →
//! `check_stream`, or through `SnapshotFramer` → `check_pipelined`,
//! produces a byte-identical `CheckReport` to `from_json` → `align` →
//! `check` (timing lines excluded — they are the only nondeterministic
//! output).

use rela_core::{compile_program, parse_program, CheckOptions, CheckReport, Checker};
use rela_net::{Granularity, SnapshotFramer, SnapshotPair, SnapshotReader};
use rela_sim::workload::{spec_of_size, synthetic_wan, WanParams};
use rela_sim::{configured, simulate};

/// The report rendering minus its timing-dependent lines.
fn verdict_bytes(report: &CheckReport) -> String {
    report
        .to_string()
        .lines()
        .filter(|l| !l.starts_with("checked ") && !l.starts_with("behavior classes:"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_streamed_identical(params: &WanParams, spec_atomics: usize, granularity: Granularity) {
    let wan = synthetic_wan(params);
    let (pre, unconverged) = simulate(&wan.topology, &wan.config, &wan.traffic);
    assert!(unconverged.is_empty(), "base WAN must converge");
    let post_cfg = configured(&wan.config, &wan.topology, &wan.representative_change);
    let (post, unconverged) = simulate(&wan.topology, &post_cfg, &wan.traffic);
    assert!(unconverged.is_empty(), "changed WAN must converge");

    let program = parse_program(&spec_of_size(spec_atomics, params.regions)).expect("spec parses");
    let compiled = compile_program(&program, &wan.topology.db, granularity).expect("spec compiles");
    let checker = Checker::new(&compiled, &wan.topology.db).with_options(CheckOptions {
        threads: 2,
        ..CheckOptions::default()
    });

    let materialized = checker.check(&SnapshotPair::align(&pre, &post));
    let pre_json = pre.to_json().expect("pre serializes");
    let post_json = post.to_json().expect("post serializes");
    let streamed = checker
        .check_stream(SnapshotPair::align_streaming(
            SnapshotReader::new(pre_json.as_bytes()),
            SnapshotReader::new(post_json.as_bytes()),
        ))
        .expect("streams are well-formed");

    assert_eq!(streamed.total, materialized.total);
    assert_eq!(streamed.compliant, materialized.compliant);
    assert_eq!(streamed.part_counts, materialized.part_counts);
    assert_eq!(streamed.violations, materialized.violations);
    assert_eq!(streamed.stats.classes, materialized.stats.classes);
    assert_eq!(streamed.stats.dedup_hits, materialized.stats.dedup_hits);
    assert_eq!(
        verdict_bytes(&streamed),
        verdict_bytes(&materialized),
        "streamed and materialized reports diverged"
    );

    let pipelined = checker
        .check_pipelined(
            SnapshotFramer::new(pre_json.as_bytes(), "pre.json"),
            SnapshotFramer::new(post_json.as_bytes(), "post.json"),
        )
        .expect("streams are well-formed");
    assert_eq!(pipelined.stats.classes, materialized.stats.classes);
    assert_eq!(pipelined.stats.dedup_hits, materialized.stats.dedup_hits);
    assert_eq!(
        verdict_bytes(&pipelined),
        verdict_bytes(&materialized),
        "pipelined and materialized reports diverged"
    );
}

/// The Fig. 6 testbed (default WAN scale, group granularity).
#[test]
fn fig6_testbed_streams_byte_identically() {
    assert_streamed_identical(&WanParams::default(), 4, Granularity::Group);
}

/// The Fig. 7 interface-granularity column (the path-explosion one).
#[test]
fn fig7_testbed_streams_byte_identically() {
    assert_streamed_identical(&WanParams::default(), 1, Granularity::Interface);
}
