//! Property-based tests for the network model: the FSA encoding of a
//! forwarding DAG must accept exactly the DAG's paths, at every
//! granularity — cross-checked against path enumeration plus path-level
//! coarsening, on randomly generated layered DAGs.

use proptest::prelude::*;
use rela_automata::SymbolTable;
use rela_net::{
    device_path_to_group, graph_to_fsa, Device, ForwardingGraph, Granularity, LocationDb,
};

/// A randomly shaped layered DAG over a fixed device pool: `layers`
/// layers of up to 3 devices, consecutive layers connected by a random
/// non-empty edge set, with optional drop vertices in the middle.
#[derive(Debug, Clone)]
struct RandomDag {
    graph: ForwardingGraph,
}

fn device_name(layer: usize, ix: usize) -> String {
    // two devices per group so group-level coarsening is non-trivial:
    // layer L, member ix → group G{L/1}{ix/2}? keep it simple: group by
    // (layer, ix/2) so members 0-1 share a group
    format!("L{layer}G{}-r{}", ix / 2, ix % 2)
}

fn group_of(layer: usize, ix: usize) -> String {
    format!("L{layer}G{}", ix / 2)
}

fn db_for(layers: usize) -> LocationDb {
    let mut db = LocationDb::new();
    for layer in 0..layers {
        for ix in 0..4 {
            db.add_device(Device::new(device_name(layer, ix), group_of(layer, ix)));
        }
    }
    db
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    // layers ∈ [2, 4]; per layer a subset of 4 devices; random edges
    (2usize..=4)
        .prop_flat_map(|layers| {
            let layer_nodes =
                proptest::collection::vec(proptest::collection::vec(0usize..4, 1..=3), layers);
            let edge_seed = proptest::collection::vec(any::<u8>(), 32);
            let drop_seed = any::<u8>();
            (Just(layers), layer_nodes, edge_seed, drop_seed)
        })
        .prop_map(|(layers, layer_nodes, edge_seed, drop_seed)| {
            let mut graph = ForwardingGraph::new();
            let mut ids: Vec<Vec<usize>> = Vec::new();
            for (layer, nodes) in layer_nodes.iter().enumerate() {
                let mut this_layer = Vec::new();
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                for &ix in &sorted {
                    this_layer.push(graph.add_vertex(device_name(layer, ix)));
                }
                ids.push(this_layer);
            }
            // connect consecutive layers; guarantee ≥1 edge per boundary
            let mut seed_iter = edge_seed.iter().cycle();
            for layer in 0..layers - 1 {
                let mut any_edge = false;
                for &u in &ids[layer] {
                    for &v in &ids[layer + 1] {
                        let bits = *seed_iter.next().expect("cycle");
                        if bits & 1 == 1 {
                            graph.add_edge(u, v, format!("e{u}-{v}"), format!("i{u}-{v}"));
                            any_edge = true;
                        }
                    }
                }
                if !any_edge {
                    graph.add_edge(ids[layer][0], ids[layer + 1][0], "e-fallback", "i-fallback");
                }
            }
            graph.sources = ids[0].clone();
            graph.sinks = ids[layers - 1].clone();
            // occasionally make a middle vertex a drop
            if drop_seed % 3 == 0 && layers > 2 {
                graph.drops.push(ids[1][0]);
            }
            RandomDag { graph }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Device-level FSA accepts exactly the enumerated device paths.
    #[test]
    fn device_fsa_matches_enumeration(dag in dag_strategy()) {
        let db = db_for(5);
        prop_assert!(dag.graph.validate().is_ok());
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&dag.graph, &db, Granularity::Device, &mut table);
        let paths = dag.graph.device_paths(10_000);
        // every enumerated path is accepted
        for path in &paths {
            let word: Vec<_> = path
                .iter()
                .map(|n| table.lookup(n).unwrap_or_else(|| panic!("missing {n}")))
                .collect();
            prop_assert!(fsa.accepts(&word), "path {path:?} rejected");
        }
        // the FSA language is empty iff there are no paths
        prop_assert_eq!(paths.is_empty(), fsa.language_is_empty());
    }

    /// Group-level FSA accepts exactly the coarsened device paths.
    #[test]
    fn group_fsa_matches_coarsened_enumeration(dag in dag_strategy()) {
        let db = db_for(5);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&dag.graph, &db, Granularity::Group, &mut table);
        for path in dag.graph.device_paths(10_000) {
            let coarse = device_path_to_group(&path, &db);
            let word: Vec<_> = coarse
                .iter()
                .map(|n| table.lookup(n).unwrap_or_else(|| panic!("missing {n}")))
                .collect();
            prop_assert!(fsa.accepts(&word), "coarse path {coarse:?} rejected");
        }
    }

    /// Path counts are consistent: the link-level count is at least the
    /// number of distinct device paths.
    #[test]
    fn path_count_dominates_device_paths(dag in dag_strategy()) {
        let count = dag.graph.path_count().expect("acyclic");
        let device_paths = dag.graph.device_paths(10_000).len() as u128;
        prop_assert!(count >= device_paths, "{count} < {device_paths}");
    }

    /// Deduplicating parallel edges never changes device-level paths.
    #[test]
    fn dedup_preserves_device_paths(dag in dag_strategy()) {
        let deduped = dag.graph.dedup_parallel_edges();
        prop_assert_eq!(
            dag.graph.device_paths(10_000),
            deduped.device_paths(10_000)
        );
    }

    /// Serde round trip is the identity.
    #[test]
    fn graph_serde_roundtrip(dag in dag_strategy()) {
        let json = serde_json::to_string(&dag.graph).expect("serializes");
        let back: ForwardingGraph = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, dag.graph);
    }
}
