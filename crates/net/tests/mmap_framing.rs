//! Equivalence of the two RSNB framers: the zero-copy mapped framer
//! (`SnapshotFramer::from_map`) must yield byte-identical span
//! sequences — same record offsets, indices, flow/graph bytes, and
//! sentinel/trailing handling — as the buffered framer reading the same
//! container through `BufReader`, for every record-size mix and at
//! every truncation point. Errors must match to the message byte,
//! offset and entry index included.

use proptest::prelude::*;
use rela_net::{
    MmapSource, RawRecord, SnapshotError, SnapshotFramer, BINARY_MAGIC, BINARY_VERSION,
};
use std::io::BufReader;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The container caps of `docs/SNAPSHOT_FORMAT.md` (private consts in
/// the crate; the framing contract pins their values).
const FLOW_CAP: u32 = 1 << 20;
const GRAPH_CAP: u32 = 64 << 20;

/// Build an RSNB container from raw (flow, graph) byte pairs, with or
/// without the closing sentinel and optional trailing garbage.
fn container(records: &[(Vec<u8>, Vec<u8>)], sentinel: bool, trailing: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    for (flow, graph) in records {
        out.extend_from_slice(&(flow.len() as u32).to_le_bytes());
        out.extend_from_slice(flow);
        out.extend_from_slice(&(graph.len() as u32).to_le_bytes());
        out.extend_from_slice(graph);
    }
    if sentinel {
        out.extend_from_slice(&u32::MAX.to_le_bytes());
    }
    out.extend_from_slice(trailing);
    out
}

/// Spool `bytes` to a fresh temp file and return its path.
fn spool(bytes: &[u8]) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "rela-mmap-framing-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// One framer's observable output: the framed spans and, if the stream
/// ended in an error, its full rendering.
#[derive(Debug, PartialEq)]
struct Framed {
    records: Vec<(u64, usize, Vec<u8>, Vec<u8>)>,
    error: Option<String>,
}

fn drain(framer: impl Iterator<Item = Result<RawRecord, SnapshotError>>) -> Framed {
    let mut records = Vec::new();
    let mut error = None;
    for item in framer {
        match item {
            Ok(raw) => {
                let (flow, graph) = raw.split_spans(Some("t")).expect("binary records split");
                records.push((raw.offset, raw.index, flow.to_vec(), graph.to_vec()));
            }
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    Framed { records, error }
}

/// Frame `bytes` both ways — buffered from a file reader, mapped in
/// place — and assert the outputs are identical.
fn assert_framers_agree(bytes: &[u8]) {
    let path = spool(bytes);
    let buffered = drain(SnapshotFramer::new(
        BufReader::new(std::fs::File::open(&path).unwrap()),
        "t",
    ));
    let map = MmapSource::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let mapped = drain(SnapshotFramer::from_map(map, "t"));
    assert_eq!(
        buffered,
        mapped,
        "framers diverged on {} bytes",
        bytes.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Intact containers over randomized record sizes (empty spans
    /// included) frame identically both ways.
    #[test]
    fn mapped_and_buffered_framing_agree_on_intact_containers(
        records in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..96),
                proptest::collection::vec(any::<u8>(), 0..768),
            ),
            0..10,
        ),
        sentinel in any::<bool>(),
        trailing in proptest::collection::vec(any::<u8>(), 0..6),
    ) {
        // a missing sentinel is a truncation, trailing bytes after one
        // are an error — both must reproduce identically
        assert_framers_agree(&container(&records, sentinel, &trailing));
    }

    /// Every truncation point of a valid container produces the same
    /// error (message, offset, entry index) from both framers.
    #[test]
    fn mapped_and_buffered_framing_agree_at_every_truncation(
        records in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..48),
                proptest::collection::vec(any::<u8>(), 0..256),
            ),
            1..6,
        ),
        cut_seed in any::<u64>(),
    ) {
        let full = container(&records, true, &[]);
        let cut = (cut_seed % full.len() as u64) as usize;
        assert_framers_agree(&full[..cut]);
    }
}

#[test]
fn flow_spans_at_the_cap_frame_identically() {
    let records = vec![(vec![0x41u8; FLOW_CAP as usize], vec![0x42u8; 8])];
    assert_framers_agree(&container(&records, true, &[]));
}

#[test]
fn flow_spans_over_the_cap_error_identically() {
    // the cap fires at the length prefix, before any span is read, so
    // the record data never needs to exist
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&BINARY_MAGIC);
    bytes.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(FLOW_CAP + 1).to_le_bytes());
    assert_framers_agree(&bytes);
}

#[test]
fn graph_spans_at_the_cap_frame_identically() {
    let records = vec![(b"flow".to_vec(), vec![0u8; GRAPH_CAP as usize])];
    assert_framers_agree(&container(&records, true, &[]));
}

#[test]
fn graph_spans_over_the_cap_error_identically() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&BINARY_MAGIC);
    bytes.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    bytes.extend_from_slice(&4u32.to_le_bytes());
    bytes.extend_from_slice(b"flow");
    bytes.extend_from_slice(&(GRAPH_CAP + 1).to_le_bytes());
    assert_framers_agree(&bytes);
}

#[test]
fn a_sentinel_in_place_of_a_graph_length_errors_identically() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&BINARY_MAGIC);
    bytes.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    bytes.extend_from_slice(&4u32.to_le_bytes());
    bytes.extend_from_slice(b"flow");
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_framers_agree(&bytes);
}

#[test]
fn unsupported_versions_error_identically() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&BINARY_MAGIC);
    bytes.extend_from_slice(&7u32.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_framers_agree(&bytes);
}

#[test]
fn non_rsnb_maps_fall_back_to_the_sniffing_framer() {
    // a mapped JSON snapshot rides the normal stream framer: same
    // records, same spans, no binary assumptions
    let json = br#"{"fecs":[{"flow":{"prefix":"10.0.0.0/24","ingress":"A"},"graph":{"vertices":["A"],"edges":[]}}]}"#;
    let path = spool(json);
    let map = MmapSource::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let framer = SnapshotFramer::from_map(map, "t");
    assert!(!framer.is_mapped());
    let records: Vec<_> = framer.map(|r| r.unwrap()).collect();
    assert_eq!(records.len(), 1);
    let buffered: Vec<_> = SnapshotFramer::new(&json[..], "t")
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(records[0].json_bytes(), buffered[0].json_bytes());
}
