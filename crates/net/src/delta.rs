//! Delta-first snapshot exchange: content-derived snapshot-pair epochs
//! and the changed/added/removed record documents that let the paper's
//! §8.1 iteration loop ship only the change over the wire.
//!
//! The identity machinery is deliberately byte-level, not semantic: a
//! record's **mix** folds its flow key with the content hash of its raw
//! graph span ([`record_mix`]), a side's **fold** XORs the mixes
//! order-independently ([`side_fold`]), and a pair's **epoch** hashes
//! the two folds together ([`pair_epoch`]). Two parties that hold
//! byte-identical snapshot pairs therefore compute the same
//! [`SnapshotEpoch`] without any coordination — which is what lets a
//! `rela serve` daemon validate a client's `--delta-base` claim against
//! the pair it retained, and fall back to a full snapshot when the
//! epochs disagree (`docs/SERVE_PROTOCOL.md`).
//!
//! A delta document itself ([`SnapshotDelta`], one per side) is plain
//! JSON — `{"base": "<epoch>", "removed": [...], "records": [...]}` —
//! whose `records` entries are the same `{"flow":F,"graph":G}` spans a
//! [`SnapshotFramer`] yields, so applying a delta splices raw spans and
//! reproduces the full snapshot's bytes exactly
//! (`docs/SNAPSHOT_FORMAT.md`).

use crate::behavior::content_hash128;
use crate::fec::FlowSpec;
use crate::snapshot::{FlowDecoded, RawRecord, SnapshotError, SnapshotFramer};
use serde::{Deserialize, Serialize};
use serde_json::JsonReader;
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::str::FromStr;

/// A content-derived identity for one snapshot pair: the hash of the
/// pre and post side folds (see the module docs). Printed and parsed as
/// 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotEpoch(u128);

impl SnapshotEpoch {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuild from a raw 128-bit value (e.g. off the wire).
    pub fn from_u128(raw: u128) -> SnapshotEpoch {
        SnapshotEpoch(raw)
    }
}

impl fmt::Display for SnapshotEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for SnapshotEpoch {
    type Err = String;

    fn from_str(s: &str) -> Result<SnapshotEpoch, String> {
        if s.len() != 32 {
            return Err(format!(
                "snapshot epoch must be 32 hex digits, got {} characters",
                s.len()
            ));
        }
        u128::from_str_radix(s, 16)
            .map(SnapshotEpoch)
            .map_err(|_| "snapshot epoch must be 32 hex digits".to_owned())
    }
}

/// The identity mix of one record: its flow key and the content hash of
/// its raw graph span. The flow's display form and the hash bytes are
/// separated by a `0xff` byte (which cannot appear in either), so
/// adjacent fields cannot collide.
pub fn record_mix(flow: &FlowSpec, span_hash: u128) -> u128 {
    let flow_text = flow.to_string();
    let mut bytes = Vec::with_capacity(flow_text.len() + 17);
    bytes.extend_from_slice(flow_text.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(&span_hash.to_le_bytes());
    content_hash128(&bytes)
}

/// Order-independent fold of one side's record mixes (XOR — the side's
/// identity must not depend on arrival order, which the pipelined
/// ingest does not preserve). The empty side folds to zero.
pub fn side_fold(mixes: impl IntoIterator<Item = u128>) -> u128 {
    mixes.into_iter().fold(0, |acc, mix| acc ^ mix)
}

/// The epoch of a pair given its two side folds.
pub fn pair_epoch(pre_fold: u128, post_fold: u128) -> SnapshotEpoch {
    let mut bytes = [0u8; 32];
    bytes[..16].copy_from_slice(&pre_fold.to_le_bytes());
    bytes[16..].copy_from_slice(&post_fold.to_le_bytes());
    SnapshotEpoch(content_hash128(&bytes))
}

/// One record of a scanned snapshot side: the flow, its raw graph span
/// (serialized exactly as the writers emit it), and the span's content
/// hash.
pub struct ScannedRecord {
    /// The flow key.
    pub flow: FlowSpec,
    /// The raw graph value span.
    pub graph_span: Vec<u8>,
    /// `content_hash128` of the graph span.
    pub hash: u128,
}

/// One snapshot side scanned into per-record byte identities (the
/// client-side input to [`diff_side`]).
pub struct SideScan {
    /// XOR fold of the side's record mixes.
    pub fold: u128,
    /// Every record, in arrival order.
    pub records: Vec<ScannedRecord>,
}

/// Scan one snapshot side — JSON or binary, the framer sniffs — into
/// per-record byte identities without decoding a single graph.
pub fn scan_side<R: Read>(mut framer: SnapshotFramer<R>) -> Result<SideScan, SnapshotError> {
    let label = framer.label().map(str::to_owned);
    let mut fold = 0u128;
    let mut records = Vec::new();
    for raw in &mut framer {
        let raw = raw?;
        let (flow, graph_span) = match raw.decode_flow(label.as_deref())? {
            FlowDecoded::Split(flow, span) => (flow, span.to_vec()),
            FlowDecoded::Full(flow, graph) => {
                // non-canonical encoding: re-serialize to the canonical
                // span so both parties hash the same bytes
                let json = serde_json::to_string(&graph.to_value()).map_err(|e| {
                    SnapshotError::at(e.to_string(), raw.offset).with_entry(raw.index)
                })?;
                (flow, json.into_bytes())
            }
        };
        let hash = content_hash128(&graph_span);
        fold ^= record_mix(&flow, hash);
        records.push(ScannedRecord {
            flow,
            graph_span,
            hash,
        });
    }
    Ok(SideScan { fold, records })
}

/// The change set of one side: what `new` removed from, changed in, or
/// added to `base`.
pub struct SideDiff {
    /// Flows present in `base` but absent from `new`, in flow order.
    pub removed: Vec<FlowSpec>,
    /// Changed or added records as `(flow span, graph span)` byte
    /// pairs, in `new`'s arrival order.
    pub records: Vec<(Vec<u8>, Vec<u8>)>,
}

/// Diff one scanned side against a base scan, by graph-span content
/// hash: a record counts as unchanged only when its flow's span bytes
/// are identical on both sides.
pub fn diff_side(base: &SideScan, new: &SideScan) -> SideDiff {
    let mut base_hash: HashMap<&FlowSpec, u128> = base
        .records
        .iter()
        .map(|record| (&record.flow, record.hash))
        .collect();
    let mut records = Vec::new();
    for record in &new.records {
        match base_hash.remove(&record.flow) {
            Some(hash) if hash == record.hash => {}
            _ => {
                let flow_span = serde_json::to_string(&record.flow.to_value())
                    .expect("flow keys serialize")
                    .into_bytes();
                records.push((flow_span, record.graph_span.clone()));
            }
        }
    }
    let mut removed: Vec<FlowSpec> = base_hash.into_keys().cloned().collect();
    removed.sort();
    SideDiff { removed, records }
}

/// Write one side's delta document (`docs/SNAPSHOT_FORMAT.md`): the
/// base pair epoch, the removed flows, and the changed/added records as
/// raw span splices.
pub fn write_delta<W: Write>(
    mut out: W,
    base: SnapshotEpoch,
    removed: &[FlowSpec],
    records: &[(Vec<u8>, Vec<u8>)],
) -> std::io::Result<()> {
    let invalid =
        |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
    write!(out, "{{\"base\":\"{base}\",\"removed\":[")?;
    for (ix, flow) in removed.iter().enumerate() {
        if ix > 0 {
            out.write_all(b",")?;
        }
        let json = serde_json::to_string(&flow.to_value()).map_err(invalid)?;
        out.write_all(json.as_bytes())?;
    }
    out.write_all(b"],\"records\":[")?;
    for (ix, (flow, graph)) in records.iter().enumerate() {
        if ix > 0 {
            out.write_all(b",")?;
        }
        out.write_all(b"{\"flow\":")?;
        out.write_all(flow)?;
        out.write_all(b",\"graph\":")?;
        out.write_all(graph)?;
        out.write_all(b"}")?;
    }
    out.write_all(b"]}")?;
    out.flush()
}

/// One side's parsed delta document.
#[derive(Debug)]
pub struct SnapshotDelta {
    /// Epoch of the base pair the delta applies to.
    pub base: SnapshotEpoch,
    /// Flows removed from this side.
    pub removed: Vec<FlowSpec>,
    /// Changed or added records, as the undecoded spans a
    /// [`SnapshotFramer`] would yield (`index` counts within the
    /// `records` array; `offset` addresses the delta document).
    pub records: Vec<RawRecord>,
}

impl SnapshotDelta {
    /// Stream-parse a delta document: `{"base": ..., "removed": [...],
    /// "records": [...]}`, fields in exactly that order. Every error
    /// carries the document byte offset and the label; record-level
    /// errors carry the index within `records`.
    pub fn from_reader(source: impl Read, label: &str) -> Result<SnapshotDelta, SnapshotError> {
        read_delta(source).map_err(|e| e.with_source_label(label))
    }
}

fn expect_key<R: Read>(json: &mut JsonReader<R>, want: &str) -> Result<(), SnapshotError> {
    match json.next_key().map_err(SnapshotError::from_json)? {
        Some(key) if key == want => Ok(()),
        Some(key) => Err(SnapshotError::at(
            format!("expected the `{want}` field, found `{key}`"),
            json.byte_offset(),
        )),
        None => Err(SnapshotError::at(
            format!("missing field `{want}`"),
            json.byte_offset(),
        )),
    }
}

fn read_delta(source: impl Read) -> Result<SnapshotDelta, SnapshotError> {
    let mut json = JsonReader::new(source);
    json.begin_object().map_err(SnapshotError::from_json)?;

    expect_key(&mut json, "base")?;
    let base_value = json.read_value().map_err(SnapshotError::from_json)?;
    let base: SnapshotEpoch = base_value
        .as_str()
        .ok_or_else(|| SnapshotError::at("expected a hex string in `base`", json.byte_offset()))?
        .parse()
        .map_err(|e: String| SnapshotError::at(e, json.byte_offset()))?;

    expect_key(&mut json, "removed")?;
    json.begin_array().map_err(SnapshotError::from_json)?;
    let mut removed = Vec::new();
    while json.next_element().map_err(SnapshotError::from_json)? {
        let value = json.read_value().map_err(SnapshotError::from_json)?;
        let flow = FlowSpec::from_value(&value)
            .map_err(|e| SnapshotError::at(format!("removed flow: {e}"), json.byte_offset()))?;
        removed.push(flow);
    }

    expect_key(&mut json, "records")?;
    json.begin_array().map_err(SnapshotError::from_json)?;
    let mut records = Vec::new();
    let mut index = 0usize;
    loop {
        let more = json
            .next_element()
            .map_err(|e| SnapshotError::from_json(e).with_entry(index))?;
        if !more {
            break;
        }
        let offset = json.byte_offset();
        let mut bytes = Vec::new();
        json.read_raw_value(&mut bytes)
            .map_err(|e| SnapshotError::from_json(e).with_entry(index))?;
        records.push(RawRecord::from_json_span(bytes, offset, index));
        index += 1;
    }

    if let Some(key) = json.next_key().map_err(SnapshotError::from_json)? {
        return Err(SnapshotError::at(
            format!("unexpected field `{key}` after `records`"),
            json.byte_offset(),
        ));
    }
    json.end().map_err(SnapshotError::from_json)?;
    Ok(SnapshotDelta {
        base,
        removed,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::linear_graph;
    use crate::snapshot::{Snapshot, SnapshotWriter};

    fn flow(dst: &str, ingress: &str) -> FlowSpec {
        FlowSpec::new(dst.parse().unwrap(), ingress)
    }

    fn scan(snap: &Snapshot) -> SideScan {
        let json = snap.to_json().unwrap();
        scan_side(SnapshotFramer::new(json.as_bytes(), "side.json")).unwrap()
    }

    #[test]
    fn epoch_round_trips_hex() {
        let epoch = pair_epoch(7, 9);
        let text = epoch.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text.parse::<SnapshotEpoch>().unwrap(), epoch);
        assert!("xyz".parse::<SnapshotEpoch>().is_err());
    }

    #[test]
    fn side_fold_is_order_independent() {
        let a = record_mix(&flow("10.0.0.0/24", "x1"), 1);
        let b = record_mix(&flow("10.0.1.0/24", "x1"), 2);
        assert_eq!(side_fold([a, b]), side_fold([b, a]));
        assert_ne!(side_fold([a, b]), side_fold([a]));
        assert_eq!(side_fold([]), 0);
    }

    #[test]
    fn diff_then_apply_reproduces_the_new_side() {
        let mut base = Snapshot::new();
        base.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1"]));
        base.insert(flow("10.0.1.0/24", "x1"), linear_graph(&["x1", "B1"]));
        base.insert(flow("10.0.2.0/24", "x2"), linear_graph(&["x2", "C1"]));
        let mut new = Snapshot::new();
        // 10.0.0.0/24 unchanged, 10.0.1.0/24 changed, 10.0.2.0/24
        // removed, 10.0.3.0/24 added
        new.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1"]));
        new.insert(flow("10.0.1.0/24", "x1"), linear_graph(&["x1", "B2"]));
        new.insert(flow("10.0.3.0/24", "x2"), linear_graph(&["x2", "D1"]));

        let base_scan = scan(&base);
        let new_scan = scan(&new);
        let diff = diff_side(&base_scan, &new_scan);
        assert_eq!(diff.removed, vec![flow("10.0.2.0/24", "x2")]);
        assert_eq!(diff.records.len(), 2);

        // write the delta, parse it back, and splice it over the base
        let epoch = pair_epoch(base_scan.fold, 0);
        let mut doc = Vec::new();
        write_delta(&mut doc, epoch, &diff.removed, &diff.records).unwrap();
        let delta = SnapshotDelta::from_reader(&doc[..], "delta.json").unwrap();
        assert_eq!(delta.base, epoch);
        assert_eq!(delta.removed, diff.removed);
        assert_eq!(delta.records.len(), 2);

        let mut spliced: Vec<(FlowSpec, Vec<u8>)> = Vec::new();
        let changed: std::collections::HashSet<FlowSpec> = delta
            .records
            .iter()
            .map(|r| match r.decode_flow(None).unwrap() {
                FlowDecoded::Split(flow, _) => flow,
                FlowDecoded::Full(flow, _) => flow,
            })
            .chain(delta.removed.iter().cloned())
            .collect();
        for record in &base_scan.records {
            if !changed.contains(&record.flow) {
                spliced.push((record.flow.clone(), record.graph_span.clone()));
            }
        }
        for raw in &delta.records {
            let FlowDecoded::Split(flow, span) = raw.decode_flow(None).unwrap() else {
                panic!("delta records are canonical")
            };
            spliced.push((flow, span.to_vec()));
        }
        spliced.sort_by(|a, b| a.flow_cmp(b));

        // the spliced side must be byte-identical to the new snapshot
        let mut writer = SnapshotWriter::new(Vec::new()).unwrap();
        let expected = new.to_json().unwrap();
        for (flow, span) in &spliced {
            let graph = crate::snapshot::decode_graph_span(span).unwrap();
            writer.write(flow, &graph).unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), expected);

        // and the folds must agree: base fold patched by the diff
        // equals the new side's fold
        assert_ne!(base_scan.fold, new_scan.fold);
        let respliced = side_fold(
            spliced
                .iter()
                .map(|(flow, span)| record_mix(flow, content_hash128(span))),
        );
        assert_eq!(respliced, new_scan.fold);
    }

    #[test]
    fn delta_errors_carry_offsets_and_labels() {
        let err = SnapshotDelta::from_reader(&b"{}"[..], "d.json").unwrap_err();
        assert!(err.to_string().contains("missing field `base`"), "{err}");
        assert_eq!(err.label(), Some("d.json"));

        let bad = br#"{"base":"00000000000000000000000000000000","removed":[],"records":[{"flow""#;
        let err = SnapshotDelta::from_reader(&bad[..], "d.json").unwrap_err();
        assert_eq!(err.entry_index(), Some(0), "{err}");
        assert!(err.byte_offset().is_some(), "{err}");

        let bad = br#"{"base":"zz","removed":[],"records":[]}"#;
        let err = SnapshotDelta::from_reader(&bad[..], "d.json").unwrap_err();
        assert!(err.to_string().contains("32 hex digits"), "{err}");
    }

    trait FlowCmp {
        fn flow_cmp(&self, other: &Self) -> std::cmp::Ordering;
    }

    impl FlowCmp for (FlowSpec, Vec<u8>) {
        fn flow_cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.cmp(&other.0)
        }
    }
}
