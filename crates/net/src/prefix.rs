//! IPv4 prefixes and a longest-prefix-match trie.
//!
//! Flow equivalence classes are keyed by destination prefix (paper §7:
//! "each equivalence class specifies the set of IP addresses for the
//! traffic"), and the control-plane simulator routes by longest prefix
//! match. Implemented from scratch to keep the dependency set small.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix in CIDR form, stored with host bits cleared.
///
/// Serializes as its CIDR string (`"10.0.0.0/8"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Serialize for Ipv4Prefix {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Prefix {
    fn from_value(value: &Value) -> Result<Ipv4Prefix, serde::Error> {
        let text = value
            .as_str()
            .ok_or_else(|| serde::Error::mismatch("a CIDR string", value))?;
        text.parse().map_err(serde::Error::custom)
    }
}

impl Ipv4Prefix {
    /// Build a prefix, masking out host bits. `len` is clamped to 32.
    pub fn new(addr: u32, len: u8) -> Ipv4Prefix {
        let len = len.min(32);
        Ipv4Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The default route `0.0.0.0/0`.
    pub fn default_route() -> Ipv4Prefix {
        Ipv4Prefix { addr: 0, len: 0 }
    }

    /// Construct from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Network address (host bits cleared).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain the address?
    pub fn contains_addr(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.addr
    }

    /// Does this prefix contain the other prefix entirely?
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains_addr(other.addr)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The `i`-th /`len` sub-prefix inside this prefix (for synthesizing
    /// address plans). Returns `None` when out of range or `len` shorter
    /// than this prefix.
    pub fn subnet(&self, len: u8, i: u32) -> Option<Ipv4Prefix> {
        if len < self.len || len > 32 {
            return None;
        }
        let extra = (len - self.len) as u32;
        if extra < 32 && u64::from(i) >= (1u64 << extra) {
            return None;
        }
        let offset = if len == 32 { i } else { i << (32 - len as u32) };
        Some(Ipv4Prefix::new(self.addr | offset, len))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.addr.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}/{}", self.len)
    }
}

/// Parse error for [`Ipv4Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || PrefixParseError(s.to_owned());
        let (quad, len) = match s.split_once('/') {
            Some((q, l)) => (q, l.parse::<u8>().map_err(|_| err())?),
            None => (s, 32),
        };
        if len > 32 {
            return Err(err());
        }
        let mut octets = [0u8; 4];
        let mut parts = quad.split('.');
        for o in octets.iter_mut() {
            *o = parts
                .next()
                .ok_or_else(err)?
                .parse::<u8>()
                .map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Ipv4Prefix::from_octets(
            octets[0], octets[1], octets[2], octets[3], len,
        ))
    }
}

impl TryFrom<String> for Ipv4Prefix {
    type Error = PrefixParseError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl From<Ipv4Prefix> for String {
    fn from(p: Ipv4Prefix) -> String {
        p.to_string()
    }
}

/// A binary trie keyed by prefix, supporting exact and longest-match
/// lookups.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<(Ipv4Prefix, V)>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }
}

fn bit(addr: u32, depth: u8) -> usize {
    ((addr >> (31 - depth as u32)) & 1) as usize
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the value for a prefix. Returns the previous
    /// value, if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let b = bit(prefix.addr(), depth);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, v)| v)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let b = bit(prefix.addr(), depth);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref().map(|(_, v)| v)
    }

    /// Longest-prefix match for an address.
    pub fn longest_match(&self, addr: u32) -> Option<(Ipv4Prefix, &V)> {
        let mut node = &self.root;
        let mut best: Option<(Ipv4Prefix, &V)> = None;
        for depth in 0..=32u8 {
            if let Some((p, v)) = &node.value {
                best = Some((*p, v));
            }
            if depth == 32 {
                break;
            }
            match node.children[bit(addr, depth)].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// Iterate over all stored `(prefix, value)` pairs (preorder).
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Prefix, &V)> {
        let mut out = Vec::new();
        fn walk<'a, V>(node: &'a Node<V>, out: &mut Vec<(&'a Ipv4Prefix, &'a V)>) {
            if let Some((p, v)) = &node.value {
                out.push((p, v));
            }
            for child in node.children.iter().flatten() {
                walk(child, out);
            }
        }
        walk(&self.root, &mut out);
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "10.0.0.0/24",
            "0.0.0.0/0",
            "192.168.1.1/32",
            "172.16.0.0/12",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_masks_host_bits() {
        assert_eq!(p("10.0.0.7/24"), p("10.0.0.0/24"));
        assert_eq!(p("10.0.0.7/24").to_string(), "10.0.0.0/24");
    }

    #[test]
    fn parse_without_len_is_host_route() {
        assert_eq!(p("1.2.3.4"), p("1.2.3.4/32"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "10.0.0/24",
            "10.0.0.0/33",
            "10.0.0.256/8",
            "a.b.c.d/8",
            "10.0.0.0.0/8",
        ] {
            assert!(s.parse::<Ipv4Prefix>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").contains(&p("10.1.0.0/16")));
        assert!(!p("10.1.0.0/16").contains(&p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").contains(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").contains(&p("11.0.0.0/8")));
        assert!(p("0.0.0.0/0").contains(&p("255.0.0.0/8")));
    }

    #[test]
    fn overlap() {
        assert!(p("10.0.0.0/8").overlaps(&p("10.1.0.0/16")));
        assert!(p("10.1.0.0/16").overlaps(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/16").overlaps(&p("10.1.0.0/16")));
    }

    #[test]
    fn contains_addr() {
        let pre = p("10.0.1.0/24");
        assert!(pre.contains_addr(u32::from_be_bytes([10, 0, 1, 200])));
        assert!(!pre.contains_addr(u32::from_be_bytes([10, 0, 2, 1])));
    }

    #[test]
    fn subnets() {
        let base = p("10.0.0.0/16");
        assert_eq!(base.subnet(24, 0), Some(p("10.0.0.0/24")));
        assert_eq!(base.subnet(24, 3), Some(p("10.0.3.0/24")));
        assert_eq!(base.subnet(24, 255), Some(p("10.0.255.0/24")));
        assert_eq!(base.subnet(24, 256), None);
        assert_eq!(base.subnet(8, 0), None);
    }

    #[test]
    fn trie_exact_and_longest() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "ten");
        t.insert(p("10.1.0.0/16"), "ten-one");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&"ten"));
        assert_eq!(t.get(&p("10.2.0.0/16")), None);

        let lm = |addr: &str| {
            let a: Ipv4Prefix = format!("{addr}/32").parse().unwrap();
            t.longest_match(a.addr()).map(|(p, v)| (p.to_string(), *v))
        };
        assert_eq!(lm("10.1.2.3"), Some(("10.1.0.0/16".into(), "ten-one")));
        assert_eq!(lm("10.2.2.3"), Some(("10.0.0.0/8".into(), "ten")));
        assert_eq!(lm("192.168.0.1"), Some(("0.0.0.0/0".into(), "default")));
    }

    #[test]
    fn trie_longest_match_without_default() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(u32::from_be_bytes([11, 0, 0, 1])).is_none());
    }

    #[test]
    fn trie_insert_replaces() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn trie_iter_visits_all() {
        let mut t = PrefixTrie::new();
        for (i, s) in ["10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12"]
            .iter()
            .enumerate()
        {
            t.insert(p(s), i);
        }
        let mut seen: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        seen.sort();
        assert_eq!(seen, vec!["10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12"]);
    }

    #[test]
    fn serde_as_string() {
        let pre = p("10.0.0.0/24");
        let json = serde_json::to_string(&pre).unwrap();
        assert_eq!(json, "\"10.0.0.0/24\"");
        let back: Ipv4Prefix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pre);
    }
}
