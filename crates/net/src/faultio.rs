//! Seed-deterministic fault injection for I/O and lifecycle points.
//!
//! Resilience tests need to drive the *real* code paths — the framers,
//! the spool writers, the verdict-store persist — under the failures
//! operators actually see: short reads, `EINTR`, `ENOSPC`, torn
//! renames, injected latency, and crashes mid-persist. A [`FaultPlan`]
//! describes those failures as a compact spec string, derives every
//! probabilistic decision from one seed (so a failing run replays
//! byte-identically), and is consulted by thin wrappers
//! ([`FaultyRead`], [`FaultyWrite`]) and named lifecycle points
//! ([`at`]) threaded through the production code. With no plan
//! installed every hook is a no-op.
//!
//! # Spec grammar
//!
//! Comma-separated `key=value` entries:
//!
//! | key | value | effect |
//! |-----|-------|--------|
//! | `seed` | integer | RNG seed (default 1) |
//! | `short-read` | probability 0..1 | a read is truncated to a random prefix |
//! | `eintr` | probability 0..1 | a read/write fails with `ErrorKind::Interrupted` |
//! | `latency-ms` | integer | every read sleeps this long first |
//! | `enospc-after` | bytes | writes fail with an injected `ENOSPC` once this many bytes were accepted |
//! | `pause` | `point:ms[@n]` | sleep `ms` at lifecycle `point`, from its `n`-th occurrence on (default 1) |
//! | `panic` | `point[@n]` | panic at `point` on exactly its `n`-th occurrence (default 1) |
//! | `tear` | `point[@n]` | report "tear" at `point` on exactly its `n`-th occurrence |
//!
//! Example — let the first persist through, then stall the second one
//! mid-window (the kill-9 harness kills the process there):
//!
//! ```text
//! seed=7,pause=persist:400@2
//! ```
//!
//! Plans install process-globally ([`install`] / [`install_from_env`] /
//! [`clear`]) so a daemon spawned with `RELA_FAULTS` in its
//! environment injects faults without any test-only plumbing through
//! its constructors.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Environment variable consulted by [`install_from_env`].
pub const ENV_VAR: &str = "RELA_FAULTS";

/// splitmix64: tiny, seed-deterministic, and good enough for fault
/// scheduling (no statistical claims needed).
#[derive(Debug, Clone, Copy)]
struct FaultRng(u64);

impl FaultRng {
    fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One biased coin flip with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// Uniform draw in `1..=max` (`max >= 1`).
    fn len_in(&mut self, max: usize) -> usize {
        1 + (self.next_u64() as usize) % max
    }
}

/// What to do at one named lifecycle point.
#[derive(Debug, Clone, Default)]
struct PointRule {
    /// Sleep this long from occurrence `.1` (1-based) onward.
    pause: Option<(Duration, u64)>,
    /// Panic on exactly this occurrence (1-based).
    panic_on: Option<u64>,
    /// Report a torn write on exactly this occurrence (1-based).
    tear_on: Option<u64>,
}

/// The immutable fault schedule parsed from a spec string.
#[derive(Debug, Clone, Default)]
struct Spec {
    seed: u64,
    short_read: f64,
    eintr: f64,
    latency: Option<Duration>,
    enospc_after: Option<u64>,
    points: HashMap<String, PointRule>,
}

/// Mutable per-plan state: the RNG stream, the write budget, and the
/// per-point occurrence counters.
#[derive(Debug)]
struct State {
    rng: FaultRng,
    written: u64,
    seen: HashMap<String, u64>,
}

/// A seed-deterministic fault schedule. Cloning is cheap (an [`Arc`]
/// handle); clones share one RNG stream and one set of occurrence
/// counters, so a plan installed globally and consulted from many
/// threads stays internally consistent.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    shared: Arc<Shared>,
}

#[derive(Debug)]
struct Shared {
    spec: Spec,
    state: Mutex<State>,
}

/// A malformed fault spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    // a panic injected *by* this module must not poison its own
    // bookkeeping for the jobs that follow
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultPlan {
    /// Parse a plan from the spec grammar described at module level.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut parsed = Spec {
            seed: 1,
            ..Spec::default()
        };
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("`{entry}` is not key=value")))?;
            let bad = |what: &str| FaultSpecError(format!("`{value}` is not a valid {what}"));
            match key {
                "seed" => parsed.seed = value.parse().map_err(|_| bad("seed"))?,
                "short-read" => parsed.short_read = parse_probability(value)?,
                "eintr" => parsed.eintr = parse_probability(value)?,
                "latency-ms" => {
                    parsed.latency = Some(Duration::from_millis(
                        value.parse().map_err(|_| bad("latency"))?,
                    ));
                }
                "enospc-after" => {
                    parsed.enospc_after = Some(value.parse().map_err(|_| bad("byte budget"))?);
                }
                "pause" => {
                    let (point, rest) = value
                        .split_once(':')
                        .ok_or_else(|| bad("pause (want point:ms[@n])"))?;
                    let (ms, occ) = split_occurrence(rest)?;
                    let ms: u64 = ms.parse().map_err(|_| bad("pause (want point:ms[@n])"))?;
                    parsed.points.entry(point.to_owned()).or_default().pause =
                        Some((Duration::from_millis(ms), occ));
                }
                "panic" => {
                    let (point, occ) = split_occurrence(value)?;
                    parsed.points.entry(point.to_owned()).or_default().panic_on = Some(occ);
                }
                "tear" => {
                    let (point, occ) = split_occurrence(value)?;
                    parsed.points.entry(point.to_owned()).or_default().tear_on = Some(occ);
                }
                other => return Err(FaultSpecError(format!("unknown key `{other}`"))),
            }
        }
        Ok(FaultPlan {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    rng: FaultRng::new(parsed.seed),
                    written: 0,
                    seen: HashMap::new(),
                }),
                spec: parsed,
            }),
        })
    }

    /// True when the plan injects read-path faults, i.e. wrapping a
    /// reader in [`FaultyRead`] would change anything.
    pub fn faults_reads(&self) -> bool {
        let s = &self.shared.spec;
        s.short_read > 0.0 || s.eintr > 0.0 || s.latency.is_some()
    }

    /// Consult the plan at a named lifecycle point. Increments the
    /// point's occurrence counter and returns the action scheduled for
    /// this occurrence (usually [`FaultAction::NONE`]).
    pub fn at(&self, point: &str) -> FaultAction {
        let Some(rule) = self.shared.spec.points.get(point) else {
            return FaultAction::NONE;
        };
        let occurrence = {
            let mut state = lock_state(&self.shared);
            let n = state.seen.entry(point.to_owned()).or_insert(0);
            *n += 1;
            *n
        };
        FaultAction {
            pause: rule
                .pause
                .and_then(|(d, from)| (occurrence >= from).then_some(d)),
            panic_message: (rule.panic_on == Some(occurrence))
                .then(|| format!("injected fault: panic at `{point}` (occurrence {occurrence})")),
            tear: rule.tear_on == Some(occurrence),
        }
    }

    /// Draw the fate of one read of up to `len` bytes.
    fn read_fate(&self, len: usize) -> ReadFate {
        let spec = &self.shared.spec;
        let mut state = lock_state(&self.shared);
        ReadFate {
            latency: spec.latency,
            eintr: state.rng.chance(spec.eintr),
            take: if len > 1 && state.rng.chance(spec.short_read) {
                Some(state.rng.len_in(len))
            } else {
                None
            },
        }
    }

    /// Draw the fate of one write; `accept_written` charges accepted
    /// bytes against the `enospc-after` budget.
    fn write_fate(&self) -> WriteFate {
        let spec = &self.shared.spec;
        let mut state = lock_state(&self.shared);
        WriteFate {
            // remaining budget: a disk running out of space takes a
            // *partial* write first, then fails the next one
            allow: spec
                .enospc_after
                .map(|limit| limit.saturating_sub(state.written)),
            eintr: state.rng.chance(spec.eintr),
        }
    }

    fn accept_written(&self, n: usize) {
        if self.shared.spec.enospc_after.is_some() {
            lock_state(&self.shared).written += n as u64;
        }
    }
}

fn parse_probability(value: &str) -> Result<f64, FaultSpecError> {
    let p: f64 = value
        .parse()
        .map_err(|_| FaultSpecError(format!("`{value}` is not a probability")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultSpecError(format!(
            "probability `{value}` not in 0..=1"
        )));
    }
    Ok(p)
}

/// Split a `name[@n]` suffix; `n` defaults to 1 and must be >= 1.
fn split_occurrence(value: &str) -> Result<(&str, u64), FaultSpecError> {
    match value.rsplit_once('@') {
        None => Ok((value, 1)),
        Some((name, n)) => {
            let n: u64 = n
                .parse()
                .map_err(|_| FaultSpecError(format!("`{value}` has a bad @occurrence")))?;
            if n == 0 {
                return Err(FaultSpecError("occurrences are 1-based".to_owned()));
            }
            Ok((name, n))
        }
    }
}

struct ReadFate {
    latency: Option<Duration>,
    eintr: bool,
    take: Option<usize>,
}

struct WriteFate {
    /// `Some(n)`: at most `n` more bytes fit (0 = the device is full).
    allow: Option<u64>,
    eintr: bool,
}

/// The action a [`FaultPlan`] scheduled for one occurrence of a
/// lifecycle point.
#[derive(Debug, Clone)]
pub struct FaultAction {
    pause: Option<Duration>,
    panic_message: Option<String>,
    tear: bool,
}

impl FaultAction {
    /// The no-op action (what [`at`] returns with no plan installed).
    pub const NONE: FaultAction = FaultAction {
        pause: None,
        panic_message: None,
        tear: false,
    };

    /// Apply the pause and panic parts of the action: sleep if a pause
    /// is scheduled, then panic if a panic is scheduled. Call this at
    /// the point itself; query [`FaultAction::tear`] separately for
    /// write-tearing decisions.
    pub fn fire(&self) {
        if let Some(d) = self.pause {
            std::thread::sleep(d);
        }
        if let Some(message) = &self.panic_message {
            panic!("{message}");
        }
    }

    /// True when this occurrence should tear (truncate) its write.
    pub fn tear(&self) -> bool {
        self.tear
    }
}

/// The process-global plan. A `Mutex<Option<..>>` rather than a
/// `OnceLock` so tests can install, clear, and re-install.
static GLOBAL: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Install `plan` as the process-global fault plan.
pub fn install(plan: FaultPlan) {
    *GLOBAL.lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
}

/// Remove the process-global fault plan; every hook becomes a no-op.
pub fn clear() {
    *GLOBAL.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// The currently installed plan, if any.
pub fn active() -> Option<FaultPlan> {
    GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Parse [`ENV_VAR`] and install the resulting plan. Returns the plan
/// when one was installed, `Ok(None)` when the variable is unset or
/// empty, and the parse error otherwise (callers decide whether a bad
/// spec is fatal — the daemon treats it as a startup error rather than
/// silently running un-faulted).
pub fn install_from_env() -> Result<Option<FaultPlan>, FaultSpecError> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec)?;
            install(plan.clone());
            Ok(Some(plan))
        }
        _ => Ok(None),
    }
}

/// Consult the global plan at a named lifecycle point (no-op action
/// when no plan is installed).
pub fn at(point: &str) -> FaultAction {
    match active() {
        Some(plan) => plan.at(point),
        None => FaultAction::NONE,
    }
}

/// Wrap a boxed reader in the global plan's read faults, if a plan
/// with read faults is installed; otherwise return it unchanged.
pub fn wrap_read(reader: Box<dyn Read + Send>) -> Box<dyn Read + Send> {
    match active() {
        Some(plan) if plan.faults_reads() => Box::new(FaultyRead::new(reader, plan)),
        _ => reader,
    }
}

/// A [`Read`] adapter that injects the plan's read faults — latency,
/// `EINTR`, short reads — in front of the wrapped reader. Injected
/// errors never consume input, so a retrying caller eventually reads
/// exactly the bytes the inner reader holds.
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    plan: FaultPlan,
}

impl<R: Read> FaultyRead<R> {
    /// Wrap `inner` with the faults scheduled by `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultyRead { inner, plan }
    }

    /// Unwrap back to the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let fate = self.plan.read_fate(buf.len());
        if let Some(d) = fate.latency {
            std::thread::sleep(d);
        }
        if fate.eintr {
            return Err(io::Error::from(io::ErrorKind::Interrupted));
        }
        let take = fate.take.map_or(buf.len(), |n| n.min(buf.len()));
        self.inner.read(&mut buf[..take])
    }
}

/// A [`Write`] adapter that injects the plan's write faults — `EINTR`
/// and an injected `ENOSPC` once the byte budget is spent. Only bytes
/// the inner writer accepted count against the budget.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
}

impl<W: Write> FaultyWrite<W> {
    /// Wrap `inner` with the faults scheduled by `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FaultyWrite { inner, plan }
    }

    /// Unwrap back to the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let fate = self.plan.write_fate();
        if fate.allow == Some(0) {
            return Err(io::Error::other("No space left on device (injected)"));
        }
        if fate.eintr {
            return Err(io::Error::from(io::ErrorKind::Interrupted));
        }
        let take = match fate.allow {
            Some(allow) => buf.len().min(allow as usize),
            None => buf.len(),
        };
        let n = self.inner.write(&buf[..take])?;
        self.plan.accept_written(n);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_with_retries(mut r: impl Read) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 7];
        loop {
            match r.read(&mut buf) {
                Ok(0) => return out,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
    }

    #[test]
    fn faulty_reads_preserve_the_byte_stream() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let plan = FaultPlan::parse("seed=7,short-read=0.5,eintr=0.3").unwrap();
        let got = drain_with_retries(FaultyRead::new(&data[..], plan));
        assert_eq!(got, data);
    }

    #[test]
    fn the_same_seed_replays_the_same_fault_schedule() {
        let observe = |seed: u64| -> Vec<usize> {
            let data = vec![0u8; 1024];
            let plan = FaultPlan::parse(&format!("seed={seed},short-read=0.5,eintr=0.2")).unwrap();
            let mut r = FaultyRead::new(&data[..], plan);
            let mut buf = [0u8; 64];
            let mut sizes = Vec::new();
            loop {
                match r.read(&mut buf) {
                    Ok(0) => return sizes,
                    Ok(n) => sizes.push(n),
                    Err(_) => sizes.push(usize::MAX), // mark the EINTRs too
                }
            }
        };
        assert_eq!(observe(9), observe(9));
        assert_ne!(observe(9), observe(10));
    }

    #[test]
    fn enospc_fires_once_the_budget_is_spent() {
        let plan = FaultPlan::parse("enospc-after=10").unwrap();
        let mut sink = Vec::new();
        let mut w = FaultyWrite::new(&mut sink, plan);
        w.write_all(&[1u8; 10]).unwrap();
        let err = w.write_all(&[2u8; 1]).unwrap_err();
        assert!(err.to_string().contains("No space left"), "{err}");
        assert_eq!(sink.len(), 10);
    }

    #[test]
    fn point_rules_fire_on_their_scheduled_occurrence() {
        let plan = FaultPlan::parse("tear=persist@2,panic=decide@2").unwrap();
        assert!(!plan.at("persist").tear());
        assert!(plan.at("persist").tear());
        assert!(!plan.at("persist").tear());
        assert!(plan.at("other").panic_message.is_none());
        plan.at("decide").fire(); // occurrence 1: no-op
        let second = plan.at("decide");
        assert!(second.panic_message.is_some());
        let result = std::panic::catch_unwind(|| second.fire());
        assert!(result.is_err());
        plan.at("decide").fire(); // occurrence 3: no-op again
    }

    #[test]
    fn pause_rules_apply_from_their_occurrence_onward() {
        let plan = FaultPlan::parse("pause=persist:0@2").unwrap();
        assert!(plan.at("persist").pause.is_none());
        assert!(plan.at("persist").pause.is_some());
        assert!(plan.at("persist").pause.is_some());
    }

    #[test]
    fn bad_specs_are_rejected_with_a_reason() {
        for bad in [
            "nonsense",
            "seed=abc",
            "short-read=1.5",
            "pause=persist",
            "panic=decide@0",
            "unknown-key=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn an_empty_spec_is_a_valid_no_op_plan() {
        let plan = FaultPlan::parse("seed=3").unwrap();
        assert!(!plan.faults_reads());
        let data = b"hello".to_vec();
        let got = drain_with_retries(FaultyRead::new(&data[..], plan));
        assert_eq!(got, data);
    }
}
