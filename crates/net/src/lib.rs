//! # rela-net
//!
//! Network modelling substrate for relational network verification:
//! the location hierarchy and database with `where` queries (paper §4),
//! per-FEC forwarding DAGs and their FSA encodings (paper §6.1),
//! granularity views (interface / device / group), IPv4 prefixes with
//! longest-prefix matching, flow equivalence classes, and snapshot
//! (de)serialization.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the mmap module opts back in with a
// scoped `#![allow(unsafe_code)]` for its pointer/length mapping — the
// only unsafe in the crate.
#![deny(unsafe_code)]

mod behavior;
mod chunk;
mod db;
mod delta;
pub mod faultio;
mod fec;
mod fsa;
mod granularity;
mod graph;
mod location;
mod mmap;
mod prefix;
mod snapshot;

pub use behavior::{behavior_hash, canonical_graph, content_hash128, BehaviorHash, ParseHashError};
pub use chunk::{chunk_pipe, ChunkReader, ChunkSender};
pub use db::{AttrPred, LocationDb};
pub use delta::{
    diff_side, pair_epoch, record_mix, scan_side, side_fold, write_delta, ScannedRecord, SideDiff,
    SideScan, SnapshotDelta, SnapshotEpoch,
};
pub use fec::FlowSpec;
pub use fsa::{graph_to_fsa, graph_to_fsa_prepared};
pub use granularity::{device_path_to_group, interface_path_to_device};
pub use graph::{linear_graph, Edge, ForwardingGraph, GraphError, VertexId};
pub use location::{glob_match, interface_device, Device, Granularity, DROP_LOCATION};
pub use mmap::{MmapReader, MmapSource};
pub use prefix::{Ipv4Prefix, PrefixParseError, PrefixTrie};
pub use snapshot::{
    decode_graph_span, snapshot_source, AlignStream, AlignedFec, BinarySnapshotWriter, FlowDecoded,
    RawRecord, RecordBody, Snapshot, SnapshotError, SnapshotFramer, SnapshotPair, SnapshotReader,
    SnapshotWriter, SpanBytes, BINARY_MAGIC, BINARY_VERSION,
};
