//! Network snapshots: the per-FEC forwarding state of one network
//! version, and the aligned pre/post pair that Rela checks.
//!
//! The paper's workflow (§2.3, §7) simulates the pre- and post-change
//! networks, computes forwarding paths for the flows observed in the last
//! hour, aggregates them into FECs, and hands Rela one forwarding graph
//! per FEC per snapshot. [`SnapshotPair::align`] joins the two snapshots
//! on the flow key; a flow absent from one side gets an empty graph
//! (the network does not carry it).
//!
//! # Streaming ingestion
//!
//! At the ROADMAP's 10⁶-FEC target, materializing a snapshot's full JSON
//! text plus its decoded map before alignment even starts dominates cold
//! runs and doubles peak memory. The streaming path avoids both:
//! [`SnapshotReader`] pulls `(flow, graph)` records one at a time from
//! any [`Read`] source (holding at most one decoded record),
//! [`SnapshotWriter`] emits the same wire format record-by-record, and
//! [`SnapshotPair::align_streaming`] hash-joins a pre and a post record
//! stream on the flow key — emitting each aligned FEC the moment both
//! sides are known and spilling only yet-unmatched records. The wire
//! format itself is specified in `docs/SNAPSHOT_FORMAT.md`.
//!
//! # Container formats
//!
//! Two containers carry the same records: the JSON document
//! (`{"fecs": [...]}`) and a length-prefixed binary layout
//! ([`BinarySnapshotWriter`], `RSNB` magic) whose records are the same
//! serialized `flow`/`graph` value spans without the JSON skeleton —
//! built so a framer can hand out spans without scanning bytes, and a
//! consumer can content-hash a record without parsing it. Both
//! [`SnapshotFramer`] and [`SnapshotReader`] sniff the container from
//! the first bytes, so every ingest path (including gzipped sources via
//! [`snapshot_source`]) accepts either format transparently.
//!
//! A seekable binary container can additionally be ingested *zero-copy*:
//! [`SnapshotFramer::from_map`] frames a memory-mapped file
//! ([`crate::MmapSource`]) by pure pointer arithmetic, yielding record
//! spans ([`SpanBytes`]) that borrow the mapping instead of copying
//! through a `BufReader`. Both binary framers produce identical
//! [`RecordBody::Split`] records, so reports, content hashes, and the
//! error contract are byte-for-byte the same; `docs/INGEST.md` has the
//! full mode matrix.

use crate::fec::FlowSpec;
use crate::graph::ForwardingGraph;
use crate::mmap::{MmapReader, MmapSource};
use serde::{Deserialize, Serialize, Value};
use serde_json::JsonReader;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// Forwarding state for every traffic class of one network version.
///
/// Serializes as a list of `{flow, graph}` entries (JSON object keys must
/// be strings, and a [`FlowSpec`] is structured).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    fecs: BTreeMap<FlowSpec, ForwardingGraph>,
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        let entries: Vec<Value> = self
            .fecs
            .iter()
            .map(|(flow, graph)| {
                Value::obj(vec![("flow", flow.to_value()), ("graph", graph.to_value())])
            })
            .collect();
        Value::obj(vec![("fecs", Value::Arr(entries))])
    }
}

impl Deserialize for Snapshot {
    fn from_value(value: &Value) -> Result<Snapshot, serde::Error> {
        let fecs_value = value
            .get("fecs")
            .ok_or_else(|| serde::Error::missing_field("fecs"))?;
        let entries = fecs_value
            .as_arr()
            .ok_or_else(|| serde::Error::mismatch("an array", fecs_value))?;
        let fecs = entries
            .iter()
            .enumerate()
            .map(|(ix, entry)| {
                // attach the failing entry's index: "missing field `flow`"
                // alone is useless in a million-entry snapshot (the full
                // error contract lives in docs/SNAPSHOT_FORMAT.md)
                let attach = |e: serde::Error| serde::Error::custom(format!("fecs[{ix}]: {e}"));
                Ok((
                    serde::field::<FlowSpec>(entry, "flow").map_err(attach)?,
                    serde::field::<ForwardingGraph>(entry, "graph").map_err(attach)?,
                ))
            })
            .collect::<Result<_, serde::Error>>()?;
        Ok(Snapshot { fecs })
    }
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Set the forwarding graph for a flow.
    pub fn insert(&mut self, flow: FlowSpec, graph: ForwardingGraph) {
        self.fecs.insert(flow, graph);
    }

    /// The forwarding graph of a flow, if present.
    pub fn get(&self, flow: &FlowSpec) -> Option<&ForwardingGraph> {
        self.fecs.get(flow)
    }

    /// Iterate over all (flow, graph) pairs in flow order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowSpec, &ForwardingGraph)> {
        self.fecs.iter()
    }

    /// Number of traffic classes.
    pub fn len(&self) -> usize {
        self.fecs.len()
    }

    /// True if the snapshot has no traffic classes.
    pub fn is_empty(&self) -> bool {
        self.fecs.is_empty()
    }

    /// Serialize to the JSON exchange format.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from the JSON exchange format.
    pub fn from_json(json: &str) -> serde_json::Result<Snapshot> {
        serde_json::from_str(json)
    }

    /// Deserialize from any [`Read`] source through the streaming
    /// reader. For documents conforming to `docs/SNAPSHOT_FORMAT.md`
    /// this decodes the same snapshot as [`Snapshot::from_json`] over
    /// the same bytes, but never materializes the input text or a whole
    /// `Value` tree, and its errors carry the byte offset and entry
    /// index of the failure. It is deliberately *stricter* than the
    /// lenient batch loader on non-conforming input: duplicate flow
    /// keys are an error (the batch loader silently keeps the last),
    /// and `fecs` must be the top level's first and only field (the
    /// batch loader ignores extra fields).
    pub fn from_reader(source: impl Read) -> Result<Snapshot, SnapshotError> {
        SnapshotReader::new(source).collect()
    }
}

impl FromIterator<(FlowSpec, ForwardingGraph)> for Snapshot {
    fn from_iter<T: IntoIterator<Item = (FlowSpec, ForwardingGraph)>>(iter: T) -> Snapshot {
        Snapshot {
            fecs: iter.into_iter().collect(),
        }
    }
}

/// A failure while streaming a snapshot: what went wrong, *where* in the
/// byte stream, and *which* FEC entry was being read.
///
/// The error contract (also in `docs/SNAPSHOT_FORMAT.md`): every error
/// raised while a `fecs` entry is being consumed carries that entry's
/// 0-based index ([`SnapshotError::entry_index`]), and every error
/// carries the absolute byte offset of the failure when the reader knows
/// it ([`SnapshotError::byte_offset`]) — in a multi-gigabyte snapshot,
/// "missing field `flow`" without an address is not actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    message: String,
    entry: Option<usize>,
    offset: Option<u64>,
    /// Offset already rendered inside `message` (JSON-level errors embed
    /// their own position); don't append it again.
    offset_in_message: bool,
    label: Option<String>,
}

impl SnapshotError {
    /// Wrap a JSON-level error (its message already embeds the
    /// line/column/byte position).
    pub(crate) fn from_json(e: serde_json::Error) -> SnapshotError {
        SnapshotError {
            offset: e.byte_offset(),
            message: e.to_string(),
            entry: None,
            offset_in_message: true,
            label: None,
        }
    }

    /// A record- or structure-level error at a known byte offset.
    /// Public so pipeline consumers that detect record-level failures
    /// downstream of the framer (e.g. duplicate flows discovered during
    /// a concurrent join) can report them under the same contract.
    pub fn at(message: impl Into<String>, offset: u64) -> SnapshotError {
        SnapshotError {
            message: message.into(),
            entry: None,
            offset: Some(offset),
            offset_in_message: false,
            label: None,
        }
    }

    /// Attach the 0-based `fecs` entry index.
    pub fn with_entry(mut self, ix: usize) -> SnapshotError {
        self.entry = Some(ix);
        self
    }

    /// Attach a source label (typically the file path).
    pub fn with_source_label(mut self, label: impl Into<String>) -> SnapshotError {
        self.label = Some(label.into());
        self
    }

    /// The human-readable failure description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 0-based index of the `fecs` entry being read when the failure
    /// occurred; `None` for failures outside any entry (header, trailer).
    pub fn entry_index(&self) -> Option<usize> {
        self.entry
    }

    /// Absolute byte offset of the failure in the input stream.
    pub fn byte_offset(&self) -> Option<u64> {
        self.offset
    }

    /// The source label attached via [`SnapshotReader::with_label`], if
    /// any (typically the file path).
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            write!(f, "{label}: ")?;
        }
        if let Some(ix) = self.entry {
            write!(f, "snapshot entry #{ix}: ")?;
        }
        f.write_str(&self.message)?;
        match self.offset {
            Some(offset) if !self.offset_in_message => write!(f, " (byte {offset})"),
            _ => Ok(()),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---- binary container format ------------------------------------------

/// Magic bytes opening a binary snapshot (see `docs/SNAPSHOT_FORMAT.md`).
pub const BINARY_MAGIC: [u8; 4] = *b"RSNB";

/// Current version of the binary snapshot layout, written little-endian
/// right after the magic.
pub const BINARY_VERSION: u32 = 1;

/// The `flow-key-len` value that marks the end of a binary snapshot.
const BINARY_SENTINEL: u32 = u32::MAX;

/// Cap on one serialized flow key (a corrupt length prefix must not
/// trigger a multi-gigabyte allocation).
const BINARY_FLOW_CAP: u32 = 1 << 20;

/// Cap on one serialized graph span (matches the serve protocol's
/// 64 MiB frame cap).
const BINARY_GRAPH_CAP: u32 = 64 << 20;

/// A byte span into a shared backing buffer: an owned `Vec` for
/// buffered framing, or a read-only file mapping for the zero-copy
/// binary path. Cloning is O(1) — an `Arc` bump plus the range — so
/// spans travel through channels, join maps, and retention slots
/// without copying record bytes.
///
/// Equality compares span *content*, not backing identity: a mapped
/// span and an owned span over the same bytes are equal (that is the
/// byte-identity property the ingest modes are tested against).
#[derive(Clone)]
pub struct SpanBytes {
    buf: SpanBuf,
    range: Range<usize>,
}

/// The backing storage of a [`SpanBytes`].
#[derive(Clone)]
enum SpanBuf {
    Owned(Arc<Vec<u8>>),
    Mapped(Arc<MmapSource>),
}

impl SpanBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            SpanBuf::Owned(vec) => vec,
            SpanBuf::Mapped(map) => map.as_slice(),
        }
    }
}

impl SpanBytes {
    /// A span over `range` of a memory-mapped file.
    pub fn mapped(map: Arc<MmapSource>, range: Range<usize>) -> SpanBytes {
        debug_assert!(range.end <= map.len() && range.start <= range.end);
        SpanBytes {
            buf: SpanBuf::Mapped(map),
            range,
        }
    }

    /// The span's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf.as_slice()[self.range.clone()]
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// A sub-span addressed relative to this span's start, sharing the
    /// same backing buffer.
    pub fn slice(&self, rel: Range<usize>) -> SpanBytes {
        assert!(rel.end <= self.len() && rel.start <= rel.end);
        SpanBytes {
            buf: self.buf.clone(),
            range: self.range.start + rel.start..self.range.start + rel.end,
        }
    }

    /// Whether the span covers its whole backing buffer (a standalone
    /// span, rather than a view into an enclosing record or mapping).
    pub fn is_whole(&self) -> bool {
        self.range.start == 0 && self.range.end == self.buf.as_slice().len()
    }

    /// The span widened to its whole backing buffer (for a JSON-container
    /// value span, that buffer is the enclosing record).
    pub fn whole_buffer(&self) -> SpanBytes {
        let len = self.buf.as_slice().len();
        SpanBytes {
            buf: self.buf.clone(),
            range: 0..len,
        }
    }

    /// Copy the span out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for SpanBytes {
    fn from(bytes: Vec<u8>) -> SpanBytes {
        let len = bytes.len();
        SpanBytes {
            buf: SpanBuf::Owned(Arc::new(bytes)),
            range: 0..len,
        }
    }
}

impl std::ops::Deref for SpanBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for SpanBytes {
    fn eq(&self, other: &SpanBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SpanBytes {}

impl fmt::Debug for SpanBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanBytes({})", String::from_utf8_lossy(self.as_slice()))
    }
}

/// One undecoded `fecs` entry: the record's value spans plus its
/// provenance, as produced by a [`SnapshotFramer`].
///
/// From a JSON container the body is one complete, strictly-validated
/// JSON record span — re-parsing it cannot hit a syntax error. From a
/// binary container (buffered or memory-mapped) the body is the two
/// length-prefixed value spans, carried *unvalidated and unglued* so
/// byte-level admission can hash them in place; [`RawRecord::decode`]
/// may therefore surface syntax errors there. Either way, record-level
/// failures are reported at the record's start offset exactly as the
/// serial [`SnapshotReader`] does.
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// The record's value spans.
    pub body: RecordBody,
    /// Absolute byte offset of the record's first byte in the input.
    pub offset: u64,
    /// 0-based index among the `fecs` entries.
    pub index: usize,
}

/// The payload of a [`RawRecord`]: one JSON record span, or the two
/// value spans a binary container carries.
#[derive(Debug, Clone)]
pub enum RecordBody {
    /// A complete `{"flow": F, "graph": G}` record span, as framed out
    /// of the JSON container.
    Json(SpanBytes),
    /// The `flow` and `graph` value spans of a binary-container record,
    /// exactly as they sit in the container (no JSON skeleton).
    Split {
        /// The serialized flow key.
        flow: SpanBytes,
        /// The serialized forwarding graph, undecoded.
        graph: SpanBytes,
    },
}

impl RawRecord {
    /// A record over one complete JSON record span (what the JSON framer
    /// yields; also the constructor for hand-built records in tests and
    /// delta documents).
    pub fn from_json_span(span: impl Into<SpanBytes>, offset: u64, index: usize) -> RawRecord {
        RawRecord {
            body: RecordBody::Json(span.into()),
            offset,
            index,
        }
    }

    /// A record over a binary container's two value spans (what both
    /// binary framers yield).
    pub fn from_split_spans(
        flow: SpanBytes,
        graph: SpanBytes,
        offset: u64,
        index: usize,
    ) -> RawRecord {
        RawRecord {
            body: RecordBody::Split { flow, graph },
            offset,
            index,
        }
    }

    /// The record as one `{"flow":F,"graph":G}` JSON span: borrowed for
    /// JSON-container records, reassembled for binary-container ones.
    /// (The binary framer used to pay this glue copy for every record;
    /// it is now confined to the decode and unpack paths.)
    pub fn json_bytes(&self) -> Cow<'_, [u8]> {
        match &self.body {
            RecordBody::Json(span) => Cow::Borrowed(span.as_slice()),
            RecordBody::Split { flow, graph } => {
                let mut bytes = Vec::with_capacity(flow.len() + graph.len() + 18);
                bytes.extend_from_slice(b"{\"flow\":");
                bytes.extend_from_slice(flow.as_slice());
                bytes.extend_from_slice(b",\"graph\":");
                bytes.extend_from_slice(graph.as_slice());
                bytes.push(b'}');
                Cow::Owned(bytes)
            }
        }
    }

    /// Total payload bytes of the record body — what the pipelined
    /// engine's byte-budget batching accounts.
    pub fn span_len(&self) -> usize {
        match &self.body {
            RecordBody::Json(span) => span.len(),
            RecordBody::Split { flow, graph } => flow.len() + graph.len(),
        }
    }
    /// Decode the span into its `(flow, graph)` pair. Errors carry the
    /// record's byte offset and entry index; `label` (typically the
    /// source file path) is attached when given.
    pub fn decode(
        &self,
        label: Option<&str>,
    ) -> Result<(FlowSpec, ForwardingGraph), SnapshotError> {
        let fail = |message: String| SnapshotError {
            message,
            entry: Some(self.index),
            offset: Some(self.offset),
            offset_in_message: false,
            label: label.map(str::to_owned),
        };
        // the framer validated the span: strings are checked UTF-8 and
        // everything else is ASCII, so both conversions are infallible
        // on framer-produced records (kept as errors for hand-built ones)
        let bytes = self.json_bytes();
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| fail("record span is not valid utf-8".to_owned()))?;
        let entry: Value =
            serde_json::from_str(text).map_err(|e| fail(format!("record span: {e}")))?;
        let flow = serde::field::<FlowSpec>(&entry, "flow").map_err(|e| fail(e.to_string()))?;
        let graph =
            serde::field::<ForwardingGraph>(&entry, "graph").map_err(|e| fail(e.to_string()))?;
        Ok((flow, graph))
    }

    /// The `flow` and `graph` value spans of the record, located without
    /// parsing either value — what byte-level admission and the
    /// `snapshot pack` converter run instead of a decode. A binary
    /// container already carries the two spans, so this is a pair of
    /// O(1) clones there; a JSON record span is scanned. Handles the
    /// canonical record encodings both framers produce (plain `"flow"`
    /// and `"graph"` keys in either order, arbitrary inter-token
    /// whitespace); errors carry the record's offset and entry index
    /// like [`RawRecord::decode`], with the missing-field messages
    /// matching the serial reader's exactly.
    pub fn split_spans(
        &self,
        label: Option<&str>,
    ) -> Result<(SpanBytes, SpanBytes), SnapshotError> {
        let span = match &self.body {
            RecordBody::Split { flow, graph } => return Ok((flow.clone(), graph.clone())),
            RecordBody::Json(span) => span,
        };
        let fail = |message: &str| SnapshotError {
            message: message.to_owned(),
            entry: Some(self.index),
            offset: Some(self.offset),
            offset_in_message: false,
            label: label.map(str::to_owned),
        };
        let b = span.as_slice();
        let mut pos = skip_ws(b, 0);
        if b.get(pos) != Some(&b'{') {
            return Err(fail("record span is not an object"));
        }
        pos += 1;
        let mut flow: Option<std::ops::Range<usize>> = None;
        let mut graph: Option<std::ops::Range<usize>> = None;
        loop {
            pos = skip_ws(b, pos);
            match b.get(pos) {
                Some(b'}') => break,
                Some(b'"') => {}
                _ => return Err(fail("malformed record span")),
            }
            let key_end =
                scan_string(b, pos).ok_or_else(|| fail("unterminated string in record span"))?;
            let key = &b[pos..key_end];
            pos = skip_ws(b, key_end);
            if b.get(pos) != Some(&b':') {
                return Err(fail("malformed record span"));
            }
            pos = skip_ws(b, pos + 1);
            let value_end = scan_value(b, pos).ok_or_else(|| fail("truncated record span"))?;
            match key {
                b"\"flow\"" => flow = Some(pos..value_end),
                b"\"graph\"" => graph = Some(pos..value_end),
                _ => {}
            }
            pos = skip_ws(b, value_end);
            match b.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => break,
                _ => return Err(fail("malformed record span")),
            }
        }
        match (flow, graph) {
            (Some(f), Some(g)) => Ok((span.slice(f), span.slice(g))),
            (None, _) => Err(fail("missing field `flow`")),
            (_, None) => Err(fail("missing field `graph`")),
        }
    }

    /// Parse the record's flow key and hand out its graph span *without*
    /// decoding the graph — the entry point of the pipelined
    /// byte-admission fast path. Falls back to a full
    /// [`RawRecord::decode`] when the span scanner cannot handle the
    /// encoding (escaped keys, malformed spans), so every error is
    /// exactly what the serial reader would have reported.
    pub fn decode_flow(&self, label: Option<&str>) -> Result<FlowDecoded, SnapshotError> {
        if let Ok((flow_span, graph_span)) = self.split_spans(label) {
            let parsed = std::str::from_utf8(flow_span.as_slice())
                .ok()
                .and_then(|text| serde_json::from_str::<Value>(text).ok())
                .and_then(|value| FlowSpec::from_value(&value).ok());
            if let Some(flow) = parsed {
                return Ok(FlowDecoded::Split(flow, graph_span));
            }
        }
        let (flow, graph) = self.decode(label)?;
        Ok(FlowDecoded::Full(flow, graph))
    }
}

/// What [`RawRecord::decode_flow`] produced.
// the Full payload is consumed immediately by the caller; boxing the
// graph would add an allocation to a path that exists to avoid them
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum FlowDecoded {
    /// The parsed flow key plus the record's *undecoded* graph span.
    Split(FlowSpec, SpanBytes),
    /// The record needed a full decode (non-canonical encoding): both
    /// values, already parsed.
    Full(FlowSpec, ForwardingGraph),
}

/// Decode one graph value span, as located by [`RawRecord::split_spans`].
/// The message matches what the serial reader reports for the same shape
/// failure; the caller owns offset/entry/label attribution.
pub fn decode_graph_span(bytes: &[u8]) -> Result<ForwardingGraph, String> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| "record span is not valid utf-8".to_owned())?;
    let value: Value = serde_json::from_str(text).map_err(|e| format!("record span: {e}"))?;
    ForwardingGraph::from_value(&value).map_err(|e| e.to_string())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while matches!(b.get(pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        pos += 1;
    }
    pos
}

/// End position (exclusive) of the string starting at `pos` (which must
/// hold a `"`), honoring escapes; `None` if unterminated.
fn scan_string(b: &[u8], pos: usize) -> Option<usize> {
    let mut i = pos + 1;
    loop {
        match b.get(i)? {
            b'"' => return Some(i + 1),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
}

/// End position (exclusive) of the JSON value starting at `pos`:
/// strings scan escape-aware, containers by depth (string-aware),
/// primitives run to the next delimiter. `None` on truncation.
fn scan_value(b: &[u8], pos: usize) -> Option<usize> {
    match b.get(pos)? {
        b'"' => scan_string(b, pos),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut i = pos;
            loop {
                match b.get(i)? {
                    b'"' => i = scan_string(b, i)?,
                    b'{' | b'[' => {
                        depth += 1;
                        i += 1;
                    }
                    b'}' | b']' => {
                        depth = depth.checked_sub(1)?;
                        i += 1;
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                    _ => i += 1,
                }
            }
        }
        _ => {
            let mut i = pos;
            while let Some(c) = b.get(i) {
                if matches!(c, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                    break;
                }
                i += 1;
            }
            (i > pos).then_some(i)
        }
    }
}

/// The framing half of the snapshot reader: yields each entry of a JSON
/// *or* binary snapshot as an undecoded [`RawRecord`] span, without
/// building a single `Value`. The container format is sniffed from the
/// first four bytes ([`BINARY_MAGIC`] opens a binary snapshot; anything
/// else is parsed as the JSON document).
///
/// This is what a pipelined consumer runs on its reader thread — framing
/// touches every byte at most once (the JSON grammar is strict, so
/// malformed JSON fails here with the same message and offset as the
/// decoding reader; binary framing is pure length-prefix arithmetic) but
/// defers all allocation-heavy decoding to [`RawRecord::decode`] /
/// [`RawRecord::decode_flow`], which can run on worker threads.
/// [`SnapshotReader`] is this framer plus an inline decoder and
/// duplicate-flow detection.
pub struct SnapshotFramer<R: Read> {
    inner: FramerInner<R>,
    /// Index of the next entry to be framed.
    index: usize,
    label: Option<String>,
}

/// The framer's container-specific state.
enum FramerInner<R: Read> {
    /// No bytes pulled yet; the format is decided on first use.
    Unsniffed(Option<R>),
    Json(JsonFramer<R>),
    Binary(BinaryFramer<R>),
    /// Zero-copy binary framing over a memory mapping (no `R` involved —
    /// record spans borrow the map).
    Mapped(MappedBinaryFramer),
    /// Finished or failed; the iterator is fused.
    Done,
}

impl<R: Read> SnapshotFramer<R> {
    /// Wrap a byte source. No input is read until the first record is
    /// pulled.
    ///
    /// The source label — a file path for file-backed sources, a job
    /// and side name for socket-fed streams — is mandatory: a framer is
    /// the entry point of the pipelined (and framed-protocol) ingest
    /// path, where an unlabelled error cannot be traced back to the
    /// submission that caused it. Every error this framer produces
    /// carries the label alongside the entry index and byte offset.
    pub fn new(source: R, label: impl Into<String>) -> SnapshotFramer<R> {
        SnapshotFramer {
            inner: FramerInner::Unsniffed(Some(source)),
            index: 0,
            label: Some(label.into()),
        }
    }

    /// The source label.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Whether this framer runs the zero-copy mapped path (for stats
    /// and diagnostics; the records it yields are indistinguishable from
    /// the buffered binary framer's).
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, FramerInner::Mapped(_))
    }

    /// Number of records framed so far.
    pub fn records_framed(&self) -> usize {
        self.index
    }

    /// Fuse the iterator (no further records will be yielded).
    fn fuse_iter(&mut self) {
        self.inner = FramerInner::Done;
    }

    /// Attach this framer's label to an error and fuse the iterator.
    fn fail(&mut self, e: SnapshotError) -> SnapshotError {
        self.inner = FramerInner::Done;
        SnapshotError {
            label: self.label.clone(),
            ..e
        }
    }
}

impl<'a> SnapshotFramer<Box<dyn Read + Send + 'a>> {
    /// Frame a memory-mapped snapshot file. A binary container
    /// ([`BINARY_MAGIC`] head) is framed zero-copy — pointer arithmetic
    /// over the mapping, record spans borrowing it — with the same
    /// record sequence, offsets, and error contract as the buffered
    /// [`SnapshotFramer::new`] over the same bytes. Any other content
    /// (a JSON document in the mapped file) transparently rides the
    /// ordinary sniffing path through a [`MmapReader`], so callers may
    /// map first and ask questions never.
    pub fn from_map(
        map: MmapSource,
        label: impl Into<String>,
    ) -> SnapshotFramer<Box<dyn Read + Send + 'a>> {
        let map = Arc::new(map);
        if map.as_slice().get(..4) == Some(&BINARY_MAGIC[..]) {
            SnapshotFramer {
                inner: FramerInner::Mapped(MappedBinaryFramer {
                    map,
                    // the sniffed magic is consumed; the version word is
                    // checked on the first pull, like the lazy sniffer
                    pos: BINARY_MAGIC.len(),
                    released: 0,
                    version_checked: false,
                }),
                index: 0,
                label: Some(label.into()),
            }
        } else {
            SnapshotFramer::new(Box::new(MmapReader::new(map)), label)
        }
    }
}

impl<R: Read> Iterator for SnapshotFramer<R> {
    type Item = Result<RawRecord, SnapshotError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let FramerInner::Unsniffed(source) = &mut self.inner {
            let source = source.take().expect("unsniffed framer holds its source");
            match sniff_format(source) {
                Ok(inner) => self.inner = inner,
                Err(e) => return Some(Err(self.fail(e))),
            }
        }
        let result = match &mut self.inner {
            FramerInner::Done => return None,
            FramerInner::Json(j) => j.next_record(self.index),
            FramerInner::Binary(b) => b.next_record(self.index),
            FramerInner::Mapped(m) => m.next_record(self.index),
            FramerInner::Unsniffed(_) => unreachable!("format sniffed above"),
        };
        match result {
            Ok(Some(raw)) => {
                self.index += 1;
                Some(Ok(raw))
            }
            Ok(None) => {
                self.inner = FramerInner::Done;
                None
            }
            Err(e) => Some(Err(self.fail(e))),
        }
    }
}

/// Read up to four head bytes and decide the container format. A binary
/// header is consumed (and its version checked); for JSON the head
/// bytes are replayed in front of the source so the JSON reader's byte
/// offsets stay absolute.
fn sniff_format<R: Read>(mut source: R) -> Result<FramerInner<R>, SnapshotError> {
    let mut head = [0u8; 4];
    let mut have = 0;
    while have < head.len() {
        match source.read(&mut head[have..]) {
            Ok(0) => break,
            Ok(n) => have += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SnapshotError::at(format!("io error: {e}"), have as u64)),
        }
    }
    if have == head.len() && head == BINARY_MAGIC {
        let mut framer = BinaryFramer {
            source,
            offset: head.len() as u64,
        };
        let mut version = [0u8; 4];
        framer.read_exact(&mut version, "the format version", None)?;
        let v = u32::from_le_bytes(version);
        if v != BINARY_VERSION {
            return Err(SnapshotError::at(
                format!("unsupported binary snapshot version {v} (expected {BINARY_VERSION})"),
                head.len() as u64,
            ));
        }
        Ok(FramerInner::Binary(framer))
    } else {
        Ok(FramerInner::Json(JsonFramer {
            json: JsonReader::new(PrefixedReader {
                prefix: head,
                len: have,
                pos: 0,
                inner: source,
            }),
            started: false,
        }))
    }
}

/// Replays the sniffed head bytes before the underlying source, so a
/// JSON reader built on top sees the stream from byte 0 and its offsets
/// stay absolute.
struct PrefixedReader<R> {
    prefix: [u8; 4],
    len: usize,
    pos: usize,
    inner: R,
}

impl<R: Read> Read for PrefixedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.len {
            let n = (self.len - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

/// Framing state for the JSON container: the document skeleton
/// (`{"fecs": [ ... ]}`) is consumed lazily around the record loop.
struct JsonFramer<R: Read> {
    json: JsonReader<PrefixedReader<R>>,
    /// Header (`{"fecs": [`) consumed.
    started: bool,
}

impl<R: Read> JsonFramer<R> {
    /// Consume `{"fecs": [`.
    fn read_header(&mut self) -> Result<(), SnapshotError> {
        self.json.begin_object().map_err(SnapshotError::from_json)?;
        match self.json.next_key().map_err(SnapshotError::from_json)? {
            Some(key) if key == "fecs" => {}
            Some(key) => {
                return Err(SnapshotError::at(
                    format!("expected the `fecs` field, found `{key}`"),
                    self.json.byte_offset(),
                ))
            }
            None => {
                return Err(SnapshotError::at(
                    "missing field `fecs`",
                    self.json.byte_offset(),
                ))
            }
        }
        self.json.begin_array().map_err(SnapshotError::from_json)?;
        self.started = true;
        Ok(())
    }

    /// Consume `}` plus trailing whitespace/EOF after the records.
    fn read_trailer(&mut self) -> Result<(), SnapshotError> {
        if let Some(key) = self.json.next_key().map_err(SnapshotError::from_json)? {
            return Err(SnapshotError::at(
                format!("unexpected field `{key}` after `fecs`"),
                self.json.byte_offset(),
            ));
        }
        self.json.end().map_err(SnapshotError::from_json)?;
        Ok(())
    }

    /// Frame the next record span; `Ok(None)` on a clean trailer.
    fn next_record(&mut self, index: usize) -> Result<Option<RawRecord>, SnapshotError> {
        if !self.started {
            self.read_header()?;
        }
        match self.json.next_element() {
            Err(e) => Err(SnapshotError::from_json(e).with_entry(index)),
            Ok(false) => {
                self.read_trailer()?;
                Ok(None)
            }
            Ok(true) => {
                let offset = self.json.byte_offset();
                let mut bytes = Vec::new();
                self.json
                    .read_raw_value(&mut bytes)
                    .map_err(|e| SnapshotError::from_json(e).with_entry(index))?;
                Ok(Some(RawRecord::from_json_span(bytes, offset, index)))
            }
        }
    }
}

/// Framing state for the binary container (header already consumed by
/// the sniffer): records are pure length-prefix arithmetic, yielded as
/// [`RecordBody::Split`] value-span pairs with no reassembly. A
/// record's offset is the absolute position of its first length prefix.
struct BinaryFramer<R: Read> {
    source: R,
    /// Absolute offset of the next unread byte.
    offset: u64,
}

impl<R: Read> BinaryFramer<R> {
    fn read_exact(
        &mut self,
        buf: &mut [u8],
        what: &str,
        entry: Option<usize>,
    ) -> Result<(), SnapshotError> {
        let attach = |e: SnapshotError| match entry {
            Some(ix) => e.with_entry(ix),
            None => e,
        };
        let mut have = 0;
        while have < buf.len() {
            match self.source.read(&mut buf[have..]) {
                Ok(0) => {
                    return Err(attach(SnapshotError::at(
                        format!("unexpected end of binary snapshot reading {what}"),
                        self.offset + have as u64,
                    )))
                }
                Ok(n) => have += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(attach(SnapshotError::at(
                        format!("io error: {e}"),
                        self.offset + have as u64,
                    )))
                }
            }
        }
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Read one little-endian length prefix, enforcing `cap` (the
    /// sentinel is exempt — the caller decides whether it is legal).
    fn read_len(&mut self, what: &str, cap: u32, index: usize) -> Result<u32, SnapshotError> {
        let at = self.offset;
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf, what, Some(index))?;
        let len = u32::from_le_bytes(buf);
        if len != BINARY_SENTINEL && len > cap {
            return Err(SnapshotError::at(
                format!("{what} of {len} bytes exceeds the {cap}-byte cap"),
                at,
            )
            .with_entry(index));
        }
        Ok(len)
    }

    /// Frame the next record span; `Ok(None)` on the end sentinel.
    fn next_record(&mut self, index: usize) -> Result<Option<RawRecord>, SnapshotError> {
        let record_start = self.offset;
        let flow_len = self.read_len("a flow-key length", BINARY_FLOW_CAP, index)?;
        if flow_len == BINARY_SENTINEL {
            // end marker: nothing may follow it
            let mut probe = [0u8; 1];
            loop {
                match self.source.read(&mut probe) {
                    Ok(0) => return Ok(None),
                    Ok(_) => {
                        return Err(SnapshotError::at(
                            "trailing bytes after the binary snapshot end marker",
                            self.offset,
                        ))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(SnapshotError::at(format!("io error: {e}"), self.offset)),
                }
            }
        }
        let mut flow = vec![0u8; flow_len as usize];
        self.read_exact(&mut flow, "a flow-key span", Some(index))?;
        let graph_len = self.read_len("a graph length", BINARY_GRAPH_CAP, index)?;
        if graph_len == BINARY_SENTINEL {
            return Err(SnapshotError::at(
                "end marker in place of a graph length",
                self.offset - 4,
            )
            .with_entry(index));
        }
        let mut graph = vec![0u8; graph_len as usize];
        self.read_exact(&mut graph, "a graph span", Some(index))?;
        Ok(Some(RawRecord::from_split_spans(
            flow.into(),
            graph.into(),
            record_start,
            index,
        )))
    }
}

/// Zero-copy framing state for a memory-mapped binary container: the
/// same length-prefix arithmetic as [`BinaryFramer`], but over the
/// mapping's slice — record spans borrow the map instead of being read
/// into fresh buffers. Every error (message, byte offset, entry index)
/// is identical to what the buffered framer reports for the same bytes;
/// truncation mid-record surfaces at the mapping's end, exactly where a
/// buffered read would have hit EOF.
struct MappedBinaryFramer {
    map: Arc<MmapSource>,
    /// Absolute offset of the next unread byte.
    pos: usize,
    /// Watermark below which pages have been advised reclaimable
    /// ([`MmapSource::release_prefix`]) — without this a large container
    /// accumulates its entire length in the process's resident set as
    /// framing touches every page. Released lagging one
    /// [`MAPPED_RELEASE_CHUNK`] behind `pos` so in-flight spans almost
    /// always sit on still-resident pages (a span behind the lag merely
    /// refaults from the page cache).
    released: usize,
    /// The version word is validated lazily on the first pull, matching
    /// the buffered sniffer's laziness.
    version_checked: bool,
}

/// Granularity of the mapped framer's resident-set release: pages are
/// advised reclaimable one chunk at a time, one chunk behind the
/// framing cursor, bounding a side's framing footprint to ~2 chunks
/// regardless of container size.
const MAPPED_RELEASE_CHUNK: usize = 1 << 20;

impl MappedBinaryFramer {
    /// Claim `len` bytes at the cursor; the mapped analogue of
    /// [`BinaryFramer::read_exact`], with the identical error contract
    /// (a short claim errors at `pos + available`, i.e. the map's end).
    fn take(
        &mut self,
        len: usize,
        what: &str,
        entry: Option<usize>,
    ) -> Result<Range<usize>, SnapshotError> {
        let have = self.map.len().saturating_sub(self.pos).min(len);
        if have < len {
            let e = SnapshotError::at(
                format!("unexpected end of binary snapshot reading {what}"),
                (self.pos + have) as u64,
            );
            return Err(match entry {
                Some(ix) => e.with_entry(ix),
                None => e,
            });
        }
        let range = self.pos..self.pos + len;
        self.pos += len;
        Ok(range)
    }

    /// Read one little-endian length prefix, enforcing `cap` (the
    /// sentinel is exempt — the caller decides whether it is legal).
    fn read_len(&mut self, what: &str, cap: u32, index: usize) -> Result<u32, SnapshotError> {
        let at = self.pos as u64;
        let range = self.take(4, what, Some(index))?;
        let word: [u8; 4] = self.map.as_slice()[range].try_into().expect("4-byte range");
        let len = u32::from_le_bytes(word);
        if len != BINARY_SENTINEL && len > cap {
            return Err(SnapshotError::at(
                format!("{what} of {len} bytes exceeds the {cap}-byte cap"),
                at,
            )
            .with_entry(index));
        }
        Ok(len)
    }

    /// Frame the next record span; `Ok(None)` on the end sentinel.
    fn next_record(&mut self, index: usize) -> Result<Option<RawRecord>, SnapshotError> {
        if !self.version_checked {
            let range = self.take(4, "the format version", None)?;
            let word: [u8; 4] = self.map.as_slice()[range].try_into().expect("4-byte range");
            let v = u32::from_le_bytes(word);
            if v != BINARY_VERSION {
                return Err(SnapshotError::at(
                    format!("unsupported binary snapshot version {v} (expected {BINARY_VERSION})"),
                    BINARY_MAGIC.len() as u64,
                ));
            }
            self.version_checked = true;
        }
        let record_start = self.pos as u64;
        let flow_len = self.read_len("a flow-key length", BINARY_FLOW_CAP, index)?;
        if flow_len == BINARY_SENTINEL {
            // end marker: nothing may follow it
            if self.pos < self.map.len() {
                return Err(SnapshotError::at(
                    "trailing bytes after the binary snapshot end marker",
                    self.pos as u64,
                ));
            }
            return Ok(None);
        }
        let flow = self.take(flow_len as usize, "a flow-key span", Some(index))?;
        let graph_len = self.read_len("a graph length", BINARY_GRAPH_CAP, index)?;
        if graph_len == BINARY_SENTINEL {
            return Err(SnapshotError::at(
                "end marker in place of a graph length",
                self.pos as u64 - 4,
            )
            .with_entry(index));
        }
        let graph = self.take(graph_len as usize, "a graph span", Some(index))?;
        if self.pos >= self.released + 2 * MAPPED_RELEASE_CHUNK {
            let upto = self.pos - MAPPED_RELEASE_CHUNK;
            self.map.release_prefix(upto);
            self.released = upto;
        }
        Ok(Some(RawRecord::from_split_spans(
            SpanBytes::mapped(self.map.clone(), flow),
            SpanBytes::mapped(self.map.clone(), graph),
            record_start,
            index,
        )))
    }
}

/// A pull-based reader of the snapshot wire format: yields one
/// `(flow, graph)` record at a time from any [`Read`] source, holding at
/// most one decoded record in memory. Built as a [`SnapshotFramer`] with
/// an inline [`RawRecord::decode`] step.
///
/// Beyond decoding, the reader enforces the format's structural rules
/// (documented in `docs/SNAPSHOT_FORMAT.md`): the top level must be an
/// object whose first and only field is `fecs`, and a `flow` key may
/// appear at most once — a duplicate is an error here, not a silent
/// last-write-wins. Errors surface the byte offset and the failing entry
/// index; after an error the iterator is fused (yields `None`).
///
/// ```
/// use rela_net::{Snapshot, SnapshotReader};
///
/// let json = br#"{"fecs": []}"#;
/// let records: Result<Vec<_>, _> = SnapshotReader::new(&json[..]).collect();
/// assert!(records.unwrap().is_empty());
/// ```
pub struct SnapshotReader<R: Read> {
    framer: SnapshotFramer<R>,
    /// Records successfully decoded so far.
    decoded: usize,
    /// Flow keys seen so far (duplicate detection). Keys only — the
    /// graphs, which dominate a snapshot's bytes, are not retained.
    seen: HashSet<FlowSpec>,
}

impl<R: Read> SnapshotReader<R> {
    /// Wrap a byte source. No input is read until the first record is
    /// pulled.
    pub fn new(source: R) -> SnapshotReader<R> {
        SnapshotReader {
            // A serial reader may legitimately be label-free (in-memory
            // sources in tests and doc examples), so the framer is built
            // directly rather than through `SnapshotFramer::new`, which
            // demands a label.
            framer: SnapshotFramer {
                inner: FramerInner::Unsniffed(Some(source)),
                index: 0,
                label: None,
            },
            decoded: 0,
            seen: HashSet::new(),
        }
    }

    /// Attach a source label (typically the file path) to every error
    /// this reader produces.
    pub fn with_label(mut self, label: impl Into<String>) -> SnapshotReader<R> {
        self.framer.label = Some(label.into());
        self
    }

    /// Number of records successfully read so far.
    pub fn records_read(&self) -> usize {
        self.decoded
    }
}

impl<R: Read> Iterator for SnapshotReader<R> {
    type Item = Result<(FlowSpec, ForwardingGraph), SnapshotError>;

    fn next(&mut self) -> Option<Self::Item> {
        let raw = match self.framer.next()? {
            Ok(raw) => raw,
            Err(e) => return Some(Err(e)),
        };
        match raw.decode(self.framer.label()) {
            Ok((flow, graph)) => {
                if !self.seen.insert(flow.clone()) {
                    let e = SnapshotError::at(format!("duplicate flow {flow}"), raw.offset)
                        .with_entry(raw.index);
                    return Some(Err(self.framer.fail(e)));
                }
                self.decoded += 1;
                Some(Ok((flow, graph)))
            }
            Err(e) => {
                // decode already attached entry/offset/label; fuse only
                self.framer.fuse_iter();
                Some(Err(e))
            }
        }
    }
}

/// Open a snapshot file as a byte source, decoding gzip-compressed
/// streams transparently: a path ending in `.gz` is wrapped in a
/// streaming [`flate2`] inflater, so compressed snapshots ride the same
/// framer/reader as plain ones without a separate decompress step (see
/// `docs/SNAPSHOT_FORMAT.md`). The container format (JSON or binary) is
/// *not* decided here — the framer/reader sniffs it from the first
/// bytes, after decompression, so `.json`, `.json.gz`, `.rsnb`, and
/// `.rsnb.gz` all open the same way.
pub fn snapshot_source(path: &Path) -> std::io::Result<Box<dyn Read + Send>> {
    let file = std::fs::File::open(path)?;
    if path.extension().is_some_and(|ext| ext == "gz") {
        Ok(Box::new(flate2::read::GzDecoder::new(file)))
    } else {
        Ok(Box::new(file))
    }
}

/// A record-by-record writer of the snapshot wire format — the streaming
/// counterpart of [`Snapshot::to_json`]. Feeding the same records in
/// flow order produces byte-identical output; any feed order produces a
/// valid snapshot (readers do not require ordering).
///
/// Call [`SnapshotWriter::finish`] to emit the closing brackets; a
/// dropped, unfinished writer leaves a truncated document.
pub struct SnapshotWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> SnapshotWriter<W> {
    /// Start a snapshot document on `out` (writes the header
    /// immediately).
    pub fn new(mut out: W) -> std::io::Result<SnapshotWriter<W>> {
        out.write_all(b"{\"fecs\":[")?;
        Ok(SnapshotWriter { out, written: 0 })
    }

    /// Append one `(flow, graph)` record. The caller is responsible for
    /// not writing the same flow twice (streaming readers reject
    /// duplicates).
    pub fn write(&mut self, flow: &FlowSpec, graph: &ForwardingGraph) -> std::io::Result<()> {
        let entry = Value::obj(vec![("flow", flow.to_value()), ("graph", graph.to_value())]);
        let json = serde_json::to_string(&entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if self.written > 0 {
            self.out.write_all(b",")?;
        }
        self.out.write_all(json.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Close the document and hand back the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.write_all(b"]}")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A record-by-record writer of the *binary* snapshot container
/// (`docs/SNAPSHOT_FORMAT.md`): the [`BINARY_MAGIC`]/[`BINARY_VERSION`]
/// header, one length-prefixed `(flow, graph)` span pair per record,
/// and a sentinel end marker emitted by
/// [`BinarySnapshotWriter::finish`]. Record spans are the exact bytes
/// the JSON writer would have produced for the same values, so packing
/// and unpacking are byte-exact inverses and both containers hash (and
/// therefore byte-admit) identically.
pub struct BinarySnapshotWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> BinarySnapshotWriter<W> {
    /// Start a binary snapshot on `out` (writes the header immediately).
    pub fn new(mut out: W) -> std::io::Result<BinarySnapshotWriter<W>> {
        out.write_all(&BINARY_MAGIC)?;
        out.write_all(&BINARY_VERSION.to_le_bytes())?;
        Ok(BinarySnapshotWriter { out, written: 0 })
    }

    /// Append one `(flow, graph)` record. The caller is responsible for
    /// not writing the same flow twice (streaming readers reject
    /// duplicates).
    pub fn write(&mut self, flow: &FlowSpec, graph: &ForwardingGraph) -> std::io::Result<()> {
        let invalid = |e: serde_json::Error| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        };
        let flow_json = serde_json::to_string(&flow.to_value()).map_err(invalid)?;
        let graph_json = serde_json::to_string(&graph.to_value()).map_err(invalid)?;
        self.write_raw(flow_json.as_bytes(), graph_json.as_bytes())
    }

    /// Append one record from already-serialized value spans — the
    /// `rela snapshot pack` passthrough, which moves records between
    /// containers without ever decoding them.
    pub fn write_raw(&mut self, flow: &[u8], graph: &[u8]) -> std::io::Result<()> {
        if flow.len() > BINARY_FLOW_CAP as usize || graph.len() > BINARY_GRAPH_CAP as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "record span exceeds the binary format's length cap",
            ));
        }
        self.out.write_all(&(flow.len() as u32).to_le_bytes())?;
        self.out.write_all(flow)?;
        self.out.write_all(&(graph.len() as u32).to_le_bytes())?;
        self.out.write_all(graph)?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Write the end marker and hand back the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.write_all(&BINARY_SENTINEL.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// One aligned traffic class: its pre- and post-change forwarding graphs.
#[derive(Debug, Clone)]
pub struct AlignedFec {
    /// The traffic descriptor.
    pub flow: FlowSpec,
    /// Pre-change forwarding (empty graph if the flow was not carried).
    pub pre: ForwardingGraph,
    /// Post-change forwarding (empty graph if the flow is not carried).
    pub post: ForwardingGraph,
}

impl Serialize for AlignedFec {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("flow", self.flow.to_value()),
            ("pre", self.pre.to_value()),
            ("post", self.post.to_value()),
        ])
    }
}

impl Deserialize for AlignedFec {
    fn from_value(value: &Value) -> Result<AlignedFec, serde::Error> {
        Ok(AlignedFec {
            flow: serde::field(value, "flow")?,
            pre: serde::field(value, "pre")?,
            post: serde::field(value, "post")?,
        })
    }
}

/// A pre/post snapshot pair, aligned per flow.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPair {
    /// Aligned per-FEC entries, in flow order.
    pub fecs: Vec<AlignedFec>,
}

impl Serialize for SnapshotPair {
    fn to_value(&self) -> Value {
        Value::obj(vec![("fecs", self.fecs.to_value())])
    }
}

impl Deserialize for SnapshotPair {
    fn from_value(value: &Value) -> Result<SnapshotPair, serde::Error> {
        Ok(SnapshotPair {
            fecs: serde::field(value, "fecs")?,
        })
    }
}

impl SnapshotPair {
    /// Join two snapshots on the flow key. Flows present in either side
    /// appear once; the missing side gets an empty graph.
    pub fn align(pre: &Snapshot, post: &Snapshot) -> SnapshotPair {
        let mut keys: Vec<&FlowSpec> = pre.fecs.keys().chain(post.fecs.keys()).collect();
        keys.sort();
        keys.dedup();
        let fecs = keys
            .into_iter()
            .map(|flow| AlignedFec {
                flow: flow.clone(),
                pre: pre.get(flow).cloned().unwrap_or_default(),
                post: post.get(flow).cloned().unwrap_or_default(),
            })
            .collect();
        SnapshotPair { fecs }
    }

    /// Incrementally join a pre and a post record stream on the flow
    /// key: a streaming [`SnapshotPair::align`].
    ///
    /// The two streams are pulled in lockstep and hash-joined: as soon
    /// as a flow has been seen on both sides its [`AlignedFec`] is
    /// emitted (and its graphs dropped from the join state), so a
    /// consumer can start checking while the files are still being
    /// parsed. Only *unmatched* records spill into the join maps — on
    /// the common workload (two snapshots of one network, near-identical
    /// key sets, similar order) the spill stays small instead of holding
    /// both snapshots. When both streams end, flows present on only one
    /// side are drained in flow order with an empty graph on the other
    /// side.
    ///
    /// Matched FECs are emitted in arrival order, not flow order; the
    /// set of emitted FECs is exactly what [`SnapshotPair::align`] would
    /// produce (collect through [`SnapshotPair::from_stream`] for the
    /// sorted form). The first error from either stream ends the
    /// iteration (the stream is fused afterwards).
    pub fn align_streaming<A: Read, B: Read>(
        pre: SnapshotReader<A>,
        post: SnapshotReader<B>,
    ) -> AlignStream<A, B> {
        AlignStream {
            pre: Some(pre),
            post: Some(post),
            pre_pending: BTreeMap::new(),
            post_pending: BTreeMap::new(),
            failed: false,
        }
    }

    /// Collect a stream of aligned FECs into a [`SnapshotPair`],
    /// restoring the flow-sorted order [`SnapshotPair::align`]
    /// guarantees. Stops at the first stream error.
    pub fn from_stream<E>(
        stream: impl IntoIterator<Item = Result<AlignedFec, E>>,
    ) -> Result<SnapshotPair, E> {
        let mut fecs = stream.into_iter().collect::<Result<Vec<AlignedFec>, E>>()?;
        fecs.sort_by(|a, b| a.flow.cmp(&b.flow));
        Ok(SnapshotPair { fecs })
    }

    /// Number of aligned traffic classes.
    pub fn len(&self) -> usize {
        self.fecs.len()
    }

    /// True if no traffic classes are present.
    pub fn is_empty(&self) -> bool {
        self.fecs.is_empty()
    }

    /// Serialize to the JSON exchange format.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from the JSON exchange format.
    pub fn from_json(json: &str) -> serde_json::Result<SnapshotPair> {
        serde_json::from_str(json)
    }
}

/// The incremental pre/post join produced by
/// [`SnapshotPair::align_streaming`]: an iterator of aligned FECs (or
/// the first stream error).
pub struct AlignStream<A: Read, B: Read> {
    /// `None` once the side's stream is exhausted.
    pre: Option<SnapshotReader<A>>,
    post: Option<SnapshotReader<B>>,
    /// Records seen on one side whose partner has not arrived yet.
    pre_pending: BTreeMap<FlowSpec, ForwardingGraph>,
    post_pending: BTreeMap<FlowSpec, ForwardingGraph>,
    failed: bool,
}

impl<A: Read, B: Read> AlignStream<A, B> {
    /// Pull one record from one side; `Ok(Some(fec))` if it completed a
    /// pair. `pull::<false>` reads the pre side, `pull::<true>` the post
    /// side.
    fn pull<const POST: bool>(&mut self) -> Result<Option<AlignedFec>, SnapshotError> {
        let next = if POST {
            self.post.as_mut().and_then(Iterator::next)
        } else {
            self.pre.as_mut().and_then(Iterator::next)
        };
        match next {
            None => {
                if POST {
                    self.post = None;
                } else {
                    self.pre = None;
                }
                Ok(None)
            }
            Some(Err(e)) => Err(e),
            Some(Ok((flow, graph))) => {
                let (own, other) = if POST {
                    (&mut self.post_pending, &mut self.pre_pending)
                } else {
                    (&mut self.pre_pending, &mut self.post_pending)
                };
                match other.remove(&flow) {
                    Some(partner) => {
                        let (pre, post) = if POST {
                            (partner, graph)
                        } else {
                            (graph, partner)
                        };
                        Ok(Some(AlignedFec { flow, pre, post }))
                    }
                    None => {
                        own.insert(flow, graph);
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Drain one flow present on only one side (both streams ended).
    /// Smallest flow first, merged across the two maps.
    fn drain_one(&mut self) -> Option<AlignedFec> {
        let from_pre = match (
            self.pre_pending.keys().next(),
            self.post_pending.keys().next(),
        ) {
            (Some(p), Some(q)) => p < q,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_pre {
            let (flow, pre) = self.pre_pending.pop_first().expect("checked non-empty");
            Some(AlignedFec {
                flow,
                pre,
                post: ForwardingGraph::default(),
            })
        } else {
            let (flow, post) = self.post_pending.pop_first().expect("checked non-empty");
            Some(AlignedFec {
                flow,
                pre: ForwardingGraph::default(),
                post,
            })
        }
    }
}

impl<A: Read, B: Read> Iterator for AlignStream<A, B> {
    type Item = Result<AlignedFec, SnapshotError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        // Alternate sides while either stream has records, emitting the
        // first completed pair; once both end, drain the one-sided rest.
        while self.pre.is_some() || self.post.is_some() {
            if self.pre.is_some() {
                match self.pull::<false>() {
                    Ok(Some(fec)) => return Some(Ok(fec)),
                    Ok(None) => {}
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
            if self.post.is_some() {
                match self.pull::<true>() {
                    Ok(Some(fec)) => return Some(Ok(fec)),
                    Ok(None) => {}
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
        }
        self.drain_one().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::linear_graph;
    use crate::prefix::Ipv4Prefix;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn flow(dst: &str, ingress: &str) -> FlowSpec {
        FlowSpec::new(p(dst), ingress)
    }

    #[test]
    fn insert_and_get() {
        let mut snap = Snapshot::new();
        let f = flow("10.0.0.0/24", "x1");
        snap.insert(f.clone(), linear_graph(&["x1", "A1", "D1"]));
        assert_eq!(snap.len(), 1);
        assert!(snap.get(&f).is_some());
        assert!(snap.get(&flow("10.0.1.0/24", "x1")).is_none());
    }

    #[test]
    fn align_joins_on_flow_key() {
        let f1 = flow("10.0.0.0/24", "x1");
        let f2 = flow("10.0.1.0/24", "x1");
        let f3 = flow("10.0.2.0/24", "x2");
        let mut pre = Snapshot::new();
        pre.insert(f1.clone(), linear_graph(&["x1", "A1"]));
        pre.insert(f2.clone(), linear_graph(&["x1", "B1"]));
        let mut post = Snapshot::new();
        post.insert(f1.clone(), linear_graph(&["x1", "A1"]));
        post.insert(f3.clone(), linear_graph(&["x2", "C1"]));

        let pair = SnapshotPair::align(&pre, &post);
        assert_eq!(pair.len(), 3);
        let by_flow: BTreeMap<_, _> = pair.fecs.iter().map(|e| (e.flow.clone(), e)).collect();
        // f1: both sides present
        assert!(by_flow[&f1].pre.carries_traffic());
        assert!(by_flow[&f1].post.carries_traffic());
        // f2: removed by the change
        assert!(by_flow[&f2].pre.carries_traffic());
        assert!(!by_flow[&f2].post.carries_traffic());
        // f3: added by the change
        assert!(!by_flow[&f3].pre.carries_traffic());
        assert!(by_flow[&f3].post.carries_traffic());
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut snap = Snapshot::new();
        snap.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1", "D1"]));
        let json = snap.to_json().unwrap();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.iter().next().unwrap().1, snap.iter().next().unwrap().1);
    }

    #[test]
    fn pair_json_roundtrip() {
        let mut pre = Snapshot::new();
        pre.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1"]));
        let pair = SnapshotPair::align(&pre, &Snapshot::new());
        let json = pair.to_json().unwrap();
        let back = SnapshotPair::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert!(!back.fecs[0].post.carries_traffic());
    }

    #[test]
    fn from_iterator() {
        let snap: Snapshot = vec![
            (flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1"])),
            (flow("10.0.1.0/24", "x2"), linear_graph(&["x2", "B1"])),
        ]
        .into_iter()
        .collect();
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn entry_errors_name_the_failing_index() {
        // entry 1 lacks `graph`: the error must say which of the N failed
        let json = r#"{"fecs": [
            {"flow": {"dst": "10.0.0.0/24", "ingress": "x1"},
             "graph": {"vertices": [], "edges": [], "sources": [], "sinks": [], "drops": []}},
            {"flow": {"dst": "10.0.1.0/24", "ingress": "x1"}}
        ]}"#;
        let err = Snapshot::from_json(json).unwrap_err();
        assert!(err.to_string().contains("fecs[1]"), "{err}");
        assert!(err.to_string().contains("graph"), "{err}");
    }

    // ---- streaming reader/writer ------------------------------------

    fn three_fec_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1", "D1"]));
        snap.insert(flow("10.0.1.0/24", "x1"), linear_graph(&["x1", "B1"]));
        snap.insert(flow("10.0.2.0/24", "x2"), linear_graph(&["x2", "C1"]));
        snap
    }

    #[test]
    fn streaming_reader_agrees_with_batch_loader() {
        let snap = three_fec_snapshot();
        let json = snap.to_json().unwrap();
        let streamed = Snapshot::from_reader(json.as_bytes()).unwrap();
        assert_eq!(streamed.len(), snap.len());
        for ((f1, g1), (f2, g2)) in streamed.iter().zip(snap.iter()) {
            assert_eq!(f1, f2);
            assert_eq!(g1, g2);
        }
    }

    #[test]
    fn streaming_writer_matches_to_json_bytes() {
        let snap = three_fec_snapshot();
        let mut writer = SnapshotWriter::new(Vec::new()).unwrap();
        for (f, g) in snap.iter() {
            writer.write(f, g).unwrap();
        }
        assert_eq!(writer.written(), 3);
        let bytes = writer.finish().unwrap();
        // fed in flow order, the writer reproduces to_json byte-for-byte
        assert_eq!(String::from_utf8(bytes).unwrap(), snap.to_json().unwrap());
    }

    #[test]
    fn mid_record_truncation_reports_offset_and_entry() {
        let json = three_fec_snapshot().to_json().unwrap();
        // cut inside the second record
        let second = json.match_indices("{\"flow\"").nth(1).unwrap().0;
        let cut = &json[..second + 20];
        let err = Snapshot::from_reader(cut.as_bytes()).unwrap_err();
        assert_eq!(err.entry_index(), Some(1), "{err}");
        let offset = err.byte_offset().expect("offset is tracked");
        assert!(offset as usize <= cut.len());
        assert!(offset as usize >= second, "{err}");
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn duplicate_flow_keys_are_rejected_with_index() {
        let g = linear_graph(&["x1", "A1"]);
        let mut writer = SnapshotWriter::new(Vec::new()).unwrap();
        writer.write(&flow("10.0.0.0/24", "x1"), &g).unwrap();
        writer.write(&flow("10.0.1.0/24", "x1"), &g).unwrap();
        writer.write(&flow("10.0.0.0/24", "x1"), &g).unwrap(); // dup of #0
        let bytes = writer.finish().unwrap();
        let err = Snapshot::from_reader(&bytes[..]).unwrap_err();
        assert_eq!(err.entry_index(), Some(2), "{err}");
        assert!(err.to_string().contains("duplicate flow"), "{err}");
        assert!(err.byte_offset().is_some());
    }

    #[test]
    fn non_object_top_level_is_rejected() {
        for bad in ["[]", "42", "\"fecs\"", "null"] {
            let err = Snapshot::from_reader(bad.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("expected an object"), "{err}");
        }
        // an object without `fecs`, and one with a stray leading field
        let err = Snapshot::from_reader(&b"{}"[..]).unwrap_err();
        assert!(err.to_string().contains("missing field `fecs`"), "{err}");
        let err = Snapshot::from_reader(&br#"{"meta": 1, "fecs": []}"#[..]).unwrap_err();
        assert!(
            err.to_string().contains("expected the `fecs` field"),
            "{err}"
        );
        // trailing fields after the records are also structural errors
        let err = Snapshot::from_reader(&br#"{"fecs": [], "meta": 1}"#[..]).unwrap_err();
        assert!(err.to_string().contains("unexpected field `meta`"), "{err}");
    }

    #[test]
    fn record_level_mismatches_carry_entry_and_offset() {
        let json = br#"{"fecs": [{"graph": {"vertices": [], "edges": [],
                        "sources": [], "sinks": [], "drops": []}}]}"#;
        let err = Snapshot::from_reader(&json[..]).unwrap_err();
        assert_eq!(err.entry_index(), Some(0));
        assert!(err.to_string().contains("missing field `flow`"), "{err}");
        assert!(err.byte_offset().is_some());
    }

    #[test]
    fn reader_is_fused_after_an_error() {
        let mut reader = SnapshotReader::new(&b"[]"[..]);
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn error_label_prefixes_the_message() {
        let reader = SnapshotReader::new(&b"[]"[..]).with_label("pre.json");
        let err = reader.collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err.label(), Some("pre.json"));
        assert!(err.to_string().starts_with("pre.json: "), "{err}");
    }

    #[test]
    fn framer_spans_decode_to_the_reader_records() {
        let snap = three_fec_snapshot();
        let json = snap.to_json().unwrap();
        let framed: Vec<RawRecord> = SnapshotFramer::new(json.as_bytes(), "pre.json")
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(framed.len(), snap.len());
        for (ix, raw) in framed.iter().enumerate() {
            assert_eq!(raw.index, ix);
            // the span sits at its recorded offset in the document
            let bytes = raw.json_bytes();
            let end = raw.offset as usize + bytes.len();
            assert_eq!(json.as_bytes()[raw.offset as usize..end], bytes[..]);
        }
        let decoded: Vec<_> = framed.iter().map(|r| r.decode(None).unwrap()).collect();
        for ((f1, g1), (f2, g2)) in decoded.iter().zip(snap.iter()) {
            assert_eq!(f1, f2);
            assert_eq!(g1, g2);
        }
    }

    #[test]
    fn framer_reports_syntax_errors_like_the_reader() {
        // truncation and structural errors must carry the same entry and
        // offset whether framing or decoding
        let json = three_fec_snapshot().to_json().unwrap();
        let second = json.match_indices("{\"flow\"").nth(1).unwrap().0;
        let cut = &json[..second + 20];
        let reader_err = SnapshotReader::new(cut.as_bytes())
            .with_label("pre.json")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        let framer_err = SnapshotFramer::new(cut.as_bytes(), "pre.json")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert_eq!(framer_err, reader_err);
    }

    #[test]
    fn raw_record_decode_names_missing_fields_at_the_span() {
        let json = br#"{"fecs": [{"graph": {"vertices": [], "edges": [],
                        "sources": [], "sinks": [], "drops": []}}]}"#;
        let raw = SnapshotFramer::new(&json[..], "pre.json")
            .next()
            .unwrap()
            .unwrap();
        let err = raw.decode(Some("pre.json")).unwrap_err();
        assert_eq!(err.entry_index(), Some(0));
        assert_eq!(err.byte_offset(), Some(raw.offset));
        assert_eq!(err.label(), Some("pre.json"));
        assert!(err.to_string().contains("missing field `flow`"), "{err}");
    }

    #[test]
    fn gzipped_snapshots_ride_the_same_reader() {
        use flate2::{write::GzEncoder, Compression};
        let snap = three_fec_snapshot();
        let json = snap.to_json().unwrap();
        let mut enc = GzEncoder::new(Vec::new(), Compression::default());
        enc.write_all(json.as_bytes()).unwrap();
        let gz = enc.finish().unwrap();

        let dir = std::env::temp_dir().join(format!("rela-gz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gz_path = dir.join("snap.json.gz");
        let plain_path = dir.join("snap.json");
        std::fs::write(&gz_path, &gz).unwrap();
        std::fs::write(&plain_path, &json).unwrap();

        for path in [&gz_path, &plain_path] {
            let source = snapshot_source(path).unwrap();
            let streamed: Vec<_> = SnapshotReader::new(source)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(streamed.len(), snap.len());
            for ((f1, g1), (f2, g2)) in streamed.iter().zip(snap.iter()) {
                assert_eq!(f1, f2);
                assert_eq!(g1, g2);
            }
        }
        // offsets in errors are decompressed-stream offsets
        let cut = &gz[..gz.len() / 2];
        std::fs::write(&gz_path, cut).unwrap();
        let err = SnapshotReader::new(snapshot_source(&gz_path).unwrap())
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(err.to_string().contains("io error"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- binary container & span splitting --------------------------

    fn pack(snap: &Snapshot) -> Vec<u8> {
        let mut writer = BinarySnapshotWriter::new(Vec::new()).unwrap();
        for (f, g) in snap.iter() {
            writer.write(f, g).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn binary_snapshots_ride_the_same_reader() {
        let snap = three_fec_snapshot();
        let packed = pack(&snap);
        assert_eq!(&packed[..4], &BINARY_MAGIC);
        let streamed = Snapshot::from_reader(&packed[..]).unwrap();
        assert_eq!(streamed.len(), snap.len());
        for ((f1, g1), (f2, g2)) in streamed.iter().zip(snap.iter()) {
            assert_eq!(f1, f2);
            assert_eq!(g1, g2);
        }
    }

    #[test]
    fn binary_spans_match_json_spans_byte_for_byte() {
        // byte-level admission requires both containers to yield the
        // exact same record spans — the content hashes must agree
        let snap = three_fec_snapshot();
        let json = snap.to_json().unwrap();
        let packed = pack(&snap);
        let from_json: Vec<RawRecord> = SnapshotFramer::new(json.as_bytes(), "a")
            .collect::<Result<_, _>>()
            .unwrap();
        let from_bin: Vec<RawRecord> = SnapshotFramer::new(&packed[..], "b")
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(from_json.len(), from_bin.len());
        for (a, b) in from_json.iter().zip(&from_bin) {
            assert_eq!(a.json_bytes(), b.json_bytes());
            assert_eq!(a.index, b.index);
            // the located value spans agree too, across body encodings
            let (af, ag) = a.split_spans(None).unwrap();
            let (bf, bg) = b.split_spans(None).unwrap();
            assert_eq!(af, bf);
            assert_eq!(ag, bg);
        }
    }

    #[test]
    fn binary_truncation_reports_offset_and_entry() {
        let snap = three_fec_snapshot();
        let packed = pack(&snap);
        // find the second record's start: walk one record from offset 8
        let second = {
            let flow_len = u32::from_le_bytes(packed[8..12].try_into().unwrap()) as usize;
            let graph_at = 12 + flow_len;
            let graph_len =
                u32::from_le_bytes(packed[graph_at..graph_at + 4].try_into().unwrap()) as usize;
            graph_at + 4 + graph_len
        };
        let cut = &packed[..second + 6];
        let err = SnapshotFramer::new(cut, "pre.bin")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert_eq!(err.entry_index(), Some(1), "{err}");
        assert!(err.byte_offset().unwrap() as usize >= second, "{err}");
        assert!(err.to_string().contains("unexpected end"), "{err}");
        assert_eq!(err.label(), Some("pre.bin"));
    }

    #[test]
    fn binary_end_marker_is_required_and_final() {
        let snap = three_fec_snapshot();
        let packed = pack(&snap);
        // strip the sentinel: truncation error, not a clean end
        let err = SnapshotFramer::new(&packed[..packed.len() - 4], "x")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(err.to_string().contains("unexpected end"), "{err}");
        // trailing bytes after the sentinel are rejected
        let mut extra = packed.clone();
        extra.push(0);
        let err = SnapshotFramer::new(&extra[..], "x")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn binary_version_mismatch_is_rejected() {
        let mut packed = pack(&three_fec_snapshot());
        packed[4..8].copy_from_slice(&7u32.to_le_bytes());
        let err = SnapshotFramer::new(&packed[..], "x")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported binary snapshot version 7"),
            "{err}"
        );
    }

    #[test]
    fn short_inputs_sniff_as_json() {
        // fewer than 4 bytes cannot be a binary header; the JSON reader
        // owns the (syntax) error
        let err = Snapshot::from_reader(&b"{"[..]).unwrap_err();
        assert!(err.byte_offset().is_some(), "{err}");
        let err = Snapshot::from_reader(&b""[..]).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn split_spans_locates_values_across_encodings() {
        let cases = [
            r#"{"flow":{"dst":"10.0.0.0/24"},"graph":[1,2,{"a":"]"}]}"#,
            r#"{ "graph" : [1,2] , "flow" : {"dst":"10.0.0.0/24"} }"#,
            "{\n\t\"flow\": \"f\\\"1\",\n\t\"graph\": null\n}",
            r#"{"extra":7,"flow":true,"graph":"{not json}"}"#,
        ];
        for case in cases {
            let raw = RawRecord::from_json_span(case.as_bytes().to_vec(), 3, 1);
            let (flow, graph) = raw.split_spans(None).unwrap();
            // each located span must itself be a parsable JSON value
            for span in [flow, graph] {
                let text = std::str::from_utf8(span.as_slice()).unwrap();
                serde_json::from_str::<Value>(text).unwrap_or_else(|e| panic!("{case}: {e}"));
            }
        }
    }

    #[test]
    fn split_spans_missing_fields_match_the_decode_contract() {
        let raw = RawRecord::from_json_span(br#"{"graph": null}"#.to_vec(), 11, 4);
        let err = raw.split_spans(Some("pre.json")).unwrap_err();
        assert_eq!(err.entry_index(), Some(4));
        assert_eq!(err.byte_offset(), Some(11));
        assert_eq!(err.label(), Some("pre.json"));
        assert!(err.to_string().contains("missing field `flow`"), "{err}");
        let raw = RawRecord::from_json_span(br#"{"flow": null}"#.to_vec(), 0, 0);
        let err = raw.split_spans(None).unwrap_err();
        assert!(err.to_string().contains("missing field `graph`"), "{err}");
    }

    #[test]
    fn decode_flow_splits_canonical_records_and_falls_back() {
        let snap = three_fec_snapshot();
        let json = snap.to_json().unwrap();
        for raw in SnapshotFramer::new(json.as_bytes(), "pre.json") {
            let raw = raw.unwrap();
            match raw.decode_flow(Some("pre.json")).unwrap() {
                FlowDecoded::Split(flow, graph_span) => {
                    let (expect_flow, expect_graph) = raw.decode(None).unwrap();
                    assert_eq!(flow, expect_flow);
                    let graph = decode_graph_span(graph_span.as_slice()).unwrap();
                    assert_eq!(graph, expect_graph);
                }
                FlowDecoded::Full(..) => panic!("canonical record took the fallback"),
            }
        }
        // shape errors surface through the fallback with decode's message
        let raw = RawRecord::from_json_span(br#"{"graph": null}"#.to_vec(), 5, 2);
        let err = raw.decode_flow(None).unwrap_err();
        let expect = raw.decode(None).unwrap_err();
        assert_eq!(err, expect);
    }

    #[test]
    fn align_streaming_agrees_with_align() {
        // overlap, pre-only, and post-only flows, in mixed order
        let f_shared1 = flow("10.0.0.0/24", "x1");
        let f_shared2 = flow("10.0.3.0/24", "x2");
        let f_pre_only = flow("10.0.1.0/24", "x1");
        let f_post_only = flow("10.0.2.0/24", "x2");
        let mut pre = Snapshot::new();
        pre.insert(f_shared1.clone(), linear_graph(&["x1", "A1"]));
        pre.insert(f_pre_only.clone(), linear_graph(&["x1", "B1"]));
        pre.insert(f_shared2.clone(), linear_graph(&["x2", "C1"]));
        let mut post = Snapshot::new();
        post.insert(f_shared1.clone(), linear_graph(&["x1", "A1", "D1"]));
        post.insert(f_post_only.clone(), linear_graph(&["x2", "D1"]));
        post.insert(f_shared2.clone(), linear_graph(&["x2", "C1"]));

        let materialized = SnapshotPair::align(&pre, &post);
        let pre_json = pre.to_json().unwrap();
        let post_json = post.to_json().unwrap();
        let streamed = SnapshotPair::from_stream(SnapshotPair::align_streaming(
            SnapshotReader::new(pre_json.as_bytes()),
            SnapshotReader::new(post_json.as_bytes()),
        ))
        .unwrap();
        assert_eq!(streamed.len(), materialized.len());
        for (a, b) in streamed.fecs.iter().zip(&materialized.fecs) {
            assert_eq!(a.flow, b.flow);
            assert_eq!(a.pre, b.pre);
            assert_eq!(a.post, b.post);
        }
    }

    #[test]
    fn align_streaming_spills_only_unmatched_records() {
        // identical key sets in identical order: every pull pairs up, so
        // matched FECs appear before the streams are exhausted and the
        // pending maps never grow beyond one record
        let snap = three_fec_snapshot();
        let json = snap.to_json().unwrap();
        let mut stream = SnapshotPair::align_streaming(
            SnapshotReader::new(json.as_bytes()),
            SnapshotReader::new(json.as_bytes()),
        );
        let first = stream.next().unwrap().unwrap();
        assert!(first.pre.carries_traffic());
        assert!(
            stream.pre_pending.len() <= 1 && stream.post_pending.is_empty(),
            "join state spilled whole snapshots: {} / {}",
            stream.pre_pending.len(),
            stream.post_pending.len()
        );
        let rest: Result<Vec<_>, _> = stream.collect();
        assert_eq!(rest.unwrap().len() + 1, snap.len());
    }

    #[test]
    fn align_streaming_surfaces_side_errors() {
        let good = three_fec_snapshot().to_json().unwrap();
        let bad = &good[..good.len() / 2];
        let err = SnapshotPair::from_stream(SnapshotPair::align_streaming(
            SnapshotReader::new(good.as_bytes()).with_label("pre.json"),
            SnapshotReader::new(bad.as_bytes()).with_label("post.json"),
        ))
        .unwrap_err();
        assert_eq!(err.label(), Some("post.json"), "{err}");
        assert!(err.byte_offset().is_some());
    }
}
