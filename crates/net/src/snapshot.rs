//! Network snapshots: the per-FEC forwarding state of one network
//! version, and the aligned pre/post pair that Rela checks.
//!
//! The paper's workflow (§2.3, §7) simulates the pre- and post-change
//! networks, computes forwarding paths for the flows observed in the last
//! hour, aggregates them into FECs, and hands Rela one forwarding graph
//! per FEC per snapshot. [`SnapshotPair::align`] joins the two snapshots
//! on the flow key; a flow absent from one side gets an empty graph
//! (the network does not carry it).

use crate::fec::FlowSpec;
use crate::graph::ForwardingGraph;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Forwarding state for every traffic class of one network version.
///
/// Serializes as a list of `{flow, graph}` entries (JSON object keys must
/// be strings, and a [`FlowSpec`] is structured).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    fecs: BTreeMap<FlowSpec, ForwardingGraph>,
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        let entries: Vec<Value> = self
            .fecs
            .iter()
            .map(|(flow, graph)| {
                Value::obj(vec![("flow", flow.to_value()), ("graph", graph.to_value())])
            })
            .collect();
        Value::obj(vec![("fecs", Value::Arr(entries))])
    }
}

impl Deserialize for Snapshot {
    fn from_value(value: &Value) -> Result<Snapshot, serde::Error> {
        let fecs_value = value
            .get("fecs")
            .ok_or_else(|| serde::Error::missing_field("fecs"))?;
        let entries = fecs_value
            .as_arr()
            .ok_or_else(|| serde::Error::mismatch("an array", fecs_value))?;
        let fecs = entries
            .iter()
            .map(|entry| {
                Ok((
                    serde::field::<FlowSpec>(entry, "flow")?,
                    serde::field::<ForwardingGraph>(entry, "graph")?,
                ))
            })
            .collect::<Result<_, serde::Error>>()?;
        Ok(Snapshot { fecs })
    }
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Set the forwarding graph for a flow.
    pub fn insert(&mut self, flow: FlowSpec, graph: ForwardingGraph) {
        self.fecs.insert(flow, graph);
    }

    /// The forwarding graph of a flow, if present.
    pub fn get(&self, flow: &FlowSpec) -> Option<&ForwardingGraph> {
        self.fecs.get(flow)
    }

    /// Iterate over all (flow, graph) pairs in flow order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowSpec, &ForwardingGraph)> {
        self.fecs.iter()
    }

    /// Number of traffic classes.
    pub fn len(&self) -> usize {
        self.fecs.len()
    }

    /// True if the snapshot has no traffic classes.
    pub fn is_empty(&self) -> bool {
        self.fecs.is_empty()
    }

    /// Serialize to the JSON exchange format.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from the JSON exchange format.
    pub fn from_json(json: &str) -> serde_json::Result<Snapshot> {
        serde_json::from_str(json)
    }
}

impl FromIterator<(FlowSpec, ForwardingGraph)> for Snapshot {
    fn from_iter<T: IntoIterator<Item = (FlowSpec, ForwardingGraph)>>(iter: T) -> Snapshot {
        Snapshot {
            fecs: iter.into_iter().collect(),
        }
    }
}

/// One aligned traffic class: its pre- and post-change forwarding graphs.
#[derive(Debug, Clone)]
pub struct AlignedFec {
    /// The traffic descriptor.
    pub flow: FlowSpec,
    /// Pre-change forwarding (empty graph if the flow was not carried).
    pub pre: ForwardingGraph,
    /// Post-change forwarding (empty graph if the flow is not carried).
    pub post: ForwardingGraph,
}

impl Serialize for AlignedFec {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("flow", self.flow.to_value()),
            ("pre", self.pre.to_value()),
            ("post", self.post.to_value()),
        ])
    }
}

impl Deserialize for AlignedFec {
    fn from_value(value: &Value) -> Result<AlignedFec, serde::Error> {
        Ok(AlignedFec {
            flow: serde::field(value, "flow")?,
            pre: serde::field(value, "pre")?,
            post: serde::field(value, "post")?,
        })
    }
}

/// A pre/post snapshot pair, aligned per flow.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPair {
    /// Aligned per-FEC entries, in flow order.
    pub fecs: Vec<AlignedFec>,
}

impl Serialize for SnapshotPair {
    fn to_value(&self) -> Value {
        Value::obj(vec![("fecs", self.fecs.to_value())])
    }
}

impl Deserialize for SnapshotPair {
    fn from_value(value: &Value) -> Result<SnapshotPair, serde::Error> {
        Ok(SnapshotPair {
            fecs: serde::field(value, "fecs")?,
        })
    }
}

impl SnapshotPair {
    /// Join two snapshots on the flow key. Flows present in either side
    /// appear once; the missing side gets an empty graph.
    pub fn align(pre: &Snapshot, post: &Snapshot) -> SnapshotPair {
        let mut keys: Vec<&FlowSpec> = pre.fecs.keys().chain(post.fecs.keys()).collect();
        keys.sort();
        keys.dedup();
        let fecs = keys
            .into_iter()
            .map(|flow| AlignedFec {
                flow: flow.clone(),
                pre: pre.get(flow).cloned().unwrap_or_default(),
                post: post.get(flow).cloned().unwrap_or_default(),
            })
            .collect();
        SnapshotPair { fecs }
    }

    /// Number of aligned traffic classes.
    pub fn len(&self) -> usize {
        self.fecs.len()
    }

    /// True if no traffic classes are present.
    pub fn is_empty(&self) -> bool {
        self.fecs.is_empty()
    }

    /// Serialize to the JSON exchange format.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from the JSON exchange format.
    pub fn from_json(json: &str) -> serde_json::Result<SnapshotPair> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::linear_graph;
    use crate::prefix::Ipv4Prefix;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn flow(dst: &str, ingress: &str) -> FlowSpec {
        FlowSpec::new(p(dst), ingress)
    }

    #[test]
    fn insert_and_get() {
        let mut snap = Snapshot::new();
        let f = flow("10.0.0.0/24", "x1");
        snap.insert(f.clone(), linear_graph(&["x1", "A1", "D1"]));
        assert_eq!(snap.len(), 1);
        assert!(snap.get(&f).is_some());
        assert!(snap.get(&flow("10.0.1.0/24", "x1")).is_none());
    }

    #[test]
    fn align_joins_on_flow_key() {
        let f1 = flow("10.0.0.0/24", "x1");
        let f2 = flow("10.0.1.0/24", "x1");
        let f3 = flow("10.0.2.0/24", "x2");
        let mut pre = Snapshot::new();
        pre.insert(f1.clone(), linear_graph(&["x1", "A1"]));
        pre.insert(f2.clone(), linear_graph(&["x1", "B1"]));
        let mut post = Snapshot::new();
        post.insert(f1.clone(), linear_graph(&["x1", "A1"]));
        post.insert(f3.clone(), linear_graph(&["x2", "C1"]));

        let pair = SnapshotPair::align(&pre, &post);
        assert_eq!(pair.len(), 3);
        let by_flow: BTreeMap<_, _> = pair.fecs.iter().map(|e| (e.flow.clone(), e)).collect();
        // f1: both sides present
        assert!(by_flow[&f1].pre.carries_traffic());
        assert!(by_flow[&f1].post.carries_traffic());
        // f2: removed by the change
        assert!(by_flow[&f2].pre.carries_traffic());
        assert!(!by_flow[&f2].post.carries_traffic());
        // f3: added by the change
        assert!(!by_flow[&f3].pre.carries_traffic());
        assert!(by_flow[&f3].post.carries_traffic());
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut snap = Snapshot::new();
        snap.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1", "D1"]));
        let json = snap.to_json().unwrap();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.iter().next().unwrap().1, snap.iter().next().unwrap().1);
    }

    #[test]
    fn pair_json_roundtrip() {
        let mut pre = Snapshot::new();
        pre.insert(flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1"]));
        let pair = SnapshotPair::align(&pre, &Snapshot::new());
        let json = pair.to_json().unwrap();
        let back = SnapshotPair::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert!(!back.fecs[0].post.carries_traffic());
    }

    #[test]
    fn from_iterator() {
        let snap: Snapshot = vec![
            (flow("10.0.0.0/24", "x1"), linear_graph(&["x1", "A1"])),
            (flow("10.0.1.0/24", "x2"), linear_graph(&["x2", "B1"])),
        ]
        .into_iter()
        .collect();
        assert_eq!(snap.len(), 2);
    }
}
