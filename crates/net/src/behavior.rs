//! Behavior-class identity for forwarding graphs.
//!
//! The paper's headline scaling result (§7, §8.2: ~10⁶ traffic classes
//! validated in minutes) rests on an observation this module makes
//! precise: vast numbers of FECs share *identical* forwarding behavior,
//! so a checker only needs to decide each distinct behavior once. A
//! [`BehaviorHash`] is a stable 128-bit content fingerprint of one
//! graph's forwarding behavior at a chosen granularity; FECs whose
//! `(pre, post)` fingerprints collide form a behavior class, and the
//! checker verifies one representative per class.
//!
//! Two guarantees make broadcasting a representative's verdict sound:
//!
//! 1. **Canonical ordering.** The fingerprint is computed over a
//!    canonical form of the graph — vertices sorted by device name,
//!    edges remapped and sorted, source/sink/drop marks sorted — so
//!    insertion order never splits (or merges) a class.
//! 2. **Granularity awareness, downward-closed.** At [`Granularity::Group`]
//!    only the group labels of vertices are hashed (devices that differ
//!    but sit in the same groups dedup together); at
//!    [`Granularity::Device`] device names are hashed and parallel edges
//!    collapse; at [`Granularity::Interface`] the full link structure
//!    including ports and edge multiplicity is hashed. Interface
//!    fidelity is the finest: equal interface hashes imply equal
//!    behavior at every granularity *and* equal link-level path counts,
//!    which is what ECMP `limit` checks decide on.
//!
//! Checkers that want byte-identical output for every member of a class
//! (not just language-equal verdicts) should decide the representative
//! on its [`canonical_graph`] — the canonical form of every member of a
//! class compiles to a structurally identical automaton.

use crate::db::LocationDb;
use crate::graph::{Edge, ForwardingGraph};
use crate::location::Granularity;

/// A stable 128-bit fingerprint of one graph's forwarding behavior at a
/// granularity. Equal hashes ⇒ identical behavior (up to the ~2⁻¹²⁸
/// collision probability of the underlying FNV-1a construction); the
/// hash is a pure function of graph *content*, independent of vertex or
/// edge insertion order, process, and platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BehaviorHash(u128);

impl BehaviorHash {
    /// The raw fingerprint value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuild a hash from its raw value (the inverse of [`as_u128`];
    /// used when keys round-trip through persistent stores).
    ///
    /// [`as_u128`]: BehaviorHash::as_u128
    pub fn from_u128(raw: u128) -> BehaviorHash {
        BehaviorHash(raw)
    }
}

impl std::fmt::Display for BehaviorHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Error parsing a [`BehaviorHash`] from its 32-hex-digit rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHashError;

impl std::fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("behavior hashes are exactly 32 lowercase hex digits")
    }
}

impl std::error::Error for ParseHashError {}

impl std::str::FromStr for BehaviorHash {
    type Err = ParseHashError;

    /// Parse the `Display` rendering back: exactly 32 hex digits.
    fn from_str(s: &str) -> Result<BehaviorHash, ParseHashError> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseHashError);
        }
        u128::from_str_radix(s, 16)
            .map(BehaviorHash)
            .map_err(|_| ParseHashError)
    }
}

/// Fingerprint arbitrary bytes with the same 128-bit FNV-1a construction
/// behavior hashes use — the workspace's one content-hash primitive
/// (spec epochs, cache file names) so stores stay comparable across
/// processes and platforms.
pub fn content_hash128(bytes: &[u8]) -> u128 {
    let mut h = Fnv::new();
    h.bytes(bytes);
    h.0
}

/// 128-bit FNV-1a. Hand-rolled because the workspace builds without
/// crates.io; 128 bits keeps the birthday bound far beyond the 10⁶-FEC
/// scale the checker targets.
struct Fnv(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// A length-prefix-free string feed: terminate with a byte that
    /// cannot appear in UTF-8, so `("ab", "c")` ≠ `("a", "bc")`.
    fn text(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xff]);
    }

    fn num(&mut self, n: usize) {
        self.bytes(&(n as u64).to_le_bytes());
    }
}

/// Vertex indices in canonical order: sorted by device name, ties (only
/// possible in graphs that fail `validate`) broken by original index so
/// the order is still deterministic.
fn canonical_order(graph: &ForwardingGraph) -> (Vec<usize>, Vec<usize>) {
    let mut order: Vec<usize> = (0..graph.vertices.len()).collect();
    order.sort_by(|&a, &b| graph.vertices[a].cmp(&graph.vertices[b]).then(a.cmp(&b)));
    let mut rank = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        rank[old] = new;
    }
    (order, rank)
}

/// The canonical form of a graph: same behavior, normalized layout.
/// Vertices are sorted by device name, edges are remapped and sorted by
/// `(from, to, src_port, dst_port)` (multiplicity preserved), and the
/// source/sink/drop marks are remapped and sorted. Idempotent, and
/// language-preserving at every granularity.
pub fn canonical_graph(graph: &ForwardingGraph) -> ForwardingGraph {
    let (order, rank) = canonical_order(graph);
    let vertices: Vec<String> = order.iter().map(|&o| graph.vertices[o].clone()).collect();
    let mut edges: Vec<Edge> = graph
        .edges
        .iter()
        .map(|e| Edge {
            from: rank[e.from],
            to: rank[e.to],
            src_port: e.src_port.clone(),
            dst_port: e.dst_port.clone(),
        })
        .collect();
    edges.sort_by(|a, b| {
        (a.from, a.to, &a.src_port, &a.dst_port).cmp(&(b.from, b.to, &b.src_port, &b.dst_port))
    });
    let remap = |marks: &[usize]| -> Vec<usize> {
        let mut v: Vec<usize> = marks.iter().map(|&m| rank[m]).collect();
        v.sort_unstable();
        v
    };
    ForwardingGraph {
        vertices,
        edges,
        sources: remap(&graph.sources),
        sinks: remap(&graph.sinks),
        drops: remap(&graph.drops),
    }
}

/// Fingerprint `graph`'s forwarding behavior at `level`.
///
/// Soundness contract: if two graphs hash equal at `level`, then their
/// [`canonical_graph`] forms compile (via `graph_to_fsa` at `level`, or
/// any coarser granularity for [`Granularity::Interface`] hashes) to
/// structurally identical automata, so a checker may decide one and
/// reuse the verdict for the other. At interface level, equal hashes
/// additionally imply equal link-level path counts.
///
/// # Examples
///
/// ```
/// use rela_net::{behavior_hash, linear_graph, Device, Granularity, LocationDb};
///
/// let mut db = LocationDb::new();
/// db.add_device(Device::new("a", "G"));
/// db.add_device(Device::new("b", "G"));
///
/// let g1 = linear_graph(&["a", "b"]);
/// let g2 = linear_graph(&["a", "b"]);
/// assert_eq!(
///     behavior_hash(&g1, &db, Granularity::Device),
///     behavior_hash(&g2, &db, Granularity::Device),
/// );
/// ```
pub fn behavior_hash(graph: &ForwardingGraph, db: &LocationDb, level: Granularity) -> BehaviorHash {
    let (order, rank) = canonical_order(graph);
    let mut h = Fnv::new();
    h.num(match level {
        Granularity::Device => 0,
        Granularity::Group => 1,
        Granularity::Interface => 2,
    });
    // vertices, canonically ordered, labelled at the hashing granularity
    h.num(graph.vertices.len());
    for &o in &order {
        let name = &graph.vertices[o];
        match level {
            Granularity::Group => h.text(db.group_of(name).unwrap_or(name)),
            Granularity::Device | Granularity::Interface => h.text(name),
        }
    }
    // edges: port-faithful with multiplicity at interface level; collapsed
    // to the (from, to) adjacency the FSA actually uses below that
    match level {
        Granularity::Interface => {
            let mut edges: Vec<(usize, usize, &str, &str)> = graph
                .edges
                .iter()
                .map(|e| (rank[e.from], rank[e.to], &*e.src_port, &*e.dst_port))
                .collect();
            edges.sort_unstable();
            h.num(edges.len());
            for (from, to, src_port, dst_port) in edges {
                h.num(from);
                h.num(to);
                h.text(src_port);
                h.text(dst_port);
            }
        }
        Granularity::Device | Granularity::Group => {
            let mut edges: Vec<(usize, usize)> = graph
                .edges
                .iter()
                .map(|e| (rank[e.from], rank[e.to]))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            h.num(edges.len());
            for (from, to) in edges {
                h.num(from);
                h.num(to);
            }
        }
    }
    // marks (sorted, multiplicity preserved — duplicate sources/sinks
    // count multiply in `path_count`)
    for marks in [&graph.sources, &graph.sinks, &graph.drops] {
        let mut v: Vec<usize> = marks.iter().map(|&m| rank[m]).collect();
        v.sort_unstable();
        h.num(v.len());
        for m in v {
            h.num(m);
        }
    }
    BehaviorHash(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::linear_graph;
    use crate::location::Device;

    fn db() -> LocationDb {
        let mut db = LocationDb::new();
        for (name, group) in [
            ("a1", "A"),
            ("a2", "A"),
            ("b1", "B"),
            ("c1", "C"),
            ("d1", "D"),
        ] {
            db.add_device(Device::new(name, group));
        }
        db
    }

    /// The same structure inserted in a different vertex order.
    fn permuted_pair() -> (ForwardingGraph, ForwardingGraph) {
        let g1 = linear_graph(&["a1", "b1", "c1"]);
        let mut g2 = ForwardingGraph::new();
        let c = g2.add_vertex("c1");
        let a = g2.add_vertex("a1");
        let b = g2.add_vertex("b1");
        g2.add_edge(a, b, "eth0", "eth1");
        g2.add_edge(b, c, "eth0", "eth1");
        g2.sources.push(a);
        g2.sinks.push(c);
        (g1, g2)
    }

    #[test]
    fn insertion_order_does_not_split_classes() {
        let db = db();
        let (g1, g2) = permuted_pair();
        for level in [
            Granularity::Device,
            Granularity::Group,
            Granularity::Interface,
        ] {
            assert_eq!(
                behavior_hash(&g1, &db, level),
                behavior_hash(&g2, &db, level),
                "{level:?}"
            );
        }
        assert_eq!(canonical_graph(&g1), canonical_graph(&g2));
    }

    #[test]
    fn canonical_graph_is_idempotent_and_behavior_preserving() {
        let (g1, _) = permuted_pair();
        let c = canonical_graph(&g1);
        assert_eq!(canonical_graph(&c), c);
        assert_eq!(c.path_count(), g1.path_count());
        let mut before = g1.device_paths(100);
        let mut after = c.device_paths(100);
        before.sort();
        after.sort();
        assert_eq!(before, after);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn different_paths_hash_differently() {
        let db = db();
        let g1 = linear_graph(&["a1", "b1", "c1"]);
        let g2 = linear_graph(&["a1", "d1", "c1"]);
        for level in [
            Granularity::Device,
            Granularity::Group,
            Granularity::Interface,
        ] {
            assert_ne!(
                behavior_hash(&g1, &db, level),
                behavior_hash(&g2, &db, level),
                "{level:?}"
            );
        }
    }

    #[test]
    fn group_level_merges_same_group_devices() {
        let db = db();
        // a1 and a2 share group A: group-equal, device-distinct
        let g1 = linear_graph(&["a1", "b1"]);
        let g2 = linear_graph(&["a2", "b1"]);
        assert_eq!(
            behavior_hash(&g1, &db, Granularity::Group),
            behavior_hash(&g2, &db, Granularity::Group)
        );
        assert_ne!(
            behavior_hash(&g1, &db, Granularity::Device),
            behavior_hash(&g2, &db, Granularity::Device)
        );
    }

    #[test]
    fn ports_only_matter_at_interface_level() {
        let db = db();
        let mut g1 = ForwardingGraph::new();
        let s = g1.add_vertex("a1");
        let t = g1.add_vertex("b1");
        g1.add_edge(s, t, "eth0", "eth0");
        g1.sources.push(s);
        g1.sinks.push(t);
        let mut g2 = g1.clone();
        g2.edges[0].src_port = "eth9".to_owned();
        assert_eq!(
            behavior_hash(&g1, &db, Granularity::Device),
            behavior_hash(&g2, &db, Granularity::Device)
        );
        assert_ne!(
            behavior_hash(&g1, &db, Granularity::Interface),
            behavior_hash(&g2, &db, Granularity::Interface)
        );
    }

    #[test]
    fn parallel_links_only_matter_at_interface_level() {
        let db = db();
        let mut g1 = ForwardingGraph::new();
        let s = g1.add_vertex("a1");
        let t = g1.add_vertex("b1");
        g1.add_edge(s, t, "e0", "e0");
        g1.sources.push(s);
        g1.sinks.push(t);
        let mut g2 = g1.clone();
        g2.add_edge(s, t, "e1", "e1");
        // device-level FSAs are identical (parallel edges collapse)...
        assert_eq!(
            behavior_hash(&g1, &db, Granularity::Device),
            behavior_hash(&g2, &db, Granularity::Device)
        );
        // ...but link-level path counts differ, which interface fidelity
        // (what ECMP limit checks hash at) must see
        assert_ne!(
            behavior_hash(&g1, &db, Granularity::Interface),
            behavior_hash(&g2, &db, Granularity::Interface)
        );
        assert_ne!(g1.path_count(), g2.path_count());
    }

    #[test]
    fn marks_are_part_of_the_behavior() {
        let db = db();
        let base = linear_graph(&["a1", "b1"]);
        let mut dropped = base.clone();
        dropped.sinks.clear();
        dropped.drops.push(1);
        assert_ne!(
            behavior_hash(&base, &db, Granularity::Device),
            behavior_hash(&dropped, &db, Granularity::Device)
        );
    }

    #[test]
    fn hash_display_roundtrips_through_from_str() {
        let db = db();
        let h = behavior_hash(&linear_graph(&["a1", "b1"]), &db, Granularity::Device);
        let parsed: BehaviorHash = h.to_string().parse().unwrap();
        assert_eq!(parsed, h);
        assert_eq!(BehaviorHash::from_u128(h.as_u128()), h);
        assert!("xyz".parse::<BehaviorHash>().is_err());
        assert!("00".parse::<BehaviorHash>().is_err());
        // 33 digits is as invalid as 2
        assert!(format!("{h}0").parse::<BehaviorHash>().is_err());
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash128(b"spec"), content_hash128(b"spec"));
        assert_ne!(content_hash128(b"spec"), content_hash128(b"spec2"));
        assert_ne!(content_hash128(b""), content_hash128(b"\x00"));
    }

    #[test]
    fn hash_is_stable_across_calls() {
        let db = db();
        let g = linear_graph(&["a1", "b1", "c1"]);
        let h = behavior_hash(&g, &db, Granularity::Device);
        assert_eq!(h, behavior_hash(&g, &db, Granularity::Device));
        assert_eq!(
            h,
            behavior_hash(&canonical_graph(&g), &db, Granularity::Device)
        );
        // 32 hex chars, deterministic rendering
        assert_eq!(h.to_string().len(), 32);
    }
}
