//! Flow equivalence classes (FECs).
//!
//! A *flow* is "a 5-tuple that starts at a particular point in the
//! network" (paper §2.3); flows with identical forwarding paths in both
//! snapshots are aggregated into equivalence classes. We key classes by
//! destination prefix, optional source prefix, and ingress device — the
//! fields the paper's prefix predicates filter on (§7).

use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// The traffic descriptor of one flow equivalence class.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowSpec {
    /// Destination prefix.
    pub dst: Ipv4Prefix,
    /// Source prefix, when the class is source-specific. Omitted from the
    /// serialized form when absent.
    pub src: Option<Ipv4Prefix>,
    /// Ingress device where the flow enters the network.
    pub ingress: String,
}

impl Serialize for FlowSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![("dst", self.dst.to_value())];
        if let Some(src) = &self.src {
            fields.push(("src", src.to_value()));
        }
        fields.push(("ingress", self.ingress.to_value()));
        Value::obj(fields)
    }
}

impl Deserialize for FlowSpec {
    fn from_value(value: &Value) -> Result<FlowSpec, serde::Error> {
        Ok(FlowSpec {
            dst: serde::field(value, "dst")?,
            src: serde::field_or_default(value, "src")?,
            ingress: serde::field(value, "ingress")?,
        })
    }
}

impl FlowSpec {
    /// A destination-and-ingress keyed class (the common case).
    pub fn new(dst: Ipv4Prefix, ingress: impl Into<String>) -> FlowSpec {
        FlowSpec {
            dst,
            src: None,
            ingress: ingress.into(),
        }
    }

    /// Add a source prefix.
    pub fn with_src(mut self, src: Ipv4Prefix) -> FlowSpec {
        self.src = Some(src);
        self
    }
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.dst)?;
        if let Some(src) = &self.src {
            write!(f, ", src={src}")?;
        }
        write!(f, ", ingress={})", self.ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn display_matches_paper_table1_style() {
        let flow = FlowSpec::new(p("10.1.0.0/16"), "x1");
        assert_eq!(flow.to_string(), "(10.1.0.0/16, ingress=x1)");
        let flow2 = flow.clone().with_src(p("10.9.0.0/16"));
        assert_eq!(
            flow2.to_string(),
            "(10.1.0.0/16, src=10.9.0.0/16, ingress=x1)"
        );
    }

    #[test]
    fn ordering_is_stable() {
        let a = FlowSpec::new(p("10.0.0.0/16"), "x1");
        let b = FlowSpec::new(p("10.1.0.0/16"), "x1");
        assert!(a < b);
    }

    #[test]
    fn serde_roundtrip() {
        let flow = FlowSpec::new(p("10.1.0.0/16"), "x1").with_src(p("10.2.0.0/24"));
        let json = serde_json::to_string(&flow).unwrap();
        let back: FlowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, flow);
    }

    #[test]
    fn serde_omits_missing_src() {
        let flow = FlowSpec::new(p("10.1.0.0/16"), "x1");
        let json = serde_json::to_string(&flow).unwrap();
        assert!(!json.contains("src"));
    }
}
