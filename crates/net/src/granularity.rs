//! Path-level granularity conversion.
//!
//! These helpers coarsen explicit paths (sequences of location names) the
//! same way [`crate::fsa::graph_to_fsa`] coarsens automata: relabel each
//! hop to its coarser entity, then contract consecutive duplicates
//! ("stutters"). The reserved `drop` location is never contracted away.
//!
//! Used by the path-diff baseline and by tests that cross-check automata
//! against enumerated paths.

use crate::db::LocationDb;
use crate::location::{interface_device, DROP_LOCATION};

/// Contract consecutive duplicate hops, keeping `drop` markers.
fn contract(path: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(path.len());
    for hop in path {
        if out.last().map(|l| l == &hop).unwrap_or(false) && hop != DROP_LOCATION {
            continue;
        }
        out.push(hop);
    }
    out
}

/// Convert an interface-level path to a device-level path.
///
/// Interface names follow the `"{device}:{port}"` convention, so each hop
/// resolves locally; consecutive interfaces of the same device merge.
pub fn interface_path_to_device(path: &[String]) -> Vec<String> {
    contract(
        path.iter()
            .map(|hop| {
                if hop == DROP_LOCATION {
                    hop.clone()
                } else {
                    interface_device(hop).to_owned()
                }
            })
            .collect(),
    )
}

/// Convert a device-level path to a group-level path using the database.
/// Devices unknown to the database keep their own name (edge
/// pseudo-devices).
pub fn device_path_to_group(path: &[String], db: &LocationDb) -> Vec<String> {
    contract(
        path.iter()
            .map(|hop| {
                if hop == DROP_LOCATION {
                    hop.clone()
                } else {
                    db.group_of(hop).unwrap_or(hop).to_owned()
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Device;

    fn db() -> LocationDb {
        let mut db = LocationDb::new();
        db.add_device(Device::new("A1-r01", "A1"));
        db.add_device(Device::new("A1-r02", "A1"));
        db.add_device(Device::new("B1-r01", "B1"));
        db
    }

    fn path(hops: &[&str]) -> Vec<String> {
        hops.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn interface_to_device_merges_same_device() {
        let p = path(&["A1-r01:eth0", "A1-r02:eth1", "A1-r02:eth3", "B1-r01:eth0"]);
        assert_eq!(
            interface_path_to_device(&p),
            path(&["A1-r01", "A1-r02", "B1-r01"])
        );
    }

    #[test]
    fn device_to_group_contracts_stutters() {
        let p = path(&["A1-r01", "A1-r02", "B1-r01"]);
        assert_eq!(device_path_to_group(&p, &db()), path(&["A1", "B1"]));
    }

    #[test]
    fn group_reentry_preserved() {
        let p = path(&["A1-r01", "B1-r01", "A1-r02"]);
        assert_eq!(device_path_to_group(&p, &db()), path(&["A1", "B1", "A1"]));
    }

    #[test]
    fn drop_is_never_contracted() {
        let p = path(&["A1-r01", "drop"]);
        assert_eq!(device_path_to_group(&p, &db()), path(&["A1", "drop"]));
        let p2 = path(&["A1-r01:eth0", "drop"]);
        assert_eq!(interface_path_to_device(&p2), path(&["A1-r01", "drop"]));
    }

    #[test]
    fn unknown_devices_keep_name() {
        let p = path(&["edge-x1", "A1-r01"]);
        assert_eq!(device_path_to_group(&p, &db()), path(&["edge-x1", "A1"]));
    }

    #[test]
    fn empty_path_stays_empty() {
        assert!(interface_path_to_device(&[]).is_empty());
        assert!(device_path_to_group(&[], &db()).is_empty());
    }
}
