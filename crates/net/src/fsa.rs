//! Forwarding DAG → finite-state automaton, at a chosen granularity
//! (paper §6.1, "PreState and PostState symbols").
//!
//! - **Device level**: one FSA state per DAG vertex; an arc labelled with
//!   the downstream device per (deduplicated) edge; an initial state with
//!   an arc labelled with each source device.
//! - **Group level**: like device level, but arcs are labelled with the
//!   downstream *group*, and edges within one group become ε-arcs. This
//!   "stutter elimination" yields exactly the contracted group-level path
//!   language. (The paper merges same-entity vertices instead; merging
//!   can create spurious paths when a path re-enters a group, so we keep
//!   the DAG structure — see DESIGN.md §5.)
//! - **Interface level**: each edge contributes two symbols — the egress
//!   interface of the upstream device, then the ingress interface of the
//!   downstream device — via an intermediate state.
//!
//! Dropped traffic: each drop vertex gets an arc labelled with the
//! reserved `drop` location to a fresh accepting state, at every
//! granularity.

use crate::db::LocationDb;
use crate::graph::ForwardingGraph;
use crate::location::{Device, Granularity, DROP_LOCATION};
use rela_automata::{Nfa, SymSet, SymbolTable};
use std::collections::BTreeSet;

/// The group of `device`, falling back to the device's own name when the
/// database does not know it (e.g. pseudo-devices at the network edge).
fn group_or_self<'a>(db: &'a LocationDb, device: &'a str) -> &'a str {
    db.group_of(device).unwrap_or(device)
}

/// Build the FSA accepting exactly the paths of `graph` at `granularity`.
///
/// Location names are interned into `table`; reuse one table across all
/// automata that will be combined.
///
/// # Examples
///
/// ```
/// use rela_net::{graph_to_fsa, linear_graph, Granularity, LocationDb, Device};
/// use rela_automata::SymbolTable;
///
/// let mut db = LocationDb::new();
/// db.add_device(Device::new("A1-r01", "A1"));
/// db.add_device(Device::new("D1-r01", "D1"));
///
/// let g = linear_graph(&["A1-r01", "D1-r01"]);
/// let mut table = SymbolTable::new();
/// let fsa = graph_to_fsa(&g, &db, Granularity::Group, &mut table);
/// let a1 = table.lookup("A1").unwrap();
/// let d1 = table.lookup("D1").unwrap();
/// assert!(fsa.accepts(&[a1, d1]));
/// ```
pub fn graph_to_fsa(
    graph: &ForwardingGraph,
    db: &LocationDb,
    granularity: Granularity,
    table: &mut SymbolTable,
) -> Nfa {
    build_fsa(graph, db, granularity, &mut |name| table.intern(name))
}

/// Like [`graph_to_fsa`], but against a *read-only* symbol table: every
/// location the graph mentions must already be interned. This is the
/// hot-path variant — the checker pre-interns all locations once, then
/// shares one table immutably across worker threads instead of cloning
/// it per worker.
///
/// # Panics
///
/// Panics if the graph mentions a location absent from `table`.
pub fn graph_to_fsa_prepared(
    graph: &ForwardingGraph,
    db: &LocationDb,
    granularity: Granularity,
    table: &SymbolTable,
) -> Nfa {
    build_fsa(graph, db, granularity, &mut |name| {
        table
            .lookup(name)
            .unwrap_or_else(|| panic!("location `{name}` was not pre-interned"))
    })
}

fn build_fsa(
    graph: &ForwardingGraph,
    db: &LocationDb,
    granularity: Granularity,
    sym: &mut dyn FnMut(&str) -> rela_automata::Symbol,
) -> Nfa {
    let mut nfa = Nfa::new();
    let vstate: Vec<_> = graph.vertices.iter().map(|_| nfa.add_state()).collect();

    match granularity {
        Granularity::Device => {
            for &s in &graph.sources {
                let label = sym(&graph.vertices[s]);
                nfa.add_arc(nfa.start(), SymSet::singleton(label), vstate[s]);
            }
            let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
            for e in &graph.edges {
                if !seen.insert((e.from, e.to)) {
                    continue; // parallel edges are identical at device level
                }
                let label = sym(&graph.vertices[e.to]);
                nfa.add_arc(vstate[e.from], SymSet::singleton(label), vstate[e.to]);
            }
        }
        Granularity::Group => {
            for &s in &graph.sources {
                let label = sym(group_or_self(db, &graph.vertices[s]));
                nfa.add_arc(nfa.start(), SymSet::singleton(label), vstate[s]);
            }
            let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
            for e in &graph.edges {
                if !seen.insert((e.from, e.to)) {
                    continue;
                }
                let g_from = group_or_self(db, &graph.vertices[e.from]);
                let g_to = group_or_self(db, &graph.vertices[e.to]);
                if g_from == g_to {
                    // stutter: same group, no new path symbol
                    nfa.add_eps(vstate[e.from], vstate[e.to]);
                } else {
                    let label = sym(g_to);
                    nfa.add_arc(vstate[e.from], SymSet::singleton(label), vstate[e.to]);
                }
            }
        }
        Granularity::Interface => {
            for &s in &graph.sources {
                nfa.add_eps(nfa.start(), vstate[s]);
            }
            for e in &graph.edges {
                let out_if = sym(&Device::interface_name(
                    &graph.vertices[e.from],
                    &e.src_port,
                ));
                let in_if = sym(&Device::interface_name(&graph.vertices[e.to], &e.dst_port));
                let mid = nfa.add_state();
                nfa.add_arc(vstate[e.from], SymSet::singleton(out_if), mid);
                nfa.add_arc(mid, SymSet::singleton(in_if), vstate[e.to]);
            }
        }
    }

    for &s in &graph.sinks {
        nfa.set_accepting(vstate[s], true);
    }
    if !graph.drops.is_empty() {
        let drop_sym = sym(DROP_LOCATION);
        let drop_state = nfa.add_state();
        nfa.set_accepting(drop_state, true);
        for &d in &graph.drops {
            nfa.add_arc(vstate[d], SymSet::singleton(drop_sym), drop_state);
        }
    }
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::linear_graph;
    use rela_automata::Symbol;

    fn sample_db() -> LocationDb {
        let mut db = LocationDb::new();
        for (name, group) in [
            ("A1-r01", "A1"),
            ("A1-r02", "A1"),
            ("B1-r01", "B1"),
            ("D1-r01", "D1"),
        ] {
            db.add_device(Device::new(name, group));
        }
        db
    }

    fn syms(table: &SymbolTable, names: &[&str]) -> Vec<Symbol> {
        names
            .iter()
            .map(|n| table.lookup(n).unwrap_or_else(|| panic!("missing {n}")))
            .collect()
    }

    #[test]
    fn prepared_variant_matches_interning_variant() {
        let db = sample_db();
        let mut g = linear_graph(&["A1-r01", "A1-r02", "B1-r01"]);
        g.drops.push(2);
        g.sinks.clear();
        let probes: [(Granularity, Vec<&str>); 3] = [
            (
                Granularity::Device,
                vec!["A1-r01", "A1-r02", "B1-r01", DROP_LOCATION],
            ),
            (Granularity::Group, vec!["A1", "B1", DROP_LOCATION]),
            (
                Granularity::Interface,
                vec![
                    "A1-r01:eth0",
                    "A1-r02:eth1",
                    "A1-r02:eth0",
                    "B1-r01:eth1",
                    DROP_LOCATION,
                ],
            ),
        ];
        for (granularity, probe) in probes {
            let mut table = SymbolTable::new();
            let interned = graph_to_fsa(&g, &db, granularity, &mut table);
            let prepared = graph_to_fsa_prepared(&g, &db, granularity, &table);
            let word = syms(&table, &probe);
            assert!(interned.accepts(&word), "{granularity:?}");
            assert!(prepared.accepts(&word), "{granularity:?}");
            assert_eq!(interned.len(), prepared.len());
        }
    }

    #[test]
    #[should_panic(expected = "not pre-interned")]
    fn prepared_variant_rejects_unknown_locations() {
        let db = sample_db();
        let g = linear_graph(&["A1-r01", "B1-r01"]);
        let table = SymbolTable::new();
        let _ = graph_to_fsa_prepared(&g, &db, Granularity::Device, &table);
    }

    #[test]
    fn device_level_linear() {
        let db = sample_db();
        let g = linear_graph(&["A1-r01", "B1-r01", "D1-r01"]);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Device, &mut table);
        let w = syms(&table, &["A1-r01", "B1-r01", "D1-r01"]);
        assert!(fsa.accepts(&w));
        assert!(!fsa.accepts(&w[..2]));
    }

    #[test]
    fn group_level_contracts_stutters() {
        let db = sample_db();
        // A1-r01 → A1-r02 → D1-r01: two A1 hops contract to one
        let g = linear_graph(&["A1-r01", "A1-r02", "D1-r01"]);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Group, &mut table);
        let w = syms(&table, &["A1", "D1"]);
        assert!(fsa.accepts(&w));
        let a1 = table.lookup("A1").unwrap();
        let d1 = table.lookup("D1").unwrap();
        assert!(!fsa.accepts(&[a1, a1, d1]), "stutter must be contracted");
    }

    #[test]
    fn group_level_no_spurious_paths_on_reentry() {
        // A1-r01 → B1-r01 → A1-r02 → D1-r01 re-enters group A1;
        // vertex merging would also admit A1 D1 — we must not.
        let db = sample_db();
        let g = linear_graph(&["A1-r01", "B1-r01", "A1-r02", "D1-r01"]);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Group, &mut table);
        let good = syms(&table, &["A1", "B1", "A1", "D1"]);
        assert!(fsa.accepts(&good));
        let bad = syms(&table, &["A1", "D1"]);
        assert!(!fsa.accepts(&bad), "vertex merging artifact");
    }

    #[test]
    fn interface_level_two_symbols_per_link() {
        let db = sample_db();
        let g = linear_graph(&["A1-r01", "D1-r01"]);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Interface, &mut table);
        let w = syms(&table, &["A1-r01:eth0", "D1-r01:eth1"]);
        assert!(fsa.accepts(&w));
        assert!(!fsa.accepts(&w[..1]));
    }

    #[test]
    fn interface_level_parallel_links_are_distinct() {
        let db = sample_db();
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("A1-r01");
        let t = g.add_vertex("D1-r01");
        g.add_edge(s, t, "e0", "e0");
        g.add_edge(s, t, "e1", "e1");
        g.sources.push(s);
        g.sinks.push(t);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Interface, &mut table);
        assert!(fsa.accepts(&syms(&table, &["A1-r01:e0", "D1-r01:e0"])));
        assert!(fsa.accepts(&syms(&table, &["A1-r01:e1", "D1-r01:e1"])));
        // cross pairing is not a real link
        assert!(!fsa.accepts(&syms(&table, &["A1-r01:e0", "D1-r01:e1"])));
    }

    #[test]
    fn drop_paths_end_with_drop_symbol() {
        let db = sample_db();
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("A1-r01");
        let f = g.add_vertex("B1-r01");
        g.add_edge(s, f, "e0", "e0");
        g.sources.push(s);
        g.drops.push(f);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Device, &mut table);
        let w = syms(&table, &["A1-r01", "B1-r01", DROP_LOCATION]);
        assert!(fsa.accepts(&w));
        assert!(
            !fsa.accepts(&w[..2]),
            "dropped path must not count as delivery"
        );
    }

    #[test]
    fn ecmp_diamond_accepts_both_branches() {
        let db = sample_db();
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("A1-r01");
        let m1 = g.add_vertex("A1-r02");
        let m2 = g.add_vertex("B1-r01");
        let t = g.add_vertex("D1-r01");
        g.add_edge(s, m1, "e0", "e0");
        g.add_edge(s, m2, "e1", "e0");
        g.add_edge(m1, t, "e1", "e0");
        g.add_edge(m2, t, "e1", "e1");
        g.sources.push(s);
        g.sinks.push(t);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Device, &mut table);
        assert!(fsa.accepts(&syms(&table, &["A1-r01", "A1-r02", "D1-r01"])));
        assert!(fsa.accepts(&syms(&table, &["A1-r01", "B1-r01", "D1-r01"])));
        assert!(!fsa.accepts(&syms(&table, &["A1-r01", "D1-r01"])));
        // group level: the A1-internal hop contracts
        let fsa_g = graph_to_fsa(&g, &db, Granularity::Group, &mut table);
        assert!(fsa_g.accepts(&syms(&table, &["A1", "D1"])));
        assert!(fsa_g.accepts(&syms(&table, &["A1", "B1", "D1"])));
    }

    #[test]
    fn unknown_device_uses_own_name_as_group() {
        let db = sample_db();
        let g = linear_graph(&["x-edge", "A1-r01"]);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Group, &mut table);
        assert!(fsa.accepts(&syms(&table, &["x-edge", "A1"])));
    }

    #[test]
    fn empty_graph_gives_empty_language() {
        let db = sample_db();
        let g = ForwardingGraph::new();
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Device, &mut table);
        assert!(fsa.language_is_empty());
    }

    #[test]
    fn fsa_language_matches_device_paths_enumeration() {
        let db = sample_db();
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("A1-r01");
        let m1 = g.add_vertex("A1-r02");
        let t = g.add_vertex("D1-r01");
        let f = g.add_vertex("B1-r01");
        g.add_edge(s, m1, "e0", "e0");
        g.add_edge(m1, t, "e1", "e0");
        g.add_edge(s, f, "e2", "e0");
        g.sources.push(s);
        g.sinks.push(t);
        g.drops.push(f);
        let mut table = SymbolTable::new();
        let fsa = graph_to_fsa(&g, &db, Granularity::Device, &mut table);
        for path in g.device_paths(100) {
            let w: Vec<_> = path.iter().map(|n| table.lookup(n).unwrap()).collect();
            assert!(fsa.accepts(&w), "path {path:?} not accepted");
        }
    }
}
