//! The location database and its `where`-query language.
//!
//! Rela "is used in concert with a database that stores information about
//! all locations available in the network. Users can refer to a set of
//! locations within the same entity (such as a router group or a tier) by
//! issuing `where` queries" (paper §4). This module implements that
//! database: devices with attributes, and a small predicate language with
//! glob matching and boolean connectives.

use crate::location::{glob_match, Device, Granularity};
use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};

/// An attribute predicate used in `where` queries.
///
/// # Examples
///
/// ```
/// use rela_net::{AttrPred, Device, LocationDb, Granularity};
///
/// let mut db = LocationDb::new();
/// db.add_device(Device::new("A1-r01", "A1").with_attr("region", "A"));
/// db.add_device(Device::new("B1-r01", "B1").with_attr("region", "B"));
///
/// let q = AttrPred::eq("group", "A1");
/// assert_eq!(db.query(&q, Granularity::Device), vec!["A1-r01".to_string()]);
/// assert_eq!(db.query(&q, Granularity::Group), vec!["A1".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrPred {
    /// Attribute equals (or glob-matches) the pattern.
    Eq(String, String),
    /// Negation of [`AttrPred::Eq`].
    Ne(String, String),
    /// Both sub-predicates hold.
    And(Box<AttrPred>, Box<AttrPred>),
    /// Either sub-predicate holds.
    Or(Box<AttrPred>, Box<AttrPred>),
    /// The sub-predicate fails.
    Not(Box<AttrPred>),
    /// Matches every device.
    True,
}

impl AttrPred {
    /// `attr == pattern` (glob allowed).
    pub fn eq(attr: impl Into<String>, pattern: impl Into<String>) -> AttrPred {
        AttrPred::Eq(attr.into(), pattern.into())
    }

    /// `attr != pattern` (glob allowed).
    pub fn ne(attr: impl Into<String>, pattern: impl Into<String>) -> AttrPred {
        AttrPred::Ne(attr.into(), pattern.into())
    }

    /// Conjunction.
    pub fn and(self, other: AttrPred) -> AttrPred {
        AttrPred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: AttrPred) -> AttrPred {
        AttrPred::Or(Box::new(self), Box::new(other))
    }

    /// Does the device satisfy this predicate?
    pub fn matches(&self, device: &Device) -> bool {
        match self {
            AttrPred::Eq(attr, pattern) => device
                .attr(attr)
                .map(|v| glob_match(pattern, v))
                .unwrap_or(false),
            AttrPred::Ne(attr, pattern) => !device
                .attr(attr)
                .map(|v| glob_match(pattern, v))
                .unwrap_or(false),
            AttrPred::And(a, b) => a.matches(device) && b.matches(device),
            AttrPred::Or(a, b) => a.matches(device) || b.matches(device),
            AttrPred::Not(a) => !a.matches(device),
            AttrPred::True => true,
        }
    }
}

impl Serialize for AttrPred {
    fn to_value(&self) -> Value {
        // serde's externally-tagged enum form: {"Variant": [fields...]}
        let tagged = |tag: &str, fields: Vec<Value>| Value::obj(vec![(tag, Value::Arr(fields))]);
        match self {
            AttrPred::Eq(attr, pattern) => tagged("Eq", vec![attr.to_value(), pattern.to_value()]),
            AttrPred::Ne(attr, pattern) => tagged("Ne", vec![attr.to_value(), pattern.to_value()]),
            AttrPred::And(a, b) => tagged("And", vec![a.to_value(), b.to_value()]),
            AttrPred::Or(a, b) => tagged("Or", vec![a.to_value(), b.to_value()]),
            AttrPred::Not(a) => Value::obj(vec![("Not", a.to_value())]),
            AttrPred::True => Value::Str("True".to_owned()),
        }
    }
}

impl Deserialize for AttrPred {
    fn from_value(value: &Value) -> Result<AttrPred, serde::Error> {
        if value.as_str() == Some("True") {
            return Ok(AttrPred::True);
        }
        let fields = value
            .as_obj()
            .ok_or_else(|| serde::Error::mismatch("an AttrPred variant", value))?;
        let [(tag, payload)] = fields else {
            return Err(serde::Error::mismatch("a single-variant object", value));
        };
        let pair = |payload: &Value| -> Result<(String, String), serde::Error> {
            match payload.as_arr() {
                Some([a, b]) => Ok((String::from_value(a)?, String::from_value(b)?)),
                _ => Err(serde::Error::mismatch("a two-element array", payload)),
            }
        };
        let subpair = |payload: &Value| -> Result<(Box<AttrPred>, Box<AttrPred>), serde::Error> {
            match payload.as_arr() {
                Some([a, b]) => Ok((
                    Box::new(Self::from_value(a)?),
                    Box::new(Self::from_value(b)?),
                )),
                _ => Err(serde::Error::mismatch("a two-element array", payload)),
            }
        };
        match tag.as_str() {
            "Eq" => pair(payload).map(|(a, p)| AttrPred::Eq(a, p)),
            "Ne" => pair(payload).map(|(a, p)| AttrPred::Ne(a, p)),
            "And" => subpair(payload).map(|(a, b)| AttrPred::And(a, b)),
            "Or" => subpair(payload).map(|(a, b)| AttrPred::Or(a, b)),
            "Not" => Ok(AttrPred::Not(Box::new(Self::from_value(payload)?))),
            other => Err(serde::Error::custom(format!(
                "unknown AttrPred variant `{other}`"
            ))),
        }
    }
}

/// The network-wide inventory of devices, groups, and interfaces.
#[derive(Debug, Clone, Default)]
pub struct LocationDb {
    devices: BTreeMap<String, Device>,
}

impl Serialize for LocationDb {
    fn to_value(&self) -> Value {
        Value::obj(vec![("devices", self.devices.to_value())])
    }
}

impl Deserialize for LocationDb {
    fn from_value(value: &Value) -> Result<LocationDb, serde::Error> {
        Ok(LocationDb {
            devices: serde::field(value, "devices")?,
        })
    }
}

impl LocationDb {
    /// An empty database.
    pub fn new() -> LocationDb {
        LocationDb::default()
    }

    /// Insert (or replace) a device.
    pub fn add_device(&mut self, device: Device) {
        self.devices.insert(device.name.clone(), device);
    }

    /// Look up a device by name.
    pub fn device(&self, name: &str) -> Option<&Device> {
        self.devices.get(name)
    }

    /// Mutable device lookup (used by topology builders to add interfaces).
    pub fn device_mut(&mut self, name: &str) -> Option<&mut Device> {
        self.devices.get_mut(name)
    }

    /// The group of a device, if known.
    pub fn group_of(&self, device: &str) -> Option<&str> {
        self.devices.get(device).map(|d| d.group.as_str())
    }

    /// Iterate over all devices in name order.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the database has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// All distinct group names, sorted.
    pub fn groups(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.devices.values().map(|d| d.group.as_str()).collect();
        set.into_iter().map(str::to_owned).collect()
    }

    /// Evaluate a `where` query: the names of all locations, at the given
    /// granularity, belonging to devices matching `pred`. Results are
    /// sorted and deduplicated (the paper's queries "return the union").
    pub fn query(&self, pred: &AttrPred, granularity: Granularity) -> Vec<String> {
        let mut out: BTreeSet<String> = BTreeSet::new();
        for device in self.devices.values() {
            if !pred.matches(device) {
                continue;
            }
            match granularity {
                Granularity::Group => {
                    out.insert(device.group.clone());
                }
                Granularity::Device => {
                    out.insert(device.name.clone());
                }
                Granularity::Interface => {
                    out.extend(device.interfaces.iter().cloned());
                }
            }
        }
        out.into_iter().collect()
    }

    /// All location names at a granularity (the alphabet of the network).
    pub fn all_locations(&self, granularity: Granularity) -> Vec<String> {
        self.query(&AttrPred::True, granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> LocationDb {
        let mut db = LocationDb::new();
        for (name, group, region, tier) in [
            ("A1-r01", "A1", "A", "core"),
            ("A1-r02", "A1", "A", "core"),
            ("A2-r01", "A2", "A", "agg"),
            ("B1-r01", "B1", "B", "core"),
            ("B2-r01", "B2", "B", "agg"),
        ] {
            let mut d = Device::new(name, group)
                .with_attr("region", region)
                .with_attr("tier", tier);
            d.interfaces.push(Device::interface_name(name, "eth0"));
            d.interfaces.push(Device::interface_name(name, "eth1"));
            db.add_device(d);
        }
        db
    }

    #[test]
    fn query_by_group() {
        let db = sample_db();
        let q = AttrPred::eq("group", "A1");
        assert_eq!(
            db.query(&q, Granularity::Device),
            vec!["A1-r01".to_string(), "A1-r02".to_string()]
        );
        assert_eq!(db.query(&q, Granularity::Group), vec!["A1".to_string()]);
        assert_eq!(db.query(&q, Granularity::Interface).len(), 4);
    }

    #[test]
    fn query_by_region_glob() {
        let db = sample_db();
        let q = AttrPred::eq("region", "A");
        assert_eq!(db.query(&q, Granularity::Device).len(), 3);
        let q2 = AttrPred::eq("group", "B*");
        assert_eq!(
            db.query(&q2, Granularity::Group),
            vec!["B1".to_string(), "B2".to_string()]
        );
    }

    #[test]
    fn query_boolean_connectives() {
        let db = sample_db();
        let core_in_a = AttrPred::eq("region", "A").and(AttrPred::eq("tier", "core"));
        assert_eq!(db.query(&core_in_a, Granularity::Device).len(), 2);
        let a_or_b1 = AttrPred::eq("group", "A*").or(AttrPred::eq("group", "B1"));
        assert_eq!(
            db.query(&a_or_b1, Granularity::Group),
            vec!["A1", "A2", "B1"]
        );
        let not_agg = AttrPred::Not(Box::new(AttrPred::eq("tier", "agg")));
        assert_eq!(db.query(&not_agg, Granularity::Device).len(), 3);
        let ne = AttrPred::ne("tier", "agg");
        assert_eq!(db.query(&ne, Granularity::Device).len(), 3);
    }

    #[test]
    fn missing_attr_never_matches_eq() {
        let db = sample_db();
        let q = AttrPred::eq("asn", "65001");
        assert!(db.query(&q, Granularity::Device).is_empty());
        // but Ne on a missing attribute matches (it is "not equal")
        let q2 = AttrPred::ne("asn", "65001");
        assert_eq!(db.query(&q2, Granularity::Device).len(), 5);
    }

    #[test]
    fn groups_listing() {
        let db = sample_db();
        assert_eq!(db.groups(), vec!["A1", "A2", "B1", "B2"]);
    }

    #[test]
    fn all_locations_alphabet() {
        let db = sample_db();
        assert_eq!(db.all_locations(Granularity::Device).len(), 5);
        assert_eq!(db.all_locations(Granularity::Group).len(), 4);
        assert_eq!(db.all_locations(Granularity::Interface).len(), 10);
    }

    #[test]
    fn group_of_lookup() {
        let db = sample_db();
        assert_eq!(db.group_of("A1-r01"), Some("A1"));
        assert_eq!(db.group_of("nope"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let db = sample_db();
        let json = serde_json::to_string(&db).unwrap();
        let back: LocationDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.groups(), db.groups());
    }
}
