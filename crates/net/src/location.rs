//! The location hierarchy: interfaces ⊂ devices ⊂ router groups.
//!
//! Rela views forwarding paths at one of three granularities (paper §4):
//! interface level, router (device) level, or router-group level. A
//! [`Granularity`] selects the view; the location database
//! ([`crate::db::LocationDb`]) resolves names and attributes.

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The level at which forwarding hops are named.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Hops are physical interfaces (finest; paper reports ~10× cost).
    Interface,
    /// Hops are routers.
    Device,
    /// Hops are router groups (coarsest).
    Group,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::Interface => "interface",
            Granularity::Device => "device",
            Granularity::Group => "group",
        };
        f.write_str(s)
    }
}

impl Serialize for Granularity {
    fn to_value(&self) -> Value {
        // serde's externally-tagged unit-variant form: the variant name
        Value::Str(
            match self {
                Granularity::Interface => "Interface",
                Granularity::Device => "Device",
                Granularity::Group => "Group",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for Granularity {
    fn from_value(value: &Value) -> Result<Granularity, serde::Error> {
        match value.as_str() {
            Some("Interface") => Ok(Granularity::Interface),
            Some("Device") => Ok(Granularity::Device),
            Some("Group") => Ok(Granularity::Group),
            _ => Err(serde::Error::mismatch("a granularity variant name", value)),
        }
    }
}

/// The special location that terminates the path of a dropped packet
/// (paper §5.1: "we model this behavior as a special path with a single
/// location `drop`").
pub const DROP_LOCATION: &str = "drop";

/// A router and its metadata.
///
/// Interface names are globally unique and, by convention, formed as
/// `"{device}:{port}"` so an interface resolves to its device by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Globally unique router name, e.g. `"A1-r03"`.
    pub name: String,
    /// Router group, e.g. `"A1"`. Groups aggregate devices with the same
    /// role in the same site.
    pub group: String,
    /// Free-form attributes: `region`, `asn`, `tier`, `role`, ...
    pub attrs: BTreeMap<String, String>,
    /// Interfaces on this device.
    pub interfaces: Vec<String>,
}

impl Device {
    /// Create a device with no extra attributes or interfaces.
    pub fn new(name: impl Into<String>, group: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            group: group.into(),
            attrs: BTreeMap::new(),
            interfaces: Vec::new(),
        }
    }

    /// Builder-style attribute insertion.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Device {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// The value of an attribute, with `name` and `group` always available.
    pub fn attr(&self, key: &str) -> Option<&str> {
        match key {
            "name" | "device" => Some(&self.name),
            "group" => Some(&self.group),
            _ => self.attrs.get(key).map(String::as_str),
        }
    }

    /// The canonical interface name for a port on this device.
    pub fn interface_name(device: &str, port: &str) -> String {
        format!("{device}:{port}")
    }
}

impl Serialize for Device {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("name", self.name.to_value()),
            ("group", self.group.to_value()),
            ("attrs", self.attrs.to_value()),
            ("interfaces", self.interfaces.to_value()),
        ])
    }
}

impl Deserialize for Device {
    fn from_value(value: &Value) -> Result<Device, serde::Error> {
        Ok(Device {
            name: serde::field(value, "name")?,
            group: serde::field(value, "group")?,
            attrs: serde::field(value, "attrs")?,
            interfaces: serde::field(value, "interfaces")?,
        })
    }
}

/// Resolve an interface name back to its device (the part before `:`).
pub fn interface_device(interface: &str) -> &str {
    interface
        .split_once(':')
        .map(|(d, _)| d)
        .unwrap_or(interface)
}

/// A glob pattern supporting `*` (any substring) and `?` (any one char).
///
/// Used by `where` queries to select locations, e.g.
/// `where(group == "A*")`.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    // iterative glob with backtracking over the last `*`
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_attr_lookup() {
        let d = Device::new("A1-r01", "A1").with_attr("region", "A");
        assert_eq!(d.attr("name"), Some("A1-r01"));
        assert_eq!(d.attr("device"), Some("A1-r01"));
        assert_eq!(d.attr("group"), Some("A1"));
        assert_eq!(d.attr("region"), Some("A"));
        assert_eq!(d.attr("tier"), None);
    }

    #[test]
    fn interface_name_roundtrip() {
        let ifname = Device::interface_name("A1-r01", "eth0");
        assert_eq!(ifname, "A1-r01:eth0");
        assert_eq!(interface_device(&ifname), "A1-r01");
        assert_eq!(interface_device("plain"), "plain");
    }

    #[test]
    fn glob_literal() {
        assert!(glob_match("A1", "A1"));
        assert!(!glob_match("A1", "A2"));
        assert!(!glob_match("A1", "A11"));
    }

    #[test]
    fn glob_star() {
        assert!(glob_match("A*", "A1"));
        assert!(glob_match("A*", "A"));
        assert!(glob_match("A*", "A1-r01"));
        assert!(!glob_match("A*", "B1"));
        assert!(glob_match("*r01", "A1-r01"));
        assert!(glob_match("A*r*", "A1-r01"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
    }

    #[test]
    fn glob_question() {
        assert!(glob_match("A?", "A1"));
        assert!(!glob_match("A?", "A"));
        assert!(!glob_match("A?", "A12"));
        assert!(glob_match("?1-r??", "A1-r03"));
    }

    #[test]
    fn glob_backtracking() {
        assert!(glob_match("*ab*ab", "abxabab"));
        assert!(glob_match("*ab*ab", "abxab"));
        assert!(!glob_match("*ab*ab", "ab"));
        assert!(!glob_match("*ab*ab", "abxa"));
    }

    #[test]
    fn granularity_display() {
        assert_eq!(Granularity::Interface.to_string(), "interface");
        assert_eq!(Granularity::Device.to_string(), "device");
        assert_eq!(Granularity::Group.to_string(), "group");
    }
}
