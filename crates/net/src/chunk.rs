//! An in-memory byte pipe for feeding snapshot readers from a socket.
//!
//! The framed serve protocol interleaves `pre` and `post` snapshot
//! chunks on one connection, while the streaming aligner pulls the two
//! sides in lockstep. A bounded pipe would deadlock the moment the
//! connection thread blocks pushing bytes for the side the aligner is
//! *not* currently pulling, so this pipe is deliberately unbounded: the
//! connection thread demultiplexes chunks into two pipes without ever
//! blocking, and backpressure is bounded by the submission's size on the
//! wire (which the protocol already caps per frame).

use std::collections::VecDeque;
use std::io::Read;
use std::sync::mpsc::{channel, Receiver, Sender};

/// The writing half of a [`chunk_pipe`]: accepts whole byte chunks,
/// never blocks. Dropping the sender signals end-of-stream to the
/// reader.
pub struct ChunkSender {
    tx: Sender<Vec<u8>>,
}

impl ChunkSender {
    /// Queue one chunk for the reader. Empty chunks are ignored (the
    /// wire protocol uses a zero-length chunk as its own end-of-side
    /// marker; end-of-stream here is signalled by dropping the sender).
    /// Returns `false` if the reading half is gone — the producer should
    /// stop feeding, but this is not an error: a reader may legitimately
    /// stop early (e.g. after a malformed record).
    pub fn send(&self, chunk: Vec<u8>) -> bool {
        if chunk.is_empty() {
            return true;
        }
        self.tx.send(chunk).is_ok()
    }
}

/// The reading half of a [`chunk_pipe`]: a [`Read`] source that yields
/// the queued chunks in order and reports end-of-file once the sender is
/// dropped and the queue is drained.
pub struct ChunkReader {
    rx: Receiver<Vec<u8>>,
    /// Bytes received but not yet handed to `read`.
    pending: VecDeque<u8>,
}

impl Read for ChunkReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pending.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.pending.extend(chunk),
                // sender dropped: clean end-of-stream
                Err(_) => return Ok(0),
            }
        }
        let (front, _) = self.pending.as_slices();
        let n = front.len().min(buf.len());
        buf[..n].copy_from_slice(&front[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

/// Create a connected chunk pipe: bytes pushed into the [`ChunkSender`]
/// come out of the [`ChunkReader`] in order. Both halves are `Send`, so
/// a connection thread can feed a reader running on another thread.
pub fn chunk_pipe() -> (ChunkSender, ChunkReader) {
    let (tx, rx) = channel();
    (
        ChunkSender { tx },
        ChunkReader {
            rx,
            pending: VecDeque::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn chunks_come_out_in_order_and_eof_follows_drop() {
        let (tx, mut rx) = chunk_pipe();
        assert!(tx.send(b"hello ".to_vec()));
        assert!(tx.send(Vec::new()), "empty chunks are a quiet no-op");
        assert!(tx.send(b"world".to_vec()));
        drop(tx);
        let mut out = String::new();
        rx.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello world");
        // fused at EOF
        let mut buf = [0u8; 4];
        assert_eq!(rx.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn small_reads_split_a_chunk() {
        let (tx, mut rx) = chunk_pipe();
        tx.send(b"abcdef".to_vec());
        drop(tx);
        let mut buf = [0u8; 4];
        assert_eq!(rx.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"abcd");
        assert_eq!(rx.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
    }

    #[test]
    fn send_reports_a_dropped_reader() {
        let (tx, rx) = chunk_pipe();
        drop(rx);
        assert!(!tx.send(b"late".to_vec()));
    }

    #[test]
    fn reader_blocks_until_bytes_arrive() {
        let (tx, mut rx) = chunk_pipe();
        let feeder = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(b"eventually".to_vec());
        });
        let mut out = String::new();
        rx.read_to_string(&mut out).unwrap();
        assert_eq!(out, "eventually");
        feeder.join().unwrap();
    }
}
