//! Memory-mapped snapshot sources: the zero-copy side of the RSNB
//! container contract (`docs/SNAPSHOT_FORMAT.md`, `docs/INGEST.md`).
//!
//! [`MmapSource`] maps a file read-only via a hand-declared `mmap(2)`
//! extern (no libc crate — the workspace builds air-gapped) and hands
//! out the mapping as one `&[u8]`. The binary framer does pointer
//! arithmetic over that slice, so record spans borrow the page cache
//! directly instead of being copied through a `BufReader`. On non-unix
//! targets, or when the `mmap-fallback` feature is enabled (CI exercises
//! it on unix too), the same API is backed by a plain read-to-`Vec` —
//! byte-identical behavior, no mapping.
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! crate root carries `#![deny(unsafe_code)]` and every unsafe block
//! here is scoped to the mapping's pointer/length pair.
#![allow(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

#[cfg(all(unix, not(feature = "mmap-fallback")))]
mod sys {
    use std::ffi::c_void;

    pub(super) const PROT_READ: i32 = 1;
    pub(super) const MAP_PRIVATE: i32 = 2;
    pub(super) const MADV_DONTNEED: i32 = 4;

    // Hand-declared POSIX mmap(2)/munmap(2)/madvise(2); the workspace
    // vendors all dependencies, so there is no libc crate to lean on.
    // Signatures match 64-bit unix (off_t = i64).
    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub(super) fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    pub(super) fn map_failed(ptr: *mut c_void) -> bool {
        ptr as usize == usize::MAX
    }
}

/// A read-only memory mapping of a snapshot file (or, on non-unix /
/// `mmap-fallback` builds, the file read into memory). The whole file
/// is visible as one immutable `&[u8]` for the mapping's lifetime;
/// record spans framed out of it borrow the page cache with no copy.
///
/// Empty files are special-cased without a mapping (`mmap(2)` rejects
/// zero-length maps), so `open` works on any regular file.
#[cfg(all(unix, not(feature = "mmap-fallback")))]
pub struct MmapSource {
    /// Base address of the mapping; null for empty files (no mapping).
    ptr: *const u8,
    len: usize,
}

/// A read-only memory mapping of a snapshot file (fallback build: the
/// file is read into an owned buffer instead of mapped, same API and
/// byte-for-byte behavior).
#[cfg(any(not(unix), feature = "mmap-fallback"))]
pub struct MmapSource {
    bytes: Vec<u8>,
}

#[cfg(all(unix, not(feature = "mmap-fallback")))]
// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its
// whole lifetime, so sharing the pointer across threads is sound.
unsafe impl Send for MmapSource {}
#[cfg(all(unix, not(feature = "mmap-fallback")))]
// SAFETY: see the Send impl — the mapping is never written through.
unsafe impl Sync for MmapSource {}

impl MmapSource {
    /// Map `path` read-only. The file handle is released immediately —
    /// a live mapping keeps the pages reachable on its own (which is
    /// also why a spooled file may be unlinked right after mapping).
    #[cfg(all(unix, not(feature = "mmap-fallback")))]
    pub fn open(path: impl AsRef<Path>) -> io::Result<MmapSource> {
        use std::os::unix::io::AsRawFd;
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(MmapSource {
                ptr: std::ptr::null(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file descriptor for `len` readable
        // bytes; we request a fresh private read-only mapping and check
        // for MAP_FAILED before using the address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapSource {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Read `path` into memory (fallback build — same API as the real
    /// mapping, backed by an owned buffer).
    #[cfg(any(not(unix), feature = "mmap-fallback"))]
    pub fn open(path: impl AsRef<Path>) -> io::Result<MmapSource> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(MmapSource { bytes })
    }

    /// The mapped bytes.
    #[cfg(all(unix, not(feature = "mmap-fallback")))]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; it is unmapped only in Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The mapped bytes.
    #[cfg(any(not(unix), feature = "mmap-fallback"))]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Tell the kernel the first `upto` bytes have been consumed and
    /// their pages may leave this process's resident set
    /// (`madvise(MADV_DONTNEED)`; the framer calls this as it advances
    /// so a large container never accumulates its whole length in RSS).
    /// Purely advisory and strictly non-destructive: the mapping is
    /// clean and read-only, so the page-cache copy survives and any
    /// later access — a span borrowing the released region, say —
    /// refaults the identical bytes with a minor fault. Failures are
    /// ignored; no-op on fallback builds.
    #[cfg(all(unix, not(feature = "mmap-fallback")))]
    pub fn release_prefix(&self, upto: usize) {
        // align the length down generously so the (page-aligned) base
        // covers a whole number of pages for any page size in use
        const ALIGN: usize = 1 << 20;
        let len = upto.min(self.len) & !(ALIGN - 1);
        if len == 0 {
            return;
        }
        // SAFETY: [ptr, ptr + len) lies within the live PROT_READ
        // mapping and MADV_DONTNEED on a clean file-backed private
        // mapping only drops residency — observable bytes are unchanged.
        unsafe {
            sys::madvise(self.ptr as *mut std::ffi::c_void, len, sys::MADV_DONTNEED);
        }
    }

    /// Fallback build: nothing to release, the backing is an owned
    /// buffer.
    #[cfg(any(not(unix), feature = "mmap-fallback"))]
    pub fn release_prefix(&self, _upto: usize) {}

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(unix, not(feature = "mmap-fallback")))]
impl Drop for MmapSource {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: ptr/len are the exact values returned by mmap;
            // nothing borrows the mapping once self is dropping (the
            // slice accessor ties borrows to self's lifetime).
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl std::ops::Deref for MmapSource {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for MmapSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MmapSource")
            .field("len", &self.len())
            .finish()
    }
}

/// A [`Read`] adapter over a shared [`MmapSource`], for the ingest
/// paths that want a stream rather than a slice (JSON content inside a
/// mapped file, serial/materialized modes). Cloning the `Arc` is the
/// only cost; reads copy out of the mapping like any buffered reader
/// would.
pub struct MmapReader {
    map: Arc<MmapSource>,
    pos: usize,
}

impl MmapReader {
    /// A reader positioned at the start of the mapping.
    pub fn new(map: Arc<MmapSource>) -> MmapReader {
        MmapReader { map, pos: 0 }
    }

    /// The underlying mapping.
    pub fn source(&self) -> &Arc<MmapSource> {
        &self.map
    }
}

impl Read for MmapReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = &self.map.as_slice()[self.pos..];
        let n = rest.len().min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("rela-mmap-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn maps_file_contents_byte_for_byte() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..4096u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MmapSource::open(&path).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_as_empty_slices() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let map = MmapSource::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn released_pages_refault_identical_bytes() {
        let path = temp_path("release");
        // several megabytes so the 1MiB-aligned release actually drops
        // pages rather than rounding down to nothing
        let payload: Vec<u8> = (0..(3 << 20) as u32).map(|x| x as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MmapSource::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        map.release_prefix(map.len());
        // the advice must be observably non-destructive, unlink included
        assert_eq!(map.as_slice(), &payload[..]);
        map.release_prefix(usize::MAX); // clamps to the mapping
        assert_eq!(&map.as_slice()[..16], &payload[..16]);
    }

    #[test]
    fn mapping_outlives_an_unlinked_file() {
        let path = temp_path("unlinked");
        std::fs::write(&path, b"still here after unlink").unwrap();
        let map = MmapSource::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map.as_slice(), b"still here after unlink");
    }

    #[test]
    fn reader_streams_the_mapping() {
        let path = temp_path("reader");
        std::fs::write(&path, b"0123456789").unwrap();
        let map = Arc::new(MmapSource::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
        let mut reader = MmapReader::new(map);
        let mut buf = [0u8; 4];
        assert_eq!(reader.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"0123");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"456789");
    }
}
