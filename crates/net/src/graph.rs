//! The forwarding-graph input format (paper §6.1).
//!
//! "Rela defines a graph format to represent the interface-level input
//! path set. Each vertex in the graph denotes a router that appears as a
//! forwarding hop for this traffic, and each directed edge denotes a
//! physical link that is used to forward this traffic between the two
//! hops. There is also extra metadata to identify all source vertices and
//! sink vertices." A DAG with 38 vertices and 50K edges can encode 10⁸
//! interface-level ECMP paths — which is why snapshots are exchanged as
//! DAGs, never as explicit path lists.
//!
//! We extend the format with *drop vertices*: routers where the traffic
//! is discarded by policy. Paths through a drop vertex end with the
//! reserved `drop` location (paper §5.1).

use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Index of a vertex inside one forwarding graph.
pub type VertexId = usize;

/// A physical link used to forward this traffic class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Upstream vertex.
    pub from: VertexId,
    /// Downstream vertex.
    pub to: VertexId,
    /// Egress port on the upstream device (e.g. `"eth3"`).
    pub src_port: String,
    /// Ingress port on the downstream device.
    pub dst_port: String,
}

impl Serialize for Edge {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("from", self.from.to_value()),
            ("to", self.to.to_value()),
            ("src_port", self.src_port.to_value()),
            ("dst_port", self.dst_port.to_value()),
        ])
    }
}

impl Deserialize for Edge {
    fn from_value(value: &Value) -> Result<Edge, serde::Error> {
        Ok(Edge {
            from: serde::field(value, "from")?,
            to: serde::field(value, "to")?,
            src_port: serde::field(value, "src_port")?,
            dst_port: serde::field(value, "dst_port")?,
        })
    }
}

/// A per-FEC forwarding DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForwardingGraph {
    /// Device name per vertex.
    pub vertices: Vec<String>,
    /// Links; parallel edges between the same device pair are distinct
    /// (they are distinct ECMP members at the interface level).
    pub edges: Vec<Edge>,
    /// Vertices where paths begin (traffic ingress).
    pub sources: Vec<VertexId>,
    /// Vertices where paths end (traffic delivered/egressed).
    pub sinks: Vec<VertexId>,
    /// Vertices where the traffic is dropped by policy.
    pub drops: Vec<VertexId>,
}

impl Serialize for ForwardingGraph {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("vertices", self.vertices.to_value()),
            ("edges", self.edges.to_value()),
            ("sources", self.sources.to_value()),
            ("sinks", self.sinks.to_value()),
            ("drops", self.drops.to_value()),
        ])
    }
}

impl Deserialize for ForwardingGraph {
    fn from_value(value: &Value) -> Result<ForwardingGraph, serde::Error> {
        Ok(ForwardingGraph {
            vertices: serde::field(value, "vertices")?,
            edges: serde::field(value, "edges")?,
            sources: serde::field(value, "sources")?,
            sinks: serde::field(value, "sinks")?,
            drops: serde::field(value, "drops")?,
        })
    }
}

/// A structural problem found by [`ForwardingGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge, source, sink, or drop references a vertex out of range.
    DanglingReference(String),
    /// The graph has a directed cycle (forwarding loops are not
    /// representable; the paper targets loop-free stateless forwarding).
    Cyclic,
    /// Two vertices share a device name.
    DuplicateVertex(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DanglingReference(what) => {
                write!(f, "dangling reference: {what}")
            }
            GraphError::Cyclic => write!(f, "forwarding graph has a cycle"),
            GraphError::DuplicateVertex(name) => {
                write!(f, "duplicate vertex for device {name}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl ForwardingGraph {
    /// An empty graph (a traffic class the network does not carry).
    pub fn new() -> ForwardingGraph {
        ForwardingGraph::default()
    }

    /// Add a vertex for `device`, returning its id. Does not deduplicate;
    /// use [`ForwardingGraph::vertex_by_name`] to check first.
    pub fn add_vertex(&mut self, device: impl Into<String>) -> VertexId {
        self.vertices.push(device.into());
        self.vertices.len() - 1
    }

    /// Find the vertex for a device name.
    pub fn vertex_by_name(&self, device: &str) -> Option<VertexId> {
        self.vertices.iter().position(|v| v == device)
    }

    /// Add a link.
    pub fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        src_port: impl Into<String>,
        dst_port: impl Into<String>,
    ) {
        self.edges.push(Edge {
            from,
            to,
            src_port: src_port.into(),
            dst_port: dst_port.into(),
        });
    }

    /// True if the graph carries no traffic at all.
    pub fn carries_traffic(&self) -> bool {
        !self.sources.is_empty() && (!self.sinks.is_empty() || !self.drops.is_empty())
    }

    /// Outgoing edges of a vertex.
    pub fn edges_from(&self, v: VertexId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == v)
    }

    /// Check structural invariants: references in range, unique device
    /// names, and acyclicity.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.vertices.len();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for v in &self.vertices {
            if !seen.insert(v) {
                return Err(GraphError::DuplicateVertex(v.clone()));
            }
        }
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(GraphError::DanglingReference(format!(
                    "edge {}→{}",
                    e.from, e.to
                )));
            }
        }
        for (kind, list) in [
            ("source", &self.sources),
            ("sink", &self.sinks),
            ("drop", &self.drops),
        ] {
            for &v in list {
                if v >= n {
                    return Err(GraphError::DanglingReference(format!("{kind} {v}")));
                }
            }
        }
        // Kahn's algorithm for cycle detection
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut queue: Vec<VertexId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut visited = 0usize;
        while let Some(v) = queue.pop() {
            visited += 1;
            for e in self.edges_from(v) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        if visited != n {
            return Err(GraphError::Cyclic);
        }
        Ok(())
    }

    /// Number of distinct link-level paths encoded by the DAG (parallel
    /// edges multiply), saturating at `u128::MAX`. This is the quantity
    /// the paper reports exploding to 10⁸ for one traffic class.
    ///
    /// Requires an acyclic graph (validate first); cyclic graphs return
    /// `None`.
    pub fn path_count(&self) -> Option<u128> {
        self.validate().ok()?;
        let n = self.vertices.len();
        let sink_set: BTreeSet<VertexId> = self.sinks.iter().copied().collect();
        let drop_set: BTreeSet<VertexId> = self.drops.iter().copied().collect();
        // memoized DFS in reverse topological order
        let mut memo: Vec<Option<u128>> = vec![None; n];
        fn count(
            v: VertexId,
            g: &ForwardingGraph,
            sinks: &BTreeSet<VertexId>,
            drops: &BTreeSet<VertexId>,
            memo: &mut Vec<Option<u128>>,
        ) -> u128 {
            if let Some(c) = memo[v] {
                return c;
            }
            let mut total: u128 = 0;
            if sinks.contains(&v) {
                total += 1;
            }
            if drops.contains(&v) {
                total += 1;
            }
            for e in g.edges_from(v) {
                total = total.saturating_add(count(e.to, g, sinks, drops, memo));
            }
            memo[v] = Some(total);
            total
        }
        let mut total: u128 = 0;
        for &s in &self.sources {
            total = total.saturating_add(count(s, self, &sink_set, &drop_set, &mut memo));
        }
        Some(total)
    }

    /// Enumerate device-level paths (sequences of device names; dropped
    /// paths end with the `drop` pseudo-device), up to `limit` paths.
    /// Parallel edges do not multiply device-level paths.
    pub fn device_paths(&self, limit: usize) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let sink_set: BTreeSet<VertexId> = self.sinks.iter().copied().collect();
        let drop_set: BTreeSet<VertexId> = self.drops.iter().copied().collect();
        let mut stack: Vec<(VertexId, Vec<VertexId>)> =
            self.sources.iter().rev().map(|&s| (s, vec![s])).collect();
        while let Some((v, path)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if sink_set.contains(&v) {
                out.push(path.iter().map(|&p| self.vertices[p].clone()).collect());
            }
            if drop_set.contains(&v) {
                let mut p: Vec<String> = path.iter().map(|&q| self.vertices[q].clone()).collect();
                p.push(crate::location::DROP_LOCATION.to_owned());
                out.push(p);
            }
            // distinct successor devices only
            let succs: BTreeSet<VertexId> = self.edges_from(v).map(|e| e.to).collect();
            for t in succs.into_iter().rev() {
                let mut next = path.clone();
                next.push(t);
                stack.push((t, next));
            }
        }
        out
    }

    /// Merge parallel edges, keeping one per `(from, to)` pair. Useful
    /// when only device-level behaviour matters (cuts FSA size).
    pub fn dedup_parallel_edges(&self) -> ForwardingGraph {
        let mut seen: BTreeMap<(VertexId, VertexId), Edge> = BTreeMap::new();
        for e in &self.edges {
            seen.entry((e.from, e.to)).or_insert_with(|| e.clone());
        }
        ForwardingGraph {
            vertices: self.vertices.clone(),
            edges: seen.into_values().collect(),
            sources: self.sources.clone(),
            sinks: self.sinks.clone(),
            drops: self.drops.clone(),
        }
    }
}

/// Convenience builder: a linear path of devices with one link between
/// consecutive devices (ports `eth0`/`eth1`). The first device is the
/// source, the last is the sink.
pub fn linear_graph(devices: &[&str]) -> ForwardingGraph {
    let mut g = ForwardingGraph::new();
    for d in devices {
        g.add_vertex(*d);
    }
    for i in 0..devices.len().saturating_sub(1) {
        g.add_edge(i, i + 1, "eth0", "eth1");
    }
    if !devices.is_empty() {
        g.sources.push(0);
        g.sinks.push(devices.len() - 1);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_graph_shape() {
        let g = linear_graph(&["x1", "A1", "D1", "y1"]);
        assert_eq!(g.vertices.len(), 4);
        assert_eq!(g.edges.len(), 3);
        assert!(g.validate().is_ok());
        assert!(g.carries_traffic());
        assert_eq!(g.path_count(), Some(1));
        assert_eq!(
            g.device_paths(10),
            vec![vec!["x1", "A1", "D1", "y1"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()]
        );
    }

    #[test]
    fn empty_graph_carries_nothing() {
        let g = ForwardingGraph::new();
        assert!(!g.carries_traffic());
        assert_eq!(g.path_count(), Some(0));
        assert!(g.device_paths(10).is_empty());
    }

    #[test]
    fn ecmp_diamond_counts_paths() {
        // s → {m1, m2} → t
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("s");
        let m1 = g.add_vertex("m1");
        let m2 = g.add_vertex("m2");
        let t = g.add_vertex("t");
        g.add_edge(s, m1, "e0", "e0");
        g.add_edge(s, m2, "e1", "e0");
        g.add_edge(m1, t, "e1", "e0");
        g.add_edge(m2, t, "e1", "e1");
        g.sources.push(s);
        g.sinks.push(t);
        assert_eq!(g.path_count(), Some(2));
        assert_eq!(g.device_paths(10).len(), 2);
    }

    #[test]
    fn parallel_links_multiply_link_paths_not_device_paths() {
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("s");
        let t = g.add_vertex("t");
        for i in 0..8 {
            g.add_edge(s, t, format!("e{i}"), format!("e{i}"));
        }
        g.sources.push(s);
        g.sinks.push(t);
        assert_eq!(g.path_count(), Some(8));
        assert_eq!(g.device_paths(100).len(), 1);
        assert_eq!(g.dedup_parallel_edges().edges.len(), 1);
    }

    #[test]
    fn drop_vertex_terminates_path() {
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("s");
        let f = g.add_vertex("firewall");
        g.add_edge(s, f, "e0", "e0");
        g.sources.push(s);
        g.drops.push(f);
        assert!(g.carries_traffic());
        assert_eq!(g.path_count(), Some(1));
        let paths = g.device_paths(10);
        assert_eq!(
            paths,
            vec![vec!["s", "firewall", "drop"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()]
        );
    }

    #[test]
    fn vertex_both_sink_and_transit() {
        // traffic delivered at m but also forwarded to t
        let mut g = ForwardingGraph::new();
        let s = g.add_vertex("s");
        let m = g.add_vertex("m");
        let t = g.add_vertex("t");
        g.add_edge(s, m, "e0", "e0");
        g.add_edge(m, t, "e1", "e0");
        g.sources.push(s);
        g.sinks.push(m);
        g.sinks.push(t);
        assert_eq!(g.path_count(), Some(2));
        assert_eq!(g.device_paths(10).len(), 2);
    }

    #[test]
    fn validate_rejects_cycles() {
        let mut g = ForwardingGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, "e0", "e0");
        g.add_edge(b, a, "e1", "e1");
        g.sources.push(a);
        g.sinks.push(b);
        assert_eq!(g.validate(), Err(GraphError::Cyclic));
        assert_eq!(g.path_count(), None);
    }

    #[test]
    fn validate_rejects_dangling() {
        let mut g = ForwardingGraph::new();
        g.add_vertex("a");
        g.add_edge(0, 7, "e0", "e0");
        assert!(matches!(
            g.validate(),
            Err(GraphError::DanglingReference(_))
        ));
    }

    #[test]
    fn validate_rejects_duplicate_devices() {
        let mut g = ForwardingGraph::new();
        g.add_vertex("a");
        g.add_vertex("a");
        assert_eq!(
            g.validate(),
            Err(GraphError::DuplicateVertex("a".to_owned()))
        );
    }

    #[test]
    fn path_count_saturates_not_panics() {
        // 80 sequential diamonds ≈ 2^80 paths > u64
        let mut g = ForwardingGraph::new();
        let mut prev = g.add_vertex("v0");
        g.sources.push(prev);
        for i in 0..80 {
            let a = g.add_vertex(format!("a{i}"));
            let b = g.add_vertex(format!("b{i}"));
            let join = g.add_vertex(format!("j{i}"));
            g.add_edge(prev, a, "e0", "e0");
            g.add_edge(prev, b, "e1", "e0");
            g.add_edge(a, join, "e1", "e0");
            g.add_edge(b, join, "e1", "e1");
            prev = join;
        }
        g.sinks.push(prev);
        let count = g.path_count().unwrap();
        assert_eq!(count, 1u128 << 80);
    }

    #[test]
    fn serde_roundtrip() {
        let g = linear_graph(&["a", "b", "c"]);
        let json = serde_json::to_string(&g).unwrap();
        let back: ForwardingGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
