//! A generic regular-expression AST over symbol sets, with Thompson
//! construction to [`Nfa`].
//!
//! This is the automata-level counterpart of the path-set sublanguage `r`
//! of the Rela front end (paper Fig. 2): locations, union, concatenation,
//! and Kleene star — with convenience forms (`+`, `?`, literal words) that
//! desugar into the core.

use crate::nfa::Nfa;
use crate::symset::SymSet;
use crate::Symbol;

/// Regular expressions over an interned alphabet.
///
/// # Examples
///
/// ```
/// use rela_automata::{Regex, SymSet, Symbol};
///
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// // (a|b)* a
/// let re = Regex::concat(vec![
///     Regex::union(vec![Regex::sym(a), Regex::sym(b)]).star(),
///     Regex::sym(a),
/// ]);
/// let nfa = re.to_nfa();
/// assert!(nfa.accepts(&[a]));
/// assert!(nfa.accepts(&[b, b, a]));
/// assert!(!nfa.accepts(&[a, b]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language `∅` (RIR `0`).
    Empty,
    /// The empty-path language `{ε}` (RIR `1`).
    Eps,
    /// Any single symbol drawn from the set.
    Set(SymSet),
    /// Concatenation of the parts, in order.
    Concat(Vec<Regex>),
    /// Union of the alternatives.
    Union(Vec<Regex>),
    /// Zero or more repetitions.
    Star(Box<Regex>),
}

impl Regex {
    /// Single-symbol expression.
    pub fn sym(sym: Symbol) -> Regex {
        Regex::Set(SymSet::singleton(sym))
    }

    /// Any single symbol (`.`).
    pub fn any() -> Regex {
        Regex::Set(SymSet::universe())
    }

    /// Any path, including the empty one (`.*`).
    pub fn any_star() -> Regex {
        Regex::any().star()
    }

    /// A literal word.
    pub fn word(word: &[Symbol]) -> Regex {
        Regex::Concat(word.iter().map(|&s| Regex::sym(s)).collect())
    }

    /// Concatenation; flattens nested concatenations.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Eps,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Concat(flat),
        }
    }

    /// Union; flattens nested unions.
    pub fn union(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Union(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Union(flat),
        }
    }

    /// Kleene star.
    pub fn star(self) -> Regex {
        match self {
            // (r*)* = r*, ∅* = ε* = ε
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Empty | Regex::Eps => Regex::Eps,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// One or more repetitions (`r+` desugars to `r r*`).
    pub fn plus(self) -> Regex {
        Regex::concat(vec![self.clone(), self.star()])
    }

    /// Zero or one occurrence (`r?` desugars to `r | ε`).
    pub fn optional(self) -> Regex {
        Regex::union(vec![self, Regex::Eps])
    }

    /// True if the expression trivially denotes the empty language.
    ///
    /// This is syntactic: `is_void` returning `false` does not guarantee a
    /// non-empty language (use automaton emptiness for that).
    pub fn is_void(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Set(s) => s.is_empty(),
            Regex::Concat(parts) => parts.iter().any(Regex::is_void),
            Regex::Union(parts) => parts.iter().all(Regex::is_void),
            Regex::Eps | Regex::Star(_) => false,
        }
    }

    /// Whether the expression matches the empty path.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Eps | Regex::Star(_) => true,
            Regex::Empty | Regex::Set(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Union(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Thompson construction.
    pub fn to_nfa(&self) -> Nfa {
        match self {
            Regex::Empty => Nfa::empty_language(),
            Regex::Eps => Nfa::epsilon_language(),
            Regex::Set(set) => Nfa::symbol_set(set.clone()),
            Regex::Concat(parts) => {
                let mut acc = Nfa::epsilon_language();
                for p in parts {
                    acc = acc.concat(&p.to_nfa());
                }
                acc
            }
            Regex::Union(parts) => {
                let mut acc = Nfa::empty_language();
                for p in parts {
                    acc = acc.union(&p.to_nfa());
                }
                acc
            }
            Regex::Star(inner) => inner.to_nfa().star(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    #[test]
    fn constructors_simplify() {
        assert_eq!(Regex::concat(vec![]), Regex::Eps);
        assert_eq!(Regex::union(vec![]), Regex::Empty);
        assert_eq!(Regex::Empty.star(), Regex::Eps);
        assert_eq!(Regex::Eps.star(), Regex::Eps);
        let a = Regex::sym(sym(0));
        assert_eq!(a.clone().star().star(), a.clone().star());
        assert_eq!(Regex::concat(vec![a.clone()]), a);
    }

    #[test]
    fn flattening() {
        let a = Regex::sym(sym(0));
        let b = Regex::sym(sym(1));
        let c = Regex::sym(sym(2));
        let nested = Regex::concat(vec![a.clone(), Regex::concat(vec![b.clone(), c.clone()])]);
        assert_eq!(nested, Regex::Concat(vec![a.clone(), b.clone(), c.clone()]));
        let nested_u = Regex::union(vec![a.clone(), Regex::union(vec![b.clone(), c.clone()])]);
        assert_eq!(nested_u, Regex::Union(vec![a, b, c]));
    }

    #[test]
    fn nullable_and_void() {
        let a = Regex::sym(sym(0));
        assert!(!a.nullable());
        assert!(a.clone().star().nullable());
        assert!(a.clone().optional().nullable());
        assert!(!a.clone().plus().nullable());
        assert!(Regex::Empty.is_void());
        assert!(Regex::concat(vec![a.clone(), Regex::Empty]).is_void());
        assert!(!Regex::union(vec![a, Regex::Empty]).is_void());
    }

    #[test]
    fn word_matches_only_itself() {
        let w = [sym(0), sym(1)];
        let n = Regex::word(&w).to_nfa();
        assert!(n.accepts(&w));
        assert!(!n.accepts(&[sym(0)]));
        assert!(!n.accepts(&[sym(1), sym(0)]));
    }

    #[test]
    fn any_star_accepts_everything() {
        let n = Regex::any_star().to_nfa();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[sym(0)]));
        assert!(n.accepts(&[sym(5), sym(9), sym(5)]));
    }

    #[test]
    fn plus_semantics() {
        let n = Regex::sym(sym(3)).plus().to_nfa();
        assert!(!n.accepts(&[]));
        assert!(n.accepts(&[sym(3)]));
        assert!(n.accepts(&[sym(3), sym(3)]));
        assert!(!n.accepts(&[sym(3), sym(4)]));
    }

    #[test]
    fn complex_expression() {
        // (a b | c)* d?
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let d = sym(3);
        let re = Regex::concat(vec![
            Regex::union(vec![Regex::word(&[a, b]), Regex::sym(c)]).star(),
            Regex::sym(d).optional(),
        ]);
        let n = re.to_nfa();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[d]));
        assert!(n.accepts(&[a, b, c, a, b]));
        assert!(n.accepts(&[c, c, d]));
        assert!(!n.accepts(&[a, d]));
        assert!(!n.accepts(&[d, d]));
    }
}
