//! Witness extraction: shortest accepted words and bounded enumeration.
//!
//! Counterexample generation (paper §6.3) extracts concrete violating
//! paths from difference automata. A witness is reported as a sequence of
//! [`SymSet`] constraints; [`concretize`] instantiates it into symbols
//! using a [`SymbolTable`].

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};
use crate::symset::SymSet;
use crate::{Symbol, SymbolTable};
use std::collections::VecDeque;

/// Shortest word accepted by `dfa`, as a sequence of arc labels, or
/// `None` if the language is empty.
pub fn shortest_word(dfa: &Dfa) -> Option<Vec<SymSet>> {
    let mut parent: Vec<Option<(StateId, SymSet)>> = vec![None; dfa.len()];
    let mut seen = vec![false; dfa.len()];
    let mut queue = VecDeque::new();
    queue.push_back(dfa.start());
    seen[dfa.start()] = true;
    let mut hit: Option<StateId> = None;
    while let Some(s) = queue.pop_front() {
        if dfa.is_accepting(s) {
            hit = Some(s);
            break;
        }
        for (label, t) in dfa.arcs_from(s) {
            if !seen[*t] {
                seen[*t] = true;
                parent[*t] = Some((s, label.clone()));
                queue.push_back(*t);
            }
        }
    }
    let mut cur = hit?;
    let mut out = Vec::new();
    while let Some((prev, label)) = parent[cur].take() {
        out.push(label);
        cur = prev;
    }
    out.reverse();
    Some(out)
}

/// Shortest word accepted by an NFA (ε-arcs allowed), or `None`.
pub fn shortest_word_nfa(nfa: &Nfa) -> Option<Vec<SymSet>> {
    // BFS over ε-closed state sets would lose the per-arc labels; instead
    // BFS over single states treating ε as zero-cost edges (0-1 BFS).
    let mut dist = vec![usize::MAX; nfa.len()];
    let mut parent: Vec<Option<(StateId, Option<SymSet>)>> = vec![None; nfa.len()];
    let mut deque = VecDeque::new();
    dist[nfa.start()] = 0;
    deque.push_back(nfa.start());
    let mut best: Option<StateId> = None;
    while let Some(s) = deque.pop_front() {
        if nfa.is_accepting(s) && best.is_none() {
            best = Some(s);
            // keep going only if a shorter path could still appear — BFS
            // with 0-weight edges processed front-first makes this minimal
            break;
        }
        for &t in nfa.eps_from(s) {
            if dist[s] < dist[t] {
                dist[t] = dist[s];
                parent[t] = Some((s, None));
                deque.push_front(t);
            }
        }
        for (label, t) in nfa.arcs_from(s) {
            if dist[s] + 1 < dist[*t] {
                dist[*t] = dist[s] + 1;
                parent[*t] = Some((s, Some(label.clone())));
                deque.push_back(*t);
            }
        }
    }
    let mut cur = best?;
    let mut out = Vec::new();
    while let Some((prev, label)) = parent[cur].take() {
        if let Some(l) = label {
            out.push(l);
        }
        cur = prev;
    }
    out.reverse();
    Some(out)
}

/// Enumerate up to `limit` accepted words of length at most `max_len`,
/// shortest first (breadth-first over prefixes). Used to report several
/// counterexample paths per violating flow instead of just one.
pub fn enumerate_words(dfa: &Dfa, limit: usize, max_len: usize) -> Vec<Vec<SymSet>> {
    let mut out = Vec::new();
    if limit == 0 {
        return out;
    }
    let mut queue: VecDeque<(StateId, Vec<SymSet>)> = VecDeque::new();
    queue.push_back((dfa.start(), Vec::new()));
    while let Some((s, path)) = queue.pop_front() {
        if dfa.is_accepting(s) {
            out.push(path.clone());
            if out.len() >= limit {
                break;
            }
        }
        if path.len() >= max_len {
            continue;
        }
        for (label, t) in dfa.arcs_from(s) {
            let mut next = path.clone();
            next.push(label.clone());
            queue.push_back((*t, next));
        }
    }
    out
}

/// Turn a witness (sequence of symbol-set constraints) into a concrete
/// word, consulting `table` to name a member of each co-finite set.
///
/// Returns `None` if some co-finite constraint excludes every symbol the
/// table knows about (cannot happen when the table covers the location
/// database plus reserved symbols).
pub fn concretize(witness: &[SymSet], table: &SymbolTable) -> Option<Vec<Symbol>> {
    witness
        .iter()
        .map(|set| match set {
            SymSet::Finite(_) => set.some_finite_member(),
            SymSet::CoFinite(excl) => table.any_except(excl),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;
    use crate::regex::Regex;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    fn dfa_of(re: &Regex) -> Dfa {
        determinize(&re.to_nfa())
    }

    #[test]
    fn shortest_of_empty_language_is_none() {
        assert_eq!(shortest_word(&Dfa::empty_language()), None);
        assert_eq!(shortest_word_nfa(&Nfa::empty_language()), None);
    }

    #[test]
    fn shortest_of_epsilon_language_is_empty_word() {
        let d = dfa_of(&Regex::Eps);
        assert_eq!(shortest_word(&d), Some(vec![]));
    }

    #[test]
    fn shortest_picks_minimal_length() {
        let a = sym(0);
        let b = sym(1);
        // aaa | b
        let re = Regex::union(vec![Regex::word(&[a, a, a]), Regex::sym(b)]);
        let w = shortest_word(&dfa_of(&re)).unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].contains(b));
    }

    #[test]
    fn shortest_nfa_handles_eps_chains() {
        let a = sym(0);
        let re = Regex::concat(vec![Regex::Eps, Regex::sym(a).optional(), Regex::sym(a)]);
        let n = re.to_nfa();
        let w = shortest_word_nfa(&n).unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].contains(a));
    }

    #[test]
    fn enumerate_returns_shortest_first() {
        let a = sym(0);
        let d = dfa_of(&Regex::sym(a).star());
        let words = enumerate_words(&d, 3, 10);
        assert_eq!(words.len(), 3);
        assert_eq!(words[0].len(), 0);
        assert_eq!(words[1].len(), 1);
        assert_eq!(words[2].len(), 2);
    }

    #[test]
    fn enumerate_respects_max_len() {
        let a = sym(0);
        let d = dfa_of(&Regex::sym(a).star());
        let words = enumerate_words(&d, 100, 2);
        assert_eq!(words.len(), 3); // ε, a, aa
    }

    #[test]
    fn enumerate_finite_language_exhausts() {
        let a = sym(0);
        let b = sym(1);
        let d = dfa_of(&Regex::union(vec![Regex::sym(a), Regex::word(&[b, b])]));
        let words = enumerate_words(&d, 100, 10);
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn concretize_finite_and_cofinite() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let b = table.intern("b");
        let w = vec![SymSet::singleton(a), SymSet::all_except(vec![a])];
        let conc = concretize(&w, &table).unwrap();
        assert_eq!(conc, vec![a, b]);
    }

    #[test]
    fn concretize_fails_when_everything_excluded() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let w = vec![SymSet::all_except(vec![a])];
        assert_eq!(concretize(&w, &table), None);
    }

    #[test]
    fn witness_words_are_accepted() {
        let a = sym(0);
        let b = sym(1);
        let re = Regex::concat(vec![
            Regex::sym(a),
            Regex::union(vec![Regex::sym(b), Regex::word(&[a, b])]),
        ]);
        let d = dfa_of(&re);
        let mut table = SymbolTable::new();
        table.intern("a"); // index 0
        table.intern("b"); // index 1
        for w in enumerate_words(&d, 10, 5) {
            let conc = concretize(&w, &table).unwrap();
            assert!(d.accepts(&conc), "enumerated word not accepted: {conc:?}");
        }
    }
}
