//! Finite and co-finite symbol sets: the effective Boolean algebra that
//! transition labels are drawn from.
//!
//! Transitions in our automata are labelled with *sets* of symbols rather
//! than single symbols, so a pattern like `.*` is one arc instead of one
//! arc per location. Sets are either finite (`{a, b}`) or co-finite
//! ("everything except `{a, b}`"), which is closed under union,
//! intersection, and complement — exactly what symbolic automata
//! algorithms need (cf. d'Antoni & Veanes, "The power of symbolic
//! automata and transducers").
//!
//! The alphabet is treated as open-ended: a co-finite set is never empty.
//! This matches the intent of `.` in Rela specifications ("any location,
//! including ones this spec does not mention").

use crate::symbol::Symbol;
use std::fmt;

/// A set of symbols: either a finite set or the complement of one.
///
/// Invariant: the symbol vector is sorted and deduplicated.
///
/// # Examples
///
/// ```
/// use rela_automata::{SymSet, Symbol};
///
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// let s = SymSet::from_syms(vec![a, b]);
/// let t = SymSet::singleton(a);
/// assert_eq!(s.intersect(&t), t);
/// assert!(s.complement().intersect(&t).is_empty());
/// assert!(SymSet::universe().contains(b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymSet {
    /// Exactly these symbols.
    Finite(Vec<Symbol>),
    /// Every symbol except these.
    CoFinite(Vec<Symbol>),
}

impl SymSet {
    /// The empty set.
    pub fn empty() -> SymSet {
        SymSet::Finite(Vec::new())
    }

    /// The set of all symbols (`.` in a path pattern).
    pub fn universe() -> SymSet {
        SymSet::CoFinite(Vec::new())
    }

    /// A one-symbol set.
    pub fn singleton(sym: Symbol) -> SymSet {
        SymSet::Finite(vec![sym])
    }

    /// A finite set from arbitrary (possibly unsorted, duplicated) symbols.
    pub fn from_syms(mut syms: Vec<Symbol>) -> SymSet {
        syms.sort_unstable();
        syms.dedup();
        SymSet::Finite(syms)
    }

    /// Everything except the given symbols.
    pub fn all_except(mut syms: Vec<Symbol>) -> SymSet {
        syms.sort_unstable();
        syms.dedup();
        SymSet::CoFinite(syms)
    }

    /// True iff the set contains no symbols.
    ///
    /// A co-finite set is never empty because the alphabet is open.
    pub fn is_empty(&self) -> bool {
        matches!(self, SymSet::Finite(v) if v.is_empty())
    }

    /// True iff this is the universal set.
    pub fn is_universe(&self) -> bool {
        matches!(self, SymSet::CoFinite(v) if v.is_empty())
    }

    /// Membership test.
    pub fn contains(&self, sym: Symbol) -> bool {
        match self {
            SymSet::Finite(v) => v.binary_search(&sym).is_ok(),
            SymSet::CoFinite(v) => v.binary_search(&sym).is_err(),
        }
    }

    /// Set complement.
    pub fn complement(&self) -> SymSet {
        match self {
            SymSet::Finite(v) => SymSet::CoFinite(v.clone()),
            SymSet::CoFinite(v) => SymSet::Finite(v.clone()),
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &SymSet) -> SymSet {
        use SymSet::*;
        match (self, other) {
            (Finite(a), Finite(b)) => Finite(sorted_intersect(a, b)),
            (Finite(a), CoFinite(b)) => Finite(sorted_difference(a, b)),
            (CoFinite(a), Finite(b)) => Finite(sorted_difference(b, a)),
            (CoFinite(a), CoFinite(b)) => CoFinite(sorted_union(a, b)),
        }
    }

    /// Set union.
    pub fn union(&self, other: &SymSet) -> SymSet {
        use SymSet::*;
        match (self, other) {
            (Finite(a), Finite(b)) => Finite(sorted_union(a, b)),
            (Finite(a), CoFinite(b)) => CoFinite(sorted_difference(b, a)),
            (CoFinite(a), Finite(b)) => CoFinite(sorted_difference(a, b)),
            (CoFinite(a), CoFinite(b)) => CoFinite(sorted_intersect(a, b)),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &SymSet) -> SymSet {
        self.intersect(&other.complement())
    }

    /// True iff the two sets share at least one symbol.
    pub fn intersects(&self, other: &SymSet) -> bool {
        !self.intersect(other).is_empty()
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &SymSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Some member of the set, if one can be named without knowing the
    /// full alphabet. For co-finite sets this returns `None`; callers that
    /// need a concrete symbol should consult a
    /// [`SymbolTable`](crate::SymbolTable) via
    /// [`SymbolTable::any_except`](crate::SymbolTable::any_except).
    pub fn some_finite_member(&self) -> Option<Symbol> {
        match self {
            SymSet::Finite(v) => v.first().copied(),
            SymSet::CoFinite(_) => None,
        }
    }

    /// The excluded symbols if co-finite, or `None`.
    pub fn excluded(&self) -> Option<&[Symbol]> {
        match self {
            SymSet::CoFinite(v) => Some(v),
            SymSet::Finite(_) => None,
        }
    }

    /// Iterate over members of a finite set (panics on co-finite sets;
    /// check [`SymSet::excluded`] first).
    pub fn iter_finite(&self) -> impl Iterator<Item = Symbol> + '_ {
        match self {
            SymSet::Finite(v) => v.iter().copied(),
            SymSet::CoFinite(_) => panic!("iter_finite on a co-finite set"),
        }
    }
}

impl fmt::Display for SymSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymSet::Finite(v) => {
                write!(f, "{{")?;
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}")
            }
            SymSet::CoFinite(v) if v.is_empty() => write!(f, "."),
            SymSet::CoFinite(v) => {
                write!(f, "!{{")?;
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn sorted_intersect(a: &[Symbol], b: &[Symbol]) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn sorted_union(a: &[Symbol], b: &[Symbol]) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a \ b` for sorted slices.
fn sorted_difference(a: &[Symbol], b: &[Symbol]) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Refine a partition of the alphabet by a collection of sets.
///
/// Returns pairwise-disjoint, non-empty sets ("minterms") such that every
/// input set is a union of minterms and the minterms cover the whole
/// alphabet. Used by determinization, minimization, and equivalence
/// checking to locally discretize the symbolic alphabet.
///
/// # Examples
///
/// ```
/// use rela_automata::{minterms, SymSet, Symbol};
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// let sets = vec![
///     SymSet::from_syms(vec![a, b]),
///     SymSet::singleton(a),
/// ];
/// let parts = minterms(&sets);
/// // {a}, {b}, and "everything else" are distinguishable.
/// assert_eq!(parts.len(), 3);
/// ```
pub fn minterms(sets: &[SymSet]) -> Vec<SymSet> {
    let mut parts = vec![SymSet::universe()];
    for s in sets {
        if s.is_empty() || s.is_universe() {
            continue;
        }
        let mut next = Vec::with_capacity(parts.len() * 2);
        for p in parts {
            let inside = p.intersect(s);
            let outside = p.difference(s);
            if !inside.is_empty() {
                next.push(inside);
            }
            if !outside.is_empty() {
                next.push(outside);
            }
        }
        parts = next;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ix: u32) -> Symbol {
        Symbol::from_index(ix as usize)
    }

    #[test]
    fn empty_and_universe() {
        assert!(SymSet::empty().is_empty());
        assert!(!SymSet::universe().is_empty());
        assert!(SymSet::universe().is_universe());
        assert!(SymSet::universe().contains(s(42)));
        assert!(!SymSet::empty().contains(s(42)));
    }

    #[test]
    fn from_syms_sorts_and_dedups() {
        let set = SymSet::from_syms(vec![s(3), s(1), s(3), s(2)]);
        assert_eq!(set, SymSet::Finite(vec![s(1), s(2), s(3)]));
    }

    #[test]
    fn complement_involution() {
        let set = SymSet::from_syms(vec![s(1), s(5)]);
        assert_eq!(set.complement().complement(), set);
    }

    #[test]
    fn intersect_finite_cofinite() {
        let fin = SymSet::from_syms(vec![s(1), s(2), s(3)]);
        let cof = SymSet::all_except(vec![s(2)]);
        assert_eq!(fin.intersect(&cof), SymSet::from_syms(vec![s(1), s(3)]));
        assert_eq!(cof.intersect(&fin), SymSet::from_syms(vec![s(1), s(3)]));
    }

    #[test]
    fn union_cofinite_cofinite() {
        let a = SymSet::all_except(vec![s(1), s(2)]);
        let b = SymSet::all_except(vec![s(2), s(3)]);
        // union excludes only what both exclude
        assert_eq!(a.union(&b), SymSet::all_except(vec![s(2)]));
        assert_eq!(a.intersect(&b), SymSet::all_except(vec![s(1), s(2), s(3)]));
    }

    #[test]
    fn difference_and_subset() {
        let big = SymSet::from_syms(vec![s(1), s(2), s(3)]);
        let small = SymSet::from_syms(vec![s(2)]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert_eq!(big.difference(&small), SymSet::from_syms(vec![s(1), s(3)]));
        assert!(small.is_subset(&SymSet::universe()));
        assert!(SymSet::empty().is_subset(&small));
    }

    #[test]
    fn de_morgan_on_samples() {
        let a = SymSet::from_syms(vec![s(1), s(2)]);
        let b = SymSet::all_except(vec![s(2), s(4)]);
        assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
        assert_eq!(
            a.intersect(&b).complement(),
            a.complement().union(&b.complement())
        );
    }

    #[test]
    fn minterms_partition() {
        let sets = vec![
            SymSet::from_syms(vec![s(1), s(2)]),
            SymSet::from_syms(vec![s(2), s(3)]),
        ];
        let parts = minterms(&sets);
        // parts: {1}, {2}, {3}, everything-else
        assert_eq!(parts.len(), 4);
        // pairwise disjoint
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                assert!(!parts[i].intersects(&parts[j]), "{i} {j} overlap");
            }
        }
        // each input is a union of minterms: every minterm is inside or outside
        for set in &sets {
            for p in &parts {
                assert!(p.is_subset(set) || !p.intersects(set));
            }
        }
    }

    #[test]
    fn minterms_of_empty_input_is_universe() {
        let parts = minterms(&[]);
        assert_eq!(parts, vec![SymSet::universe()]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SymSet::universe().to_string(), ".");
        assert_eq!(SymSet::from_syms(vec![s(1)]).to_string(), "{s1}");
        assert_eq!(SymSet::all_except(vec![s(1)]).to_string(), "!{s1}");
    }
}
