//! Transducer composition `R₁ ∘ R₂` and relational image `P ⊲ R`.
//!
//! Composition synchronizes the *output* tape of the first machine with
//! the *input* tape of the second. Because our transducers are unweighted
//! (boolean) acceptors, the naive ε-handling — letting either side move
//! independently on arcs that produce/consume nothing on the shared tape —
//! is language-correct; Mohri's ε-filter only matters for weighted
//! machines, where duplicated ε-paths would double-count weights (see
//! DESIGN.md §5).

use crate::fst::{Fst, FstLabel};
use crate::nfa::{Nfa, StateId};
use std::collections::HashMap;

/// Combine one synchronized step: `first` writes a symbol that `second`
/// reads. Returns `None` when the arcs cannot synchronize.
fn combine(first: &FstLabel, second: &FstLabel) -> Option<FstLabel> {
    use FstLabel::*;
    let label = match (first, second) {
        (Out(s), In(t)) => {
            if !s.intersects(t) {
                return None;
            }
            Eps
        }
        (Out(s), Id(t)) => Out(s.intersect(t)),
        (Out(s), Pair(t, u)) => {
            if !s.intersects(t) {
                return None;
            }
            Out(u.clone())
        }
        (Pair(a, b), In(t)) => {
            if !b.intersects(t) {
                return None;
            }
            In(a.clone())
        }
        (Pair(a, b), Id(t)) => Pair(a.clone(), b.intersect(t)),
        (Pair(a, b), Pair(t, u)) => {
            if !b.intersects(t) {
                return None;
            }
            Pair(a.clone(), u.clone())
        }
        (Id(s), In(t)) => In(s.intersect(t)),
        (Id(s), Id(t)) => Id(s.intersect(t)),
        (Id(s), Pair(t, u)) => Pair(s.intersect(t), u.clone()),
        // arcs that do not touch the shared tape are handled by the
        // independent-move rules in `compose`, not here
        _ => return None,
    };
    if label.is_void() {
        None
    } else {
        Some(label)
    }
}

/// Relational composition: `(x, z) ∈ compose(f, g)` iff there is a `y`
/// with `(x, y) ∈ f` and `(y, z) ∈ g`.
///
/// # Examples
///
/// ```
/// use rela_automata::{compose, Fst, Regex, Symbol};
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// let c = Symbol::from_index(2);
/// let ab = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
/// let bc = Fst::cross(&Regex::sym(b).to_nfa(), &Regex::sym(c).to_nfa());
/// let ac = compose(&ab, &bc);
/// assert!(ac.relates(&[a], &[c]));
/// assert!(!ac.relates(&[a], &[b]));
/// ```
pub fn compose(f: &Fst, g: &Fst) -> Fst {
    let mut out = Fst::new();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let start_pair = (f.start(), g.start());
    index.insert(start_pair, out.start());
    out.set_accepting(
        out.start(),
        f.is_accepting(f.start()) && g.is_accepting(g.start()),
    );
    let mut work = vec![start_pair];
    while let Some((sf, sg)) = work.pop() {
        let sid = index[&(sf, sg)];
        let push = |out: &mut Fst,
                    index: &mut HashMap<(StateId, StateId), StateId>,
                    work: &mut Vec<(StateId, StateId)>,
                    label: FstLabel,
                    tf: StateId,
                    tg: StateId| {
            let tid = *index.entry((tf, tg)).or_insert_with(|| {
                let id = out.add_state();
                out.set_accepting(id, f.is_accepting(tf) && g.is_accepting(tg));
                work.push((tf, tg));
                id
            });
            out.add_arc(sid, label, tid);
        };
        // first machine moves alone (its arc writes nothing to the shared tape)
        for (l1, t1) in f.arcs_from(sf) {
            if l1.output().is_none() {
                push(&mut out, &mut index, &mut work, l1.clone(), *t1, sg);
            }
        }
        // second machine moves alone (its arc reads nothing from the shared tape)
        for (l2, t2) in g.arcs_from(sg) {
            if l2.input().is_none() {
                push(&mut out, &mut index, &mut work, l2.clone(), sf, *t2);
            }
        }
        // synchronized move
        for (l1, t1) in f.arcs_from(sf) {
            if l1.output().is_none() {
                continue;
            }
            for (l2, t2) in g.arcs_from(sg) {
                if l2.input().is_none() {
                    continue;
                }
                if let Some(label) = combine(l1, l2) {
                    push(&mut out, &mut index, &mut work, label, *t1, *t2);
                }
            }
        }
    }
    out
}

/// The image `P ⊲ R`: the set of paths related by `R` to some path in
/// `P` (paper §5.2). Computed as `range(I(P) ∘ R)`.
pub fn image(p: &Nfa, r: &Fst) -> Nfa {
    compose(&Fst::identity(p), r).range()
}

/// The preimage of `P` under `R`: paths that `R` maps into `P`.
/// Computed as `domain(R ∘ I(P))`.
pub fn preimage(r: &Fst, p: &Nfa) -> Nfa {
    compose(r, &Fst::identity(p)).domain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::symset::SymSet;
    use crate::Symbol;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    #[test]
    fn compose_cross_relations() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let ab = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let bc = Fst::cross(&Regex::sym(b).to_nfa(), &Regex::sym(c).to_nfa());
        let ac = compose(&ab, &bc);
        assert!(ac.relates(&[a], &[c]));
        assert!(!ac.relates(&[a], &[b]));
        assert!(!ac.relates(&[b], &[c]));
    }

    #[test]
    fn compose_fails_when_middle_disjoint() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let ab = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let cc = Fst::cross(&Regex::sym(c).to_nfa(), &Regex::sym(c).to_nfa());
        let r = compose(&ab, &cc);
        assert!(!r.relates(&[a], &[c]));
        assert!(!r.relates(&[a], &[b]));
    }

    #[test]
    fn compose_identity_is_neutral() {
        let a = sym(0);
        let b = sym(1);
        let any = Regex::any_star().to_nfa();
        let f = Fst::cross(
            &Regex::word(&[a, b]).to_nfa(),
            &Regex::word(&[b, a]).to_nfa(),
        );
        let left = compose(&Fst::identity(&any), &f);
        let right = compose(&f, &Fst::identity(&any));
        for (x, y) in [
            (vec![a, b], vec![b, a]),
            (vec![a, b], vec![a, b]),
            (vec![b, a], vec![a, b]),
        ] {
            assert_eq!(f.relates(&x, &y), left.relates(&x, &y));
            assert_eq!(f.relates(&x, &y), right.relates(&x, &y));
        }
    }

    #[test]
    fn compose_id_chains_preserve_symbol_identity() {
        let a = sym(0);
        let b = sym(1);
        // I({a,b}) ∘ I({b}) = I({b})
        let i1 = Fst::identity(&Nfa::symbol_set(SymSet::from_syms(vec![a, b])));
        let i2 = Fst::identity(&Nfa::symbol_set(SymSet::singleton(b)));
        let c = compose(&i1, &i2);
        assert!(c.relates(&[b], &[b]));
        assert!(!c.relates(&[a], &[a]));
        assert!(!c.relates(&[a], &[b]));
    }

    #[test]
    fn compose_pair_with_id_restricts_output() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        // ({a} × {b,c}) ∘ I({b}) = {a} × {b}
        let p = Fst::cross(
            &Nfa::symbol_set(SymSet::singleton(a)),
            &Nfa::symbol_set(SymSet::from_syms(vec![b, c])),
        );
        let i = Fst::identity(&Nfa::symbol_set(SymSet::singleton(b)));
        let r = compose(&p, &i);
        assert!(r.relates(&[a], &[b]));
        assert!(!r.relates(&[a], &[c]));
    }

    #[test]
    fn compose_length_changing_relations() {
        let a = sym(0);
        let b = sym(1);
        // f: a → bb; g: bb → ε ; f∘g : a → ε
        let f = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::word(&[b, b]).to_nfa());
        let g = Fst::cross(&Regex::word(&[b, b]).to_nfa(), &Regex::Eps.to_nfa());
        let fg = compose(&f, &g);
        assert!(fg.relates(&[a], &[]));
        assert!(!fg.relates(&[a], &[b]));
    }

    #[test]
    fn image_of_cross() {
        let a = sym(0);
        let b = sym(1);
        // P = {a}, R = {a}×{b} ⇒ P ⊲ R = {b}
        let p = Regex::sym(a).to_nfa();
        let r = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let img = image(&p, &r);
        assert!(img.accepts(&[b]));
        assert!(!img.accepts(&[a]));
        assert!(!img.accepts(&[]));
    }

    #[test]
    fn image_respects_domain_restriction() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        // P = {c}, R = {a}×{b} ⇒ P ⊲ R = ∅
        let p = Regex::sym(c).to_nfa();
        let r = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let img = image(&p, &r);
        assert!(img.language_is_empty());
    }

    #[test]
    fn image_of_identity_is_intersection() {
        let a = sym(0);
        let b = sym(1);
        // P ⊲ I(D) = P ∩ D (the "preserve" encoding, paper §5.3)
        let p = Regex::union(vec![Regex::word(&[a, b]), Regex::sym(a)]).to_nfa();
        let d = Regex::union(vec![Regex::word(&[a, b]), Regex::sym(b)]).to_nfa();
        let img = image(&p, &Fst::identity(&d));
        assert!(img.accepts(&[a, b]));
        assert!(!img.accepts(&[a]));
        assert!(!img.accepts(&[b]));
    }

    #[test]
    fn preimage_inverts_image() {
        let a = sym(0);
        let b = sym(1);
        let r = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let pre = preimage(&r, &Regex::sym(b).to_nfa());
        assert!(pre.accepts(&[a]));
        assert!(!pre.accepts(&[b]));
    }

    #[test]
    fn image_through_star_relation() {
        let a = sym(0);
        let b = sym(1);
        // R = ({a}×{b})*: maps a^n to b^n
        let r = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa()).star();
        let p = Regex::word(&[a, a, a]).to_nfa();
        let img = image(&p, &r);
        assert!(img.accepts(&[b, b, b]));
        assert!(!img.accepts(&[b, b]));
        assert!(!img.accepts(&[]));
    }

    #[test]
    fn union_relation_image_is_union_of_images() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let r1 = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let r2 = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(c).to_nfa());
        let u = r1.union(&r2);
        let p = Regex::sym(a).to_nfa();
        let img = image(&p, &u);
        assert!(img.accepts(&[b]));
        assert!(img.accepts(&[c]));
        assert!(!img.accepts(&[a]));
    }
}
