//! DFA minimization via Hopcroft's partition-refinement algorithm.
//!
//! Symbolic arcs are first discretized against the automaton's *global
//! minterms* (the coarsest partition of the alphabet that all arc labels
//! respect), Hopcroft runs over that dense class alphabet, and the result
//! is re-symbolized by unioning the classes of merged arcs.

use crate::dfa::Dfa;
use crate::symset::{minterms, SymSet};
use std::collections::HashMap;

/// Minimize a DFA. The result is the canonical minimal partial DFA for
/// the language (dead states removed, then Myhill–Nerode classes merged).
///
/// # Examples
///
/// ```
/// use rela_automata::{determinize, minimize, Regex, Symbol};
/// let a = Symbol::from_index(0);
/// // (a|aa)* ≡ a*
/// let re = Regex::union(vec![Regex::sym(a), Regex::word(&[a, a])]).star();
/// let m = minimize(&determinize(&re.to_nfa()));
/// assert_eq!(m.len(), 1);
/// assert!(m.accepts(&[a, a, a]));
/// ```
pub fn minimize(dfa: &Dfa) -> Dfa {
    // Work on the completed, reachable automaton so the transition
    // function is total; trim dead states at the end.
    let dfa = dfa.trim_unreachable().complete();
    let n = dfa.len();
    if n == 0 {
        return Dfa::empty_language();
    }

    // 1. Global minterms over every arc label in the automaton.
    let mut labels: Vec<SymSet> = Vec::new();
    for s in 0..n {
        for (l, _) in dfa.arcs_from(s) {
            labels.push(l.clone());
        }
    }
    let classes = minterms(&labels);
    let k = classes.len();

    // 2. Dense transition table: state × class → state.
    let mut delta = vec![usize::MAX; n * k];
    for s in 0..n {
        for (c, class) in classes.iter().enumerate() {
            // `class` is a minterm: contained in exactly one arc label of a
            // complete DFA state.
            let t = dfa
                .arcs_from(s)
                .iter()
                .find(|(l, _)| class.is_subset(l))
                .map(|&(_, t)| t)
                .expect("complete DFA must cover every minterm");
            delta[s * k + c] = t;
        }
    }
    // Reverse transitions per class.
    let mut rdelta: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; k];
    for s in 0..n {
        for c in 0..k {
            rdelta[c][delta[s * k + c]].push(s);
        }
    }

    // 3. Hopcroft refinement.
    let mut block_of: Vec<usize> = (0..n)
        .map(|s| if dfa.is_accepting(s) { 0 } else { 1 })
        .collect();
    let accepting_count = block_of.iter().filter(|&&b| b == 0).count();
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); 2];
    for s in 0..n {
        blocks[block_of[s]].push(s);
    }
    // drop an empty class if all states agree on acceptance
    if accepting_count == 0 {
        blocks.remove(0);
        for b in block_of.iter_mut() {
            *b = 0;
        }
    } else if accepting_count == n {
        blocks.pop();
    }

    let mut worklist: Vec<(usize, usize)> = Vec::new(); // (block, class)
    for c in 0..k {
        // push the smaller block for the classic complexity bound
        if blocks.len() == 2 {
            let smaller = if blocks[0].len() <= blocks[1].len() {
                0
            } else {
                1
            };
            worklist.push((smaller, c));
        } else {
            worklist.push((0, c));
        }
    }

    while let Some((bid, c)) = worklist.pop() {
        // states with a c-transition into block `bid`
        let splitter: Vec<usize> = blocks[bid].clone();
        let mut preimage: Vec<usize> = Vec::new();
        for &t in &splitter {
            preimage.extend(rdelta[c][t].iter().copied());
        }
        if preimage.is_empty() {
            continue;
        }
        // group preimage states by their current block
        let mut touched: HashMap<usize, Vec<usize>> = HashMap::new();
        for s in preimage {
            touched.entry(block_of[s]).or_default().push(s);
        }
        for (block_id, mut members) in touched {
            members.sort_unstable();
            members.dedup();
            if members.len() == blocks[block_id].len() {
                continue; // no split: the whole block maps into bid
            }
            // split: `members` leave `block_id` into a new block
            let new_id = blocks.len();
            blocks[block_id].retain(|s| !members.contains(s));
            for &s in &members {
                block_of[s] = new_id;
            }
            blocks.push(members);
            let (smaller, larger) = if blocks[new_id].len() <= blocks[block_id].len() {
                (new_id, block_id)
            } else {
                (block_id, new_id)
            };
            for cc in 0..k {
                // Hopcroft: if (block_id, cc) is pending, both halves will be
                // processed via it plus the new entry; otherwise the smaller
                // half suffices.
                if worklist.contains(&(block_id, cc)) {
                    worklist.push((new_id, cc));
                } else {
                    let _ = larger;
                    worklist.push((smaller, cc));
                }
            }
        }
    }

    // 4. Build the quotient automaton, re-symbolizing arcs.
    let num_blocks = blocks.len();
    let mut arcs: Vec<Vec<(SymSet, usize)>> = vec![Vec::new(); num_blocks];
    let mut accepting = vec![false; num_blocks];
    for (bid, members) in blocks.iter().enumerate() {
        let rep = members[0];
        accepting[bid] = dfa.is_accepting(rep);
        // union minterm classes per target block
        let mut per_target: HashMap<usize, SymSet> = HashMap::new();
        for (c, class) in classes.iter().enumerate() {
            let target_block = block_of[delta[rep * k + c]];
            per_target
                .entry(target_block)
                .and_modify(|s| *s = s.union(class))
                .or_insert_with(|| class.clone());
        }
        let mut row: Vec<(SymSet, usize)> = per_target.into_iter().map(|(t, l)| (l, t)).collect();
        row.sort_by_key(|&(_, t)| t);
        arcs[bid] = row;
    }
    Dfa::from_parts(arcs, accepting, block_of[dfa.start()]).trim_dead()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;
    use crate::regex::Regex;
    use crate::Symbol;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    fn min_of(re: &Regex) -> Dfa {
        minimize(&determinize(&re.to_nfa()))
    }

    #[test]
    fn sigma_star_is_one_state() {
        let m = min_of(&Regex::any_star());
        assert_eq!(m.len(), 1);
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[sym(3), sym(1)]));
    }

    #[test]
    fn empty_language_minimizes_small() {
        let m = min_of(&Regex::Empty);
        assert!(m.language_is_empty());
        assert!(m.len() <= 1);
    }

    #[test]
    fn equivalent_regexes_same_size() {
        let a = sym(0);
        let b = sym(1);
        // (a|b)* and (a*b*)* denote the same language
        let r1 = Regex::union(vec![Regex::sym(a), Regex::sym(b)]).star();
        let r2 = Regex::concat(vec![Regex::sym(a).star(), Regex::sym(b).star()]).star();
        let m1 = min_of(&r1);
        let m2 = min_of(&r2);
        assert_eq!(m1.len(), m2.len());
        for w in [vec![], vec![a], vec![b, a, b], vec![a, a, b]] {
            assert!(m1.accepts(&w) && m2.accepts(&w));
        }
    }

    #[test]
    fn preserves_language_on_samples() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let re = Regex::concat(vec![
            Regex::union(vec![Regex::word(&[a, b]), Regex::sym(c).plus()]),
            Regex::any_star(),
        ]);
        let d = determinize(&re.to_nfa());
        let m = minimize(&d);
        assert!(m.len() <= d.len());
        for w in [
            vec![],
            vec![a],
            vec![a, b],
            vec![c],
            vec![c, c, a],
            vec![a, b, c, a],
            vec![b, a],
        ] {
            assert_eq!(d.accepts(&w), m.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn distinguishable_states_not_merged() {
        let a = sym(0);
        // language {a, aaa}: needs distinct states for lengths 0..=3
        let re = Regex::union(vec![Regex::word(&[a]), Regex::word(&[a, a, a])]);
        let m = min_of(&re);
        assert!(m.accepts(&[a]));
        assert!(!m.accepts(&[a, a]));
        assert!(m.accepts(&[a, a, a]));
        assert!(!m.accepts(&[a, a, a, a]));
    }

    #[test]
    fn moore_style_counter() {
        // words over {a} whose length ≡ 0 (mod 3)
        let a = sym(0);
        let re = Regex::word(&[a, a, a]).star();
        let m = min_of(&re);
        assert_eq!(m.len(), 3);
        assert!(m.accepts(&[]));
        assert!(!m.accepts(&[a]));
        assert!(!m.accepts(&[a, a]));
        assert!(m.accepts(&[a, a, a]));
        assert!(m.accepts(&[a; 6]));
    }

    #[test]
    fn cofinite_language_minimization() {
        // .* \ {a} expressed as: ε | (!{a}) | ..+ — "anything except the 1-path a"
        let a = sym(0);
        let re = Regex::union(vec![
            Regex::Eps,
            Regex::Set(SymSet::all_except(vec![a])),
            Regex::concat(vec![Regex::any(), Regex::any(), Regex::any_star()]),
        ]);
        let m = min_of(&re);
        assert!(m.accepts(&[]));
        assert!(!m.accepts(&[a]));
        assert!(m.accepts(&[sym(1)]));
        assert!(m.accepts(&[a, a]));
    }
}
