//! Nondeterministic finite automata with ε-transitions and symbolic
//! (set-labelled) arcs.
//!
//! This is the workhorse representation: forwarding DAGs, Thompson
//! constructions from path patterns, and images of transducer application
//! all land here before determinization.

use crate::symset::SymSet;
use crate::Symbol;

/// Index of a state inside one automaton.
pub type StateId = usize;

/// A symbolic ε-NFA.
///
/// # Examples
///
/// ```
/// use rela_automata::{Nfa, SymSet, Symbol};
///
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// // language { ab }
/// let mut nfa = Nfa::new();
/// let q0 = nfa.start();
/// let q1 = nfa.add_state();
/// let q2 = nfa.add_state();
/// nfa.add_arc(q0, SymSet::singleton(a), q1);
/// nfa.add_arc(q1, SymSet::singleton(b), q2);
/// nfa.set_accepting(q2, true);
/// assert!(nfa.accepts(&[a, b]));
/// assert!(!nfa.accepts(&[a]));
/// assert!(!nfa.accepts(&[b, a]));
/// ```
// `len()` counts states; an `is_empty()` here would read as *language*
// emptiness, which is a separate concept (`language_is_empty`) — so the
// conventional pairing is suppressed deliberately.
#[allow(clippy::len_without_is_empty)]
#[derive(Debug, Clone)]
pub struct Nfa {
    arcs: Vec<Vec<(SymSet, StateId)>>,
    eps: Vec<Vec<StateId>>,
    accepting: Vec<bool>,
    start: StateId,
}

impl Default for Nfa {
    fn default() -> Self {
        Self::new()
    }
}

impl Nfa {
    /// A fresh automaton with a single non-accepting start state
    /// (recognizing the empty language).
    pub fn new() -> Nfa {
        Nfa {
            arcs: vec![Vec::new()],
            eps: vec![Vec::new()],
            accepting: vec![false],
            start: 0,
        }
    }

    /// The automaton recognizing the empty language `∅`.
    pub fn empty_language() -> Nfa {
        Nfa::new()
    }

    /// The automaton recognizing only the empty path `{ε}`.
    pub fn epsilon_language() -> Nfa {
        let mut n = Nfa::new();
        n.accepting[0] = true;
        n
    }

    /// The automaton recognizing the one-symbol paths drawn from `set`.
    pub fn symbol_set(set: SymSet) -> Nfa {
        let mut n = Nfa::new();
        if !set.is_empty() {
            let acc = n.add_state();
            n.add_arc(n.start, set, acc);
            n.set_accepting(acc, true);
        }
        n
    }

    /// The automaton recognizing exactly the single path `word`.
    pub fn word(word: &[Symbol]) -> Nfa {
        let mut n = Nfa::new();
        let mut cur = n.start;
        for &sym in word {
            let next = n.add_state();
            n.add_arc(cur, SymSet::singleton(sym), next);
            cur = next;
        }
        n.set_accepting(cur, true);
        n
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Change the start state.
    pub fn set_start(&mut self, s: StateId) {
        debug_assert!(s < self.len());
        self.start = s;
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True if the automaton has no states (never happens via public API).
    pub fn is_empty_states(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Add a fresh, non-accepting state and return its id.
    pub fn add_state(&mut self) -> StateId {
        self.arcs.push(Vec::new());
        self.eps.push(Vec::new());
        self.accepting.push(false);
        self.arcs.len() - 1
    }

    /// Add a labelled transition. Arcs with empty labels are dropped.
    pub fn add_arc(&mut self, from: StateId, label: SymSet, to: StateId) {
        if !label.is_empty() {
            self.arcs[from].push((label, to));
        }
    }

    /// Add an ε-transition.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        if from != to {
            self.eps[from].push(to);
        }
    }

    /// Mark or unmark a state as accepting.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Iterate over accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
    }

    /// Outgoing labelled arcs of `state`.
    pub fn arcs_from(&self, state: StateId) -> &[(SymSet, StateId)] {
        &self.arcs[state]
    }

    /// Outgoing ε-arcs of `state`.
    pub fn eps_from(&self, state: StateId) -> &[StateId] {
        &self.eps[state]
    }

    /// ε-closure of a set of states, returned sorted and deduplicated.
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Direct simulation: does the automaton accept `word`?
    ///
    /// Intended for tests and small inputs; the decision procedure uses
    /// determinized automata instead.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.eps_closure(&[self.start]);
        for &sym in word {
            let mut next: Vec<StateId> = Vec::new();
            for &s in &current {
                for (label, t) in &self.arcs[s] {
                    if label.contains(sym) {
                        next.push(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.eps_closure(&next);
        }
        current.iter().any(|&s| self.accepting[s])
    }

    /// True iff the language of the automaton is empty.
    pub fn language_is_empty(&self) -> bool {
        // BFS from start over both arc kinds looking for an accepting state.
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s] {
                return false;
            }
            for (_, t) in &self.arcs[s] {
                if !seen[*t] {
                    seen[*t] = true;
                    stack.push(*t);
                }
            }
            for &t in &self.eps[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Copy all of `other`'s states into `self`, returning the offset to
    /// add to `other`'s state ids. Accepting flags are preserved; the start
    /// state of `other` becomes `offset + other.start()`.
    pub(crate) fn absorb(&mut self, other: &Nfa) -> usize {
        let offset = self.len();
        for s in 0..other.len() {
            let ns = self.add_state();
            debug_assert_eq!(ns, offset + s);
            self.accepting[ns] = other.accepting[s];
        }
        for s in 0..other.len() {
            for (label, t) in &other.arcs[s] {
                self.arcs[offset + s].push((label.clone(), offset + t));
            }
            for &t in &other.eps[s] {
                self.eps[offset + s].push(offset + t);
            }
        }
        offset
    }

    /// Language union via Thompson construction.
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut out = Nfa::new();
        let a = out.absorb(self);
        let b = out.absorb(other);
        out.add_eps(out.start, a + self.start);
        out.add_eps(out.start, b + other.start);
        out
    }

    /// Language concatenation via Thompson construction.
    pub fn concat(&self, other: &Nfa) -> Nfa {
        let mut out = Nfa::new();
        let a = out.absorb(self);
        let b = out.absorb(other);
        out.add_eps(out.start, a + self.start);
        for s in 0..self.len() {
            if self.accepting[s] {
                out.accepting[a + s] = false;
                out.add_eps(a + s, b + other.start);
            }
        }
        out
    }

    /// Kleene star via Thompson construction.
    pub fn star(&self) -> Nfa {
        let mut out = Nfa::new();
        let a = out.absorb(self);
        out.add_eps(out.start, a + self.start);
        out.set_accepting(out.start, true);
        for s in 0..self.len() {
            if self.accepting[s] {
                out.add_eps(a + s, out.start);
            }
        }
        out
    }

    /// Kleene plus (one or more repetitions).
    pub fn plus(&self) -> Nfa {
        self.concat(&self.star())
    }

    /// Zero-or-one repetition.
    pub fn optional(&self) -> Nfa {
        self.union(&Nfa::epsilon_language())
    }

    /// Remove states that are unreachable from the start or cannot reach
    /// an accepting state. The language is preserved; the resulting
    /// automaton always has at least the start state.
    pub fn trim(&self) -> Nfa {
        let n = self.len();
        // forward reachability
        let mut fwd = vec![false; n];
        let mut stack = vec![self.start];
        fwd[self.start] = true;
        while let Some(s) = stack.pop() {
            for (_, t) in &self.arcs[s] {
                if !fwd[*t] {
                    fwd[*t] = true;
                    stack.push(*t);
                }
            }
            for &t in &self.eps[s] {
                if !fwd[t] {
                    fwd[t] = true;
                    stack.push(t);
                }
            }
        }
        // backward reachability from accepting states
        let mut radj: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for s in 0..n {
            for (_, t) in &self.arcs[s] {
                radj[*t].push(s);
            }
            for &t in &self.eps[s] {
                radj[t].push(s);
            }
        }
        let mut bwd = vec![false; n];
        let mut stack: Vec<StateId> = self
            .accepting
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect();
        for &s in &stack {
            bwd[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &radj[s] {
                if !bwd[t] {
                    bwd[t] = true;
                    stack.push(t);
                }
            }
        }
        let live: Vec<bool> = (0..n).map(|s| fwd[s] && bwd[s]).collect();
        let mut map = vec![usize::MAX; n];
        let mut out = Nfa::new();
        // keep start alive even if dead so the automaton stays well-formed
        map[self.start] = out.start;
        out.accepting[out.start] = self.accepting[self.start] && live[self.start];
        for s in 0..n {
            if live[s] && map[s] == usize::MAX {
                let ns = out.add_state();
                map[s] = ns;
                out.accepting[ns] = self.accepting[s];
            }
        }
        for s in 0..n {
            if map[s] == usize::MAX || !(live[s] || s == self.start) {
                continue;
            }
            for (label, t) in &self.arcs[s] {
                if *t < n && map[*t] != usize::MAX && live[*t] {
                    out.arcs[map[s]].push((label.clone(), map[*t]));
                }
            }
            for &t in &self.eps[s] {
                if map[t] != usize::MAX && live[t] {
                    out.eps[map[s]].push(map[t]);
                }
            }
        }
        out
    }

    /// An equivalent automaton without ε-transitions.
    pub fn remove_eps(&self) -> Nfa {
        let mut out = Nfa::new();
        for _ in 1..self.len() {
            out.add_state();
        }
        out.start = self.start;
        for s in 0..self.len() {
            let closure = self.eps_closure(&[s]);
            let mut accepting = false;
            for &c in &closure {
                if self.accepting[c] {
                    accepting = true;
                }
                for (label, t) in &self.arcs[c] {
                    out.arcs[s].push((label.clone(), *t));
                }
            }
            out.accepting[s] = accepting;
        }
        out
    }

    /// The reversed automaton (accepts the mirror image of each path).
    ///
    /// Uses a fresh start state ε-linked to the original accepting states;
    /// the original start becomes the only accepting state.
    pub fn reverse(&self) -> Nfa {
        let mut out = Nfa::new();
        for _ in 1..self.len() {
            out.add_state();
        }
        for s in 0..self.len() {
            for (label, t) in &self.arcs[s] {
                out.arcs[*t].push((label.clone(), s));
            }
            for &t in &self.eps[s] {
                out.eps[t].push(s);
            }
        }
        let new_start = out.add_state();
        out.start = new_start;
        for s in self.accepting_states() {
            out.add_eps(new_start, s);
        }
        out.accepting = vec![false; out.len()];
        out.accepting[self.start] = true;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    #[test]
    fn empty_language_accepts_nothing() {
        let n = Nfa::empty_language();
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[sym(0)]));
        assert!(n.language_is_empty());
    }

    #[test]
    fn epsilon_language_accepts_only_empty() {
        let n = Nfa::epsilon_language();
        assert!(n.accepts(&[]));
        assert!(!n.accepts(&[sym(0)]));
        assert!(!n.language_is_empty());
    }

    #[test]
    fn symbol_set_accepts_members() {
        let n = Nfa::symbol_set(SymSet::from_syms(vec![sym(1), sym(2)]));
        assert!(n.accepts(&[sym(1)]));
        assert!(n.accepts(&[sym(2)]));
        assert!(!n.accepts(&[sym(3)]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[sym(1), sym(1)]));
    }

    #[test]
    fn symbol_set_of_empty_set_is_empty_language() {
        let n = Nfa::symbol_set(SymSet::empty());
        assert!(n.language_is_empty());
    }

    #[test]
    fn word_automaton() {
        let w = [sym(0), sym(1), sym(0)];
        let n = Nfa::word(&w);
        assert!(n.accepts(&w));
        assert!(!n.accepts(&[sym(0), sym(1)]));
        assert!(!n.accepts(&[sym(0), sym(1), sym(0), sym(0)]));
    }

    #[test]
    fn union_concat_star() {
        let a = Nfa::word(&[sym(0)]);
        let b = Nfa::word(&[sym(1)]);
        let u = a.union(&b);
        assert!(u.accepts(&[sym(0)]));
        assert!(u.accepts(&[sym(1)]));
        assert!(!u.accepts(&[sym(0), sym(1)]));

        let c = a.concat(&b);
        assert!(c.accepts(&[sym(0), sym(1)]));
        assert!(!c.accepts(&[sym(0)]));
        assert!(!c.accepts(&[sym(1), sym(0)]));

        let s = c.star();
        assert!(s.accepts(&[]));
        assert!(s.accepts(&[sym(0), sym(1)]));
        assert!(s.accepts(&[sym(0), sym(1), sym(0), sym(1)]));
        assert!(!s.accepts(&[sym(0), sym(1), sym(0)]));
    }

    #[test]
    fn plus_and_optional() {
        let a = Nfa::word(&[sym(0)]);
        let p = a.plus();
        assert!(!p.accepts(&[]));
        assert!(p.accepts(&[sym(0)]));
        assert!(p.accepts(&[sym(0), sym(0), sym(0)]));
        let o = a.optional();
        assert!(o.accepts(&[]));
        assert!(o.accepts(&[sym(0)]));
        assert!(!o.accepts(&[sym(0), sym(0)]));
    }

    #[test]
    fn eps_closure_transitivity() {
        let mut n = Nfa::new();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_eps(n.start(), q1);
        n.add_eps(q1, q2);
        let closure = n.eps_closure(&[n.start()]);
        assert_eq!(closure, vec![0, q1, q2]);
    }

    #[test]
    fn remove_eps_preserves_language() {
        let a = Nfa::word(&[sym(0)]);
        let b = Nfa::word(&[sym(1)]);
        let n = a.union(&b).concat(&a.star());
        let m = n.remove_eps();
        for w in [
            vec![],
            vec![sym(0)],
            vec![sym(1)],
            vec![sym(0), sym(0)],
            vec![sym(1), sym(0), sym(0)],
            vec![sym(1), sym(1)],
        ] {
            assert_eq!(n.accepts(&w), m.accepts(&w), "word {w:?}");
        }
        // no eps arcs remain
        for s in 0..m.len() {
            assert!(m.eps_from(s).is_empty());
        }
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut n = Nfa::new();
        let acc = n.add_state();
        let dead = n.add_state();
        n.add_arc(n.start(), SymSet::singleton(sym(0)), acc);
        n.add_arc(n.start(), SymSet::singleton(sym(1)), dead);
        n.set_accepting(acc, true);
        let t = n.trim();
        assert_eq!(t.len(), 2);
        assert!(t.accepts(&[sym(0)]));
        assert!(!t.accepts(&[sym(1)]));
    }

    #[test]
    fn reverse_reverses_words() {
        let n = Nfa::word(&[sym(0), sym(1), sym(2)]);
        let r = n.reverse();
        assert!(r.accepts(&[sym(2), sym(1), sym(0)]));
        assert!(!r.accepts(&[sym(0), sym(1), sym(2)]));
    }

    #[test]
    fn reverse_of_union() {
        let a = Nfa::word(&[sym(0), sym(1)]);
        let b = Nfa::word(&[sym(2)]);
        let r = a.union(&b).reverse();
        assert!(r.accepts(&[sym(1), sym(0)]));
        assert!(r.accepts(&[sym(2)]));
        assert!(!r.accepts(&[sym(0), sym(1)]));
    }
}
