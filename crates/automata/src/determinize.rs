//! Subset-construction determinization for symbolic ε-NFAs.
//!
//! The classical algorithm is adapted to set-labelled arcs by computing
//! *local minterms*: at each subset state, the outgoing arc labels are
//! refined into pairwise-disjoint sets, and one DFA transition is emitted
//! per minterm. This keeps the construction independent of the (open)
//! alphabet size.

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};
use crate::symset::{minterms, SymSet};
use std::collections::HashMap;

/// Determinize `nfa` via subset construction.
///
/// The result is a partial DFA (missing transitions reject) whose language
/// equals the NFA's.
///
/// # Examples
///
/// ```
/// use rela_automata::{determinize, Nfa, Regex, Symbol};
/// let a = Symbol::from_index(0);
/// let n = Regex::sym(a).star().to_nfa();
/// let d = determinize(&n);
/// assert!(d.accepts(&[]));
/// assert!(d.accepts(&[a, a]));
/// assert!(!d.accepts(&[Symbol::from_index(1)]));
/// ```
pub fn determinize(nfa: &Nfa) -> Dfa {
    let start_set = nfa.eps_closure(&[nfa.start()]);
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut arcs: Vec<Vec<(SymSet, StateId)>> = vec![Vec::new()];
    let mut accepting = vec![start_set.iter().any(|&s| nfa.is_accepting(s))];
    index.insert(start_set.clone(), 0);
    let mut work = vec![start_set];

    while let Some(subset) = work.pop() {
        let sid = index[&subset];
        // gather outgoing labels of the whole subset
        let mut labels: Vec<SymSet> = Vec::new();
        for &s in &subset {
            for (label, _) in nfa.arcs_from(s) {
                labels.push(label.clone());
            }
        }
        if labels.is_empty() {
            continue;
        }
        for part in minterms(&labels) {
            // targets reachable by any symbol in `part`; since `part` is a
            // minterm, it is either inside or disjoint from each label
            let mut targets: Vec<StateId> = Vec::new();
            for &s in &subset {
                for (label, t) in nfa.arcs_from(s) {
                    if part.is_subset(label) {
                        targets.push(*t);
                    }
                }
            }
            if targets.is_empty() {
                continue;
            }
            // overlapping arcs (several labels covering the same minterm,
            // or several subset states reaching one target) push the same
            // state repeatedly; dedup before the closure walk so its seed
            // loop and scratch allocations scale with *distinct* targets
            targets.sort_unstable();
            targets.dedup();
            let closure = nfa.eps_closure(&targets);
            let tid = *index.entry(closure.clone()).or_insert_with(|| {
                arcs.push(Vec::new());
                accepting.push(closure.iter().any(|&s| nfa.is_accepting(s)));
                work.push(closure.clone());
                arcs.len() - 1
            });
            arcs[sid].push((part, tid));
        }
        // merge arcs that lead to the same target (cosmetic, keeps DFAs small)
        let row = &mut arcs[sid];
        row.sort_by_key(|&(_, t)| t);
        let mut merged: Vec<(SymSet, StateId)> = Vec::with_capacity(row.len());
        for (label, t) in row.drain(..) {
            match merged.last_mut() {
                Some((ml, mt)) if *mt == t => *ml = ml.union(&label),
                _ => merged.push((label, t)),
            }
        }
        *row = merged;
    }

    Dfa::from_parts(arcs, accepting, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::Symbol;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    /// Check NFA and DFA agree on a batch of words.
    fn assert_same_language(n: &Nfa, words: &[Vec<Symbol>]) {
        let d = determinize(n);
        for w in words {
            assert_eq!(n.accepts(w), d.accepts(w), "word {w:?}");
        }
    }

    #[test]
    fn simple_word() {
        let n = Nfa::word(&[sym(0), sym(1)]);
        assert_same_language(
            &n,
            &[
                vec![],
                vec![sym(0)],
                vec![sym(0), sym(1)],
                vec![sym(1), sym(0)],
                vec![sym(0), sym(1), sym(1)],
            ],
        );
    }

    #[test]
    fn union_with_shared_prefix() {
        // ab | ac — classic determinization case
        let n = Regex::union(vec![
            Regex::word(&[sym(0), sym(1)]),
            Regex::word(&[sym(0), sym(2)]),
        ])
        .to_nfa();
        assert_same_language(
            &n,
            &[
                vec![sym(0), sym(1)],
                vec![sym(0), sym(2)],
                vec![sym(0)],
                vec![sym(0), sym(0)],
                vec![sym(1)],
            ],
        );
    }

    #[test]
    fn overlapping_symbolic_labels() {
        // arcs with overlapping *sets*: {0,1} to accept, {1,2} to a loop
        let mut n = Nfa::new();
        let acc = n.add_state();
        let other = n.add_state();
        n.add_arc(n.start(), SymSet::from_syms(vec![sym(0), sym(1)]), acc);
        n.add_arc(n.start(), SymSet::from_syms(vec![sym(1), sym(2)]), other);
        n.add_arc(other, SymSet::universe(), other);
        n.set_accepting(acc, true);
        let d = determinize(&n);
        assert!(d.accepts(&[sym(0)]));
        assert!(d.accepts(&[sym(1)]));
        assert!(!d.accepts(&[sym(2)]));
        assert!(!d.accepts(&[sym(1), sym(5)]));
    }

    #[test]
    fn cofinite_labels() {
        // !{0} followed by anything
        let mut n = Nfa::new();
        let q = n.add_state();
        n.add_arc(n.start(), SymSet::all_except(vec![sym(0)]), q);
        n.add_arc(q, SymSet::universe(), q);
        n.set_accepting(q, true);
        let d = determinize(&n);
        assert!(!d.accepts(&[sym(0)]));
        assert!(d.accepts(&[sym(1)]));
        assert!(d.accepts(&[sym(2), sym(0), sym(0)]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn epsilon_chains() {
        let n = Regex::concat(vec![
            Regex::sym(sym(0)).optional(),
            Regex::sym(sym(1)).optional(),
            Regex::sym(sym(2)).optional(),
        ])
        .to_nfa();
        assert_same_language(
            &n,
            &[
                vec![],
                vec![sym(0)],
                vec![sym(1)],
                vec![sym(2)],
                vec![sym(0), sym(2)],
                vec![sym(0), sym(1), sym(2)],
                vec![sym(2), sym(1)],
                vec![sym(0), sym(0)],
            ],
        );
    }

    #[test]
    fn determinism_invariant_holds() {
        // (.*a.*) — forces subset splitting on overlapping . and {a}
        let a = sym(0);
        let n = Regex::concat(vec![Regex::any_star(), Regex::sym(a), Regex::any_star()]).to_nfa();
        let d = determinize(&n);
        for s in 0..d.len() {
            let row = d.arcs_from(s);
            for i in 0..row.len() {
                for j in i + 1..row.len() {
                    assert!(
                        !row[i].0.intersects(&row[j].0),
                        "state {s}: arcs {i} and {j} overlap"
                    );
                }
            }
        }
        assert!(d.accepts(&[a]));
        assert!(d.accepts(&[sym(5), a, sym(9)]));
        assert!(!d.accepts(&[sym(5), sym(9)]));
    }
}
