//! Language equivalence and inclusion for symbolic DFAs.
//!
//! Equivalence uses the Hopcroft–Karp union-find algorithm generalized to
//! symbolic arcs via local minterms: two states are merged, then their
//! outgoing minterms are explored pairwise; a conflict on acceptance
//! yields a distinguishing word. This avoids full minimization and is the
//! core decision step of the Rela checker (paper §6.2).

use crate::dfa::{product, Dfa, ProductMode};
use crate::nfa::StateId;
use crate::symset::{minterms, SymSet};
use crate::witness::shortest_word;

/// Outcome of an equivalence/inclusion check: either the relation holds,
/// or a witness word (as a sequence of arc-set constraints) shows it fails.
pub type CheckResult = Result<(), Vec<SymSet>>;

/// Union-find over `Option<StateId>` pairs packed into a dense index
/// space: `None` (the virtual dead state) is index 0; `Some(s)` is `s+1`.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    /// Iterative find with path halving: no recursion (the packed index
    /// space grows with the DFA product, and deep parent chains would
    /// otherwise risk the stack), same amortized complexity as full path
    /// compression.
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    /// Union; returns false if already joined.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

fn pack(s: Option<StateId>) -> usize {
    match s {
        None => 0,
        Some(s) => s + 1,
    }
}

/// Are `a` and `b` language-equivalent?
///
/// On failure returns a shortest-ish distinguishing word, expressed as a
/// sequence of symbol sets (any concretization of which is accepted by
/// exactly one of the automata).
///
/// # Examples
///
/// ```
/// use rela_automata::{determinize, equivalent, Regex, Symbol};
/// let a = Symbol::from_index(0);
/// let r1 = determinize(&Regex::sym(a).star().to_nfa());
/// let r2 = determinize(&Regex::union(vec![Regex::Eps, Regex::sym(a).plus()]).to_nfa());
/// assert!(equivalent(&r1, &r2).is_ok());
///
/// let r3 = determinize(&Regex::sym(a).plus().to_nfa());
/// let diff = equivalent(&r1, &r3).unwrap_err();
/// assert!(diff.is_empty()); // ε distinguishes a* from a+
/// ```
pub fn equivalent(a: &Dfa, b: &Dfa) -> CheckResult {
    let n_pairs = (a.len() + 1) * (b.len() + 1);
    let mut uf = UnionFind::new(a.len() + b.len() + 2);
    // indices: a-side states occupy [0, a.len()], b-side [a.len()+1, ...]
    let b_off = a.len() + 1;
    let accept_a = |s: Option<StateId>| s.map(|x| a.is_accepting(x)).unwrap_or(false);
    let accept_b = |s: Option<StateId>| s.map(|x| b.is_accepting(x)).unwrap_or(false);

    // The path to each explored pair is kept as a parent-pointer trail:
    // `trail[i] = (arc label, parent trail index)`, with `usize::MAX` as
    // the root. Pushing a pair costs O(1) instead of cloning the whole
    // prefix (O(depth²) across the happy path); the full word is only
    // reconstructed — O(depth) — when a conflict is actually found.
    const ROOT: usize = usize::MAX;
    let mut trail: Vec<(SymSet, usize)> = Vec::new();
    // stack holds (a_state, b_state, trail node of the path from the root)
    let mut stack: Vec<(Option<StateId>, Option<StateId>, usize)> = Vec::new();
    if uf.union(pack(Some(a.start())), b_off + pack(Some(b.start()))) {
        stack.push((Some(a.start()), Some(b.start()), ROOT));
    }
    let mut explored = 0usize;
    while let Some((sa, sb, node)) = stack.pop() {
        explored += 1;
        debug_assert!(explored <= n_pairs * 2 + 2, "equivalence check diverged");
        if accept_a(sa) != accept_b(sb) {
            let mut word = Vec::new();
            let mut cur = node;
            while cur != ROOT {
                let (label, parent) = &trail[cur];
                word.push(label.clone());
                cur = *parent;
            }
            word.reverse();
            return Err(word);
        }
        let mut labels: Vec<SymSet> = Vec::new();
        if let Some(s) = sa {
            labels.extend(a.arcs_from(s).iter().map(|(l, _)| l.clone()));
        }
        if let Some(s) = sb {
            labels.extend(b.arcs_from(s).iter().map(|(l, _)| l.clone()));
        }
        for part in minterms(&labels) {
            let ta = sa.and_then(|s| {
                a.arcs_from(s)
                    .iter()
                    .find(|(l, _)| part.is_subset(l))
                    .map(|&(_, t)| t)
            });
            let tb = sb.and_then(|s| {
                b.arcs_from(s)
                    .iter()
                    .find(|(l, _)| part.is_subset(l))
                    .map(|&(_, t)| t)
            });
            if ta.is_none() && tb.is_none() {
                continue;
            }
            if uf.union(pack(ta), b_off + pack(tb)) {
                trail.push((part, node));
                stack.push((ta, tb, trail.len() - 1));
            }
        }
    }
    Ok(())
}

/// Is `L(a) ⊆ L(b)`?
///
/// On failure returns a word in `L(a) \ L(b)`.
pub fn included(a: &Dfa, b: &Dfa) -> CheckResult {
    let diff = product(a, b, ProductMode::Difference);
    match shortest_word(&diff) {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Is the symmetric difference empty, and if not, which side has the
/// extra word? Useful for counterexample reporting where both directions
/// matter (paper §6.3: expected-but-missing vs. unexpected paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffWitness {
    /// The languages are equal.
    Equal,
    /// A word accepted by the left automaton only.
    LeftOnly(Vec<SymSet>),
    /// A word accepted by the right automaton only.
    RightOnly(Vec<SymSet>),
}

/// Compare two DFAs, reporting which side has a witness word if they
/// differ. Checks left-only first.
pub fn compare(a: &Dfa, b: &Dfa) -> DiffWitness {
    if let Err(w) = included(a, b) {
        return DiffWitness::LeftOnly(w);
    }
    if let Err(w) = included(b, a) {
        return DiffWitness::RightOnly(w);
    }
    DiffWitness::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;
    use crate::regex::Regex;
    use crate::Symbol;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    fn dfa_of(re: &Regex) -> Dfa {
        determinize(&re.to_nfa())
    }

    #[test]
    fn identical_regexes_equivalent() {
        let re = Regex::concat(vec![Regex::sym(sym(0)).star(), Regex::sym(sym(1))]);
        assert!(equivalent(&dfa_of(&re), &dfa_of(&re)).is_ok());
    }

    #[test]
    fn structurally_different_equal_languages() {
        let a = sym(0);
        let b = sym(1);
        let r1 = Regex::union(vec![Regex::sym(a), Regex::sym(b)]).star();
        let r2 = Regex::concat(vec![Regex::sym(a).star(), Regex::sym(b).star()]).star();
        assert!(equivalent(&dfa_of(&r1), &dfa_of(&r2)).is_ok());
    }

    #[test]
    fn unequal_languages_give_witness() {
        let a = sym(0);
        let r1 = Regex::sym(a).star();
        let r2 = Regex::sym(a).plus();
        let w = equivalent(&dfa_of(&r1), &dfa_of(&r2)).unwrap_err();
        assert!(w.is_empty(), "ε should distinguish: {w:?}");
    }

    #[test]
    fn witness_is_usable() {
        let a = sym(0);
        let b = sym(1);
        // a(a|b) vs aa — witness must end in b
        let r1 = Regex::concat(vec![
            Regex::sym(a),
            Regex::union(vec![Regex::sym(a), Regex::sym(b)]),
        ]);
        let r2 = Regex::word(&[a, a]);
        let d1 = dfa_of(&r1);
        let d2 = dfa_of(&r2);
        let w = equivalent(&d1, &d2).unwrap_err();
        assert_eq!(w.len(), 2);
        // concretize: first position must admit a; second must admit b
        assert!(w[0].contains(a));
        assert!(w[1].contains(b));
    }

    #[test]
    fn inclusion_positive() {
        let a = sym(0);
        let small = dfa_of(&Regex::word(&[a, a]));
        let big = dfa_of(&Regex::sym(a).star());
        assert!(included(&small, &big).is_ok());
        assert!(included(&big, &small).is_err());
    }

    #[test]
    fn inclusion_witness_in_difference() {
        let a = sym(0);
        let big = dfa_of(&Regex::sym(a).star());
        let small = dfa_of(&Regex::word(&[a, a]));
        let w = included(&big, &small).unwrap_err();
        // witness is in a* \ {aa}: any length != 2
        assert_ne!(w.len(), 2);
        for set in &w {
            assert!(set.contains(a));
        }
    }

    #[test]
    fn compare_directions() {
        let a = sym(0);
        let left = dfa_of(&Regex::sym(a).star());
        let right = dfa_of(&Regex::sym(a).plus());
        match compare(&left, &right) {
            DiffWitness::LeftOnly(w) => assert!(w.is_empty()),
            other => panic!("expected LeftOnly, got {other:?}"),
        }
        match compare(&right, &left) {
            DiffWitness::RightOnly(w) => assert!(w.is_empty()),
            other => panic!("expected RightOnly, got {other:?}"),
        }
        assert_eq!(compare(&left, &left), DiffWitness::Equal);
    }

    #[test]
    fn empty_vs_nonempty() {
        let d_empty = Dfa::empty_language();
        let a = sym(0);
        let d = dfa_of(&Regex::sym(a));
        assert!(equivalent(&d_empty, &d_empty).is_ok());
        assert!(equivalent(&d_empty, &d).is_err());
    }

    #[test]
    fn cofinite_equivalence() {
        // . and ({a} | !{a}) are the same single-symbol language
        let a = sym(0);
        let r1 = Regex::any();
        let r2 = Regex::union(vec![
            Regex::Set(SymSet::singleton(a)),
            Regex::Set(SymSet::all_except(vec![a])),
        ]);
        assert!(equivalent(&dfa_of(&r1), &dfa_of(&r2)).is_ok());
    }
}
