//! Interned alphabet symbols.
//!
//! Every network location (interface, device, or router group), plus the
//! special `drop` location and the `#` markers introduced by the `any`
//! modifier (paper §5.3), is interned into a compact [`Symbol`] so that
//! automata transitions can be compared and hashed cheaply.
//!
//! The alphabet is *open*: symbol sets may be co-finite ("every symbol
//! except these"), so the algebra never needs to know the full universe.
//! See [`crate::symset::SymSet`].

use std::collections::HashMap;
use std::fmt;

/// A compact, interned alphabet symbol.
///
/// Symbols are created by a [`SymbolTable`] and are only meaningful
/// relative to the table that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Raw index of this symbol in its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a symbol from a raw index.
    ///
    /// Only use indices obtained from [`Symbol::index`] against the same
    /// table, or indices less than the table's [`SymbolTable::len`].
    #[inline]
    pub fn from_index(ix: usize) -> Symbol {
        Symbol(ix as u32)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Bidirectional map between symbol names and [`Symbol`] values.
///
/// # Examples
///
/// ```
/// use rela_automata::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let a = table.intern("A1");
/// let b = table.intern("B1");
/// assert_ne!(a, b);
/// assert_eq!(table.intern("A1"), a);
/// assert_eq!(table.name(a), "A1");
/// assert_eq!(table.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// The name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all symbols in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol)
    }

    /// Find any symbol in this table that is *not* in `excluded`
    /// (which must be sorted). Used to concretize a co-finite transition
    /// when printing counterexample paths.
    pub fn any_except(&self, excluded: &[Symbol]) -> Option<Symbol> {
        self.iter().find(|s| excluded.binary_search(s).is_err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("x");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        assert_eq!(t.lookup("alpha"), Some(a));
        assert_eq!(t.lookup("beta"), None);
        assert_eq!(t.name(a), "alpha");
    }

    #[test]
    fn iter_order_matches_interning_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![a, b, c]);
    }

    #[test]
    fn any_except_skips_excluded() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.any_except(&[a]), Some(b));
        assert_eq!(t.any_except(&[a, b]), None);
        assert_eq!(t.any_except(&[]), Some(a));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Symbol(7).to_string(), "s7");
    }
}
