//! # rela-automata
//!
//! Symbolic finite-state automata and transducers: the decision-procedure
//! substrate for relational network verification (SIGCOMM 2024, "Relational
//! Network Verification").
//!
//! The paper's tool compiles relational change specifications to *regular
//! relations* and decides them with automaton algorithms (its
//! implementation uses OpenFST/HFST). This crate provides the same
//! machinery from scratch:
//!
//! - [`Regex`] → [`Nfa`] (Thompson construction) for path sets,
//! - [`determinize`] / [`minimize`] / boolean [`product`]s / [`Dfa`]
//!   complement for set algebra,
//! - [`equivalent`] / [`included`] (Hopcroft–Karp style) for the final
//!   compliance check,
//! - [`Fst`] transducers with [`compose`] and [`image`] (`P ⊲ R`) for
//!   regular relations,
//! - [`shortest_word`] / [`enumerate_words`] for counterexample paths.
//!
//! Transition labels are *sets* of interned [`Symbol`]s ([`SymSet`]), so
//! the alphabet (all network locations) never needs to be enumerated; see
//! the `symset` module for the finite/co-finite Boolean algebra.
//!
//! ## Example: deciding a "preserve" spec
//!
//! ```
//! use rela_automata::*;
//!
//! let mut table = SymbolTable::new();
//! let a1 = table.intern("A1");
//! let b1 = table.intern("B1");
//!
//! // Pre-change network carries one path A1 B1; post-change the same.
//! let pre = Nfa::word(&[a1, b1]);
//! let post = Nfa::word(&[a1, b1]);
//!
//! // Spec: ".* : preserve" compiles to I(.*) on both sides.
//! let zone = Regex::any_star().to_nfa();
//! let relation = Fst::identity(&zone);
//!
//! let lhs = determinize(&image(&pre, &relation));
//! let rhs = determinize(&image(&post, &relation));
//! assert!(equivalent(&lhs, &rhs).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compose;
mod determinize;
mod dfa;
mod dot;
mod equiv;
mod fst;
mod minimize;
mod nfa;
mod regex;
mod symbol;
mod symset;
mod witness;

pub use compose::{compose, image, preimage};
pub use determinize::determinize;
pub use dfa::{product, Dfa, ProductMode};
pub use dot::{dfa_to_dot, fst_to_dot, nfa_to_dot};
pub use equiv::{compare, equivalent, included, CheckResult, DiffWitness};
pub use fst::{Fst, FstLabel};
pub use minimize::minimize;
pub use nfa::{Nfa, StateId};
pub use regex::Regex;
pub use symbol::{Symbol, SymbolTable};
pub use symset::{minterms, SymSet};
pub use witness::{concretize, enumerate_words, shortest_word, shortest_word_nfa};
