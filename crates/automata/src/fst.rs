//! Finite-state transducers over symbolic labels: the machine form of the
//! RIR's regular relations (paper §5.2, §6.1).
//!
//! Arc labels describe one step of the relation:
//!
//! | label        | reads       | writes      | relation on one symbol    |
//! |--------------|-------------|-------------|---------------------------|
//! | `Eps`        | ε           | ε           | {(ε, ε)}                  |
//! | `In(S)`      | `x ∈ S`     | ε           | {(x, ε) : x ∈ S}          |
//! | `Out(S)`     | ε           | `y ∈ S`     | {(ε, y) : y ∈ S}          |
//! | `Pair(S, T)` | `x ∈ S`     | `y ∈ T`     | {(x, y) : x ∈ S, y ∈ T}   |
//! | `Id(S)`      | `x ∈ S`     | same `x`    | {(x, x) : x ∈ S}          |
//!
//! `Id` is first-class (rather than encoded as `Pair(S,S)`) because the
//! identity relation `I(P)` — the encoding of "preserve" — must relate
//! each path to *itself*, not to every same-length path in `P`.

use crate::nfa::{Nfa, StateId};
use crate::symset::SymSet;
use crate::Symbol;

/// A transducer arc label. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FstLabel {
    /// Read nothing, write nothing.
    Eps,
    /// Read a symbol in the set, write nothing.
    In(SymSet),
    /// Read nothing, write a symbol in the set.
    Out(SymSet),
    /// Read a symbol in the first set, write any symbol in the second.
    Pair(SymSet, SymSet),
    /// Read a symbol in the set and write that same symbol.
    Id(SymSet),
}

impl FstLabel {
    /// The set of symbols this label can read (`None` = reads ε).
    pub fn input(&self) -> Option<&SymSet> {
        match self {
            FstLabel::Eps | FstLabel::Out(_) => None,
            FstLabel::In(s) | FstLabel::Id(s) => Some(s),
            FstLabel::Pair(s, _) => Some(s),
        }
    }

    /// The set of symbols this label can write (`None` = writes ε).
    pub fn output(&self) -> Option<&SymSet> {
        match self {
            FstLabel::Eps | FstLabel::In(_) => None,
            FstLabel::Out(s) | FstLabel::Id(s) => Some(s),
            FstLabel::Pair(_, s) => Some(s),
        }
    }

    /// True if the label denotes no symbol pair at all (empty set inside).
    pub fn is_void(&self) -> bool {
        match self {
            FstLabel::Eps => false,
            FstLabel::In(s) | FstLabel::Out(s) | FstLabel::Id(s) => s.is_empty(),
            FstLabel::Pair(a, b) => a.is_empty() || b.is_empty(),
        }
    }
}

/// A symbolic finite-state transducer.
///
/// # Examples
///
/// ```
/// use rela_automata::{Fst, FstLabel, SymSet, Symbol};
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// // the relation a × b (paper §6.1 example): read a, write b
/// let mut fst = Fst::new();
/// let q1 = fst.add_state();
/// fst.add_arc(fst.start(), FstLabel::Pair(SymSet::singleton(a), SymSet::singleton(b)), q1);
/// fst.set_accepting(q1, true);
/// assert!(fst.relates(&[a], &[b]));
/// assert!(!fst.relates(&[a], &[a]));
/// assert!(!fst.relates(&[b], &[b]));
/// ```
// `len()` counts states; an `is_empty()` here would read as *language*
// emptiness, which is a separate concept (`language_is_empty`) — so the
// conventional pairing is suppressed deliberately.
#[allow(clippy::len_without_is_empty)]
#[derive(Debug, Clone)]
pub struct Fst {
    arcs: Vec<Vec<(FstLabel, StateId)>>,
    accepting: Vec<bool>,
    start: StateId,
}

impl Default for Fst {
    fn default() -> Self {
        Self::new()
    }
}

impl Fst {
    /// A fresh transducer denoting the empty relation.
    pub fn new() -> Fst {
        Fst {
            arcs: vec![Vec::new()],
            accepting: vec![false],
            start: 0,
        }
    }

    /// The empty relation (RIR relation `0`).
    pub fn empty_relation() -> Fst {
        Fst::new()
    }

    /// The relation `{(ε, ε)}` (RIR relation `1`).
    pub fn eps_relation() -> Fst {
        let mut f = Fst::new();
        f.accepting[0] = true;
        f
    }

    /// The identity relation on the language of `nfa`: `I(P)`.
    pub fn identity(nfa: &Nfa) -> Fst {
        let mut f = Fst::new();
        for _ in 1..nfa.len() {
            f.add_state();
        }
        f.start = nfa.start();
        for s in 0..nfa.len() {
            for (label, t) in nfa.arcs_from(s) {
                f.arcs[s].push((FstLabel::Id(label.clone()), *t));
            }
            for &t in nfa.eps_from(s) {
                f.arcs[s].push((FstLabel::Eps, t));
            }
            f.accepting[s] = nfa.is_accepting(s);
        }
        f
    }

    /// The cross-product relation `P₁ × P₂`: every path of `left` is
    /// related to every path of `right` (paper §6.1: read `P₁` on the
    /// first tape, then write `P₂` on the second).
    pub fn cross(left: &Nfa, right: &Nfa) -> Fst {
        let mut f = Fst::new();
        // input half: left's arcs consume, writing nothing
        let li = f.absorb_as(left, FstLabel::In);
        // output half: right's arcs produce, reading nothing
        let ri = f.absorb_as(right, FstLabel::Out);
        f.add_arc(f.start, FstLabel::Eps, li.0);
        // connect left's accepting states to right's start
        for s in li.1 {
            f.add_arc(s, FstLabel::Eps, ri.0);
        }
        for s in ri.1 {
            f.accepting[s] = true;
        }
        f
    }

    /// Absorb an NFA, converting each symbolic arc through `mk`. Returns
    /// (mapped start, mapped accepting states); accepting flags are *not*
    /// set on the result.
    fn absorb_as(&mut self, nfa: &Nfa, mk: impl Fn(SymSet) -> FstLabel) -> (StateId, Vec<StateId>) {
        let offset = self.arcs.len();
        for _ in 0..nfa.len() {
            self.add_state();
        }
        for s in 0..nfa.len() {
            for (label, t) in nfa.arcs_from(s) {
                self.arcs[offset + s].push((mk(label.clone()), offset + t));
            }
            for &t in nfa.eps_from(s) {
                self.arcs[offset + s].push((FstLabel::Eps, offset + t));
            }
        }
        let accs = nfa.accepting_states().map(|s| offset + s).collect();
        (offset + nfa.start(), accs)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True if there are no states (cannot happen via public API).
    pub fn is_empty_states(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Add a fresh non-accepting state.
    pub fn add_state(&mut self) -> StateId {
        self.arcs.push(Vec::new());
        self.accepting.push(false);
        self.arcs.len() - 1
    }

    /// Add an arc; void labels (containing an empty set) are dropped.
    pub fn add_arc(&mut self, from: StateId, label: FstLabel, to: StateId) {
        if !label.is_void() {
            self.arcs[from].push((label, to));
        }
    }

    /// Mark or unmark an accepting state.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Whether `state` accepts.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Outgoing arcs of `state`.
    pub fn arcs_from(&self, state: StateId) -> &[(FstLabel, StateId)] {
        &self.arcs[state]
    }

    /// Iterate accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
    }

    /// Copy `other`'s states into `self`; returns the id offset.
    pub(crate) fn absorb(&mut self, other: &Fst) -> usize {
        let offset = self.arcs.len();
        for s in 0..other.len() {
            let ns = self.add_state();
            self.accepting[ns] = other.accepting[s];
            debug_assert_eq!(ns, offset + s);
        }
        for s in 0..other.len() {
            for (label, t) in &other.arcs[s] {
                self.arcs[offset + s].push((label.clone(), offset + t));
            }
        }
        offset
    }

    /// Relation union (Thompson-style).
    pub fn union(&self, other: &Fst) -> Fst {
        let mut out = Fst::new();
        let a = out.absorb(self);
        let b = out.absorb(other);
        out.add_arc(out.start, FstLabel::Eps, a + self.start);
        out.add_arc(out.start, FstLabel::Eps, b + other.start);
        out
    }

    /// Relation concatenation: `{(p₁p₂, q₁q₂) : (p₁,q₁) ∈ R₁, (p₂,q₂) ∈ R₂}`.
    pub fn concat(&self, other: &Fst) -> Fst {
        let mut out = Fst::new();
        let a = out.absorb(self);
        let b = out.absorb(other);
        out.add_arc(out.start, FstLabel::Eps, a + self.start);
        for s in 0..self.len() {
            if self.accepting[s] {
                out.accepting[a + s] = false;
                out.add_arc(a + s, FstLabel::Eps, b + other.start);
            }
        }
        out
    }

    /// Relation Kleene star.
    pub fn star(&self) -> Fst {
        let mut out = Fst::new();
        let a = out.absorb(self);
        out.add_arc(out.start, FstLabel::Eps, a + self.start);
        out.accepting[out.start] = true;
        for s in 0..self.len() {
            if self.accepting[s] {
                out.add_arc(a + s, FstLabel::Eps, out.start);
            }
        }
        out
    }

    /// The inverse relation (swap the tapes).
    pub fn invert(&self) -> Fst {
        let mut out = self.clone();
        for row in out.arcs.iter_mut() {
            for (label, _) in row.iter_mut() {
                *label = match label.clone() {
                    FstLabel::Eps => FstLabel::Eps,
                    FstLabel::In(s) => FstLabel::Out(s),
                    FstLabel::Out(s) => FstLabel::In(s),
                    FstLabel::Pair(a, b) => FstLabel::Pair(b, a),
                    FstLabel::Id(s) => FstLabel::Id(s),
                };
            }
        }
        out
    }

    /// Project to the input tape: the domain of the relation, as an NFA.
    pub fn domain(&self) -> Nfa {
        self.project(|label| match label {
            FstLabel::Eps | FstLabel::Out(_) => None,
            FstLabel::In(s) | FstLabel::Id(s) => Some(s.clone()),
            FstLabel::Pair(s, _) => Some(s.clone()),
        })
    }

    /// Project to the output tape: the range of the relation, as an NFA.
    pub fn range(&self) -> Nfa {
        self.project(|label| match label {
            FstLabel::Eps | FstLabel::In(_) => None,
            FstLabel::Out(s) | FstLabel::Id(s) => Some(s.clone()),
            FstLabel::Pair(_, s) => Some(s.clone()),
        })
    }

    fn project(&self, side: impl Fn(&FstLabel) -> Option<SymSet>) -> Nfa {
        let mut nfa = Nfa::new();
        for _ in 1..self.len() {
            nfa.add_state();
        }
        nfa.set_start(self.start);
        for s in 0..self.len() {
            for (label, t) in &self.arcs[s] {
                match side(label) {
                    Some(set) => nfa.add_arc(s, set, *t),
                    None => nfa.add_eps(s, *t),
                }
            }
            if self.accepting[s] {
                nfa.set_accepting(s, true);
            }
        }
        nfa
    }

    /// Direct simulation: does the relation contain the pair `(x, y)`?
    ///
    /// Explores configurations `(state, i, j)` where `i`/`j` are positions
    /// in `x`/`y`. Intended for tests; the decision procedure uses
    /// composition + projection instead.
    pub fn relates(&self, x: &[Symbol], y: &[Symbol]) -> bool {
        use std::collections::HashSet;
        let mut seen: HashSet<(StateId, usize, usize)> = HashSet::new();
        let mut stack = vec![(self.start, 0usize, 0usize)];
        while let Some((s, i, j)) = stack.pop() {
            if !seen.insert((s, i, j)) {
                continue;
            }
            if i == x.len() && j == y.len() && self.accepting[s] {
                return true;
            }
            for (label, t) in &self.arcs[s] {
                match label {
                    FstLabel::Eps => stack.push((*t, i, j)),
                    FstLabel::In(set) => {
                        if i < x.len() && set.contains(x[i]) {
                            stack.push((*t, i + 1, j));
                        }
                    }
                    FstLabel::Out(set) => {
                        if j < y.len() && set.contains(y[j]) {
                            stack.push((*t, i, j + 1));
                        }
                    }
                    FstLabel::Pair(si, so) => {
                        if i < x.len() && j < y.len() && si.contains(x[i]) && so.contains(y[j]) {
                            stack.push((*t, i + 1, j + 1));
                        }
                    }
                    FstLabel::Id(set) => {
                        if i < x.len() && j < y.len() && x[i] == y[j] && set.contains(x[i]) {
                            stack.push((*t, i + 1, j + 1));
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    #[test]
    fn empty_relation_relates_nothing() {
        let f = Fst::empty_relation();
        assert!(!f.relates(&[], &[]));
        assert!(!f.relates(&[sym(0)], &[sym(0)]));
    }

    #[test]
    fn eps_relation_relates_empty_pair_only() {
        let f = Fst::eps_relation();
        assert!(f.relates(&[], &[]));
        assert!(!f.relates(&[sym(0)], &[]));
        assert!(!f.relates(&[], &[sym(0)]));
    }

    #[test]
    fn identity_relates_path_to_itself() {
        let a = sym(0);
        let b = sym(1);
        let p = Regex::union(vec![Regex::word(&[a, b]), Regex::sym(b)]).to_nfa();
        let f = Fst::identity(&p);
        assert!(f.relates(&[a, b], &[a, b]));
        assert!(f.relates(&[b], &[b]));
        assert!(!f.relates(&[a, b], &[b]));
        assert!(!f.relates(&[a], &[a])); // a ∉ P
    }

    #[test]
    fn identity_over_sets_requires_same_symbol() {
        let a = sym(0);
        let b = sym(1);
        // I({a,b}): one-symbol paths
        let p = Nfa::symbol_set(SymSet::from_syms(vec![a, b]));
        let f = Fst::identity(&p);
        assert!(f.relates(&[a], &[a]));
        assert!(f.relates(&[b], &[b]));
        assert!(!f.relates(&[a], &[b]), "Id must not cross symbols");
    }

    #[test]
    fn cross_relates_all_pairs() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let left = Regex::union(vec![Regex::sym(a), Regex::word(&[a, a])]).to_nfa();
        let right = Regex::union(vec![Regex::sym(b), Regex::sym(c)]).to_nfa();
        let f = Fst::cross(&left, &right);
        assert!(f.relates(&[a], &[b]));
        assert!(f.relates(&[a], &[c]));
        assert!(f.relates(&[a, a], &[b]));
        assert!(f.relates(&[a, a], &[c]));
        assert!(!f.relates(&[a], &[a]));
        assert!(!f.relates(&[b], &[b]));
    }

    #[test]
    fn cross_with_empty_side_is_empty() {
        let a = sym(0);
        let left = Regex::sym(a).to_nfa();
        let empty = Nfa::empty_language();
        let f = Fst::cross(&left, &empty);
        assert!(!f.relates(&[a], &[]));
        let g = Fst::cross(&empty, &left);
        assert!(!g.relates(&[], &[a]));
    }

    #[test]
    fn union_of_relations() {
        let a = sym(0);
        let b = sym(1);
        let f1 = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let f2 = Fst::identity(&Regex::sym(a).to_nfa());
        let u = f1.union(&f2);
        assert!(u.relates(&[a], &[b]));
        assert!(u.relates(&[a], &[a]));
        assert!(!u.relates(&[b], &[a]));
    }

    #[test]
    fn concat_of_relations() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        // (a→b) then identity on c: relates ac → bc
        let f1 = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let f2 = Fst::identity(&Regex::sym(c).to_nfa());
        let cat = f1.concat(&f2);
        assert!(cat.relates(&[a, c], &[b, c]));
        assert!(!cat.relates(&[a], &[b]));
        assert!(!cat.relates(&[a, c], &[b, b]));
    }

    #[test]
    fn star_of_relation() {
        let a = sym(0);
        let b = sym(1);
        let f = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa()).star();
        assert!(f.relates(&[], &[]));
        assert!(f.relates(&[a], &[b]));
        assert!(f.relates(&[a, a, a], &[b, b, b]));
        assert!(!f.relates(&[a, a], &[b]));
    }

    #[test]
    fn invert_swaps_tapes() {
        let a = sym(0);
        let b = sym(1);
        let f = Fst::cross(&Regex::sym(a).to_nfa(), &Regex::sym(b).to_nfa());
        let g = f.invert();
        assert!(g.relates(&[b], &[a]));
        assert!(!g.relates(&[a], &[b]));
    }

    #[test]
    fn domain_and_range_projections() {
        let a = sym(0);
        let b = sym(1);
        let f = Fst::cross(&Regex::sym(a).plus().to_nfa(), &Regex::sym(b).to_nfa());
        let dom = f.domain();
        assert!(dom.accepts(&[a]));
        assert!(dom.accepts(&[a, a]));
        assert!(!dom.accepts(&[b]));
        let rng = f.range();
        assert!(rng.accepts(&[b]));
        assert!(!rng.accepts(&[a]));
        assert!(!rng.accepts(&[b, b]));
    }

    #[test]
    fn identity_projections_equal_base_language() {
        let a = sym(0);
        let b = sym(1);
        let base = Regex::concat(vec![Regex::sym(a), Regex::sym(b).star()]).to_nfa();
        let f = Fst::identity(&base);
        for w in [vec![a], vec![a, b], vec![a, b, b], vec![b], vec![]] {
            assert_eq!(base.accepts(&w), f.domain().accepts(&w));
            assert_eq!(base.accepts(&w), f.range().accepts(&w));
        }
    }
}
