//! Graphviz (DOT) rendering of automata and transducers, for debugging
//! and documentation.

use crate::dfa::Dfa;
use crate::fst::{Fst, FstLabel};
use crate::nfa::Nfa;
use crate::symset::SymSet;
use crate::SymbolTable;
use std::fmt::Write;

fn fmt_set(set: &SymSet, table: Option<&SymbolTable>) -> String {
    let name = |s: crate::Symbol| -> String {
        match table {
            Some(t) if s.index() < t.len() => t.name(s).to_owned(),
            _ => s.to_string(),
        }
    };
    match set {
        SymSet::Finite(v) if v.len() == 1 => name(v[0]),
        SymSet::Finite(v) => {
            let items: Vec<_> = v.iter().map(|&s| name(s)).collect();
            format!("{{{}}}", items.join(","))
        }
        SymSet::CoFinite(v) if v.is_empty() => ".".to_owned(),
        SymSet::CoFinite(v) => {
            let items: Vec<_> = v.iter().map(|&s| name(s)).collect();
            format!("!{{{}}}", items.join(","))
        }
    }
}

/// Render an NFA as a DOT digraph. Pass a table to use symbol names.
pub fn nfa_to_dot(nfa: &Nfa, table: Option<&SymbolTable>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph nfa {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=point];");
    let _ = writeln!(out, "  __start -> q{};", nfa.start());
    for s in 0..nfa.len() {
        let shape = if nfa.is_accepting(s) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{s} [shape={shape}];");
        for (label, t) in nfa.arcs_from(s) {
            let _ = writeln!(out, "  q{s} -> q{t} [label=\"{}\"];", fmt_set(label, table));
        }
        for &t in nfa.eps_from(s) {
            let _ = writeln!(out, "  q{s} -> q{t} [label=\"ε\", style=dashed];");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a DFA as a DOT digraph.
pub fn dfa_to_dot(dfa: &Dfa, table: Option<&SymbolTable>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph dfa {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=point];");
    let _ = writeln!(out, "  __start -> q{};", dfa.start());
    for s in 0..dfa.len() {
        let shape = if dfa.is_accepting(s) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{s} [shape={shape}];");
        for (label, t) in dfa.arcs_from(s) {
            let _ = writeln!(out, "  q{s} -> q{t} [label=\"{}\"];", fmt_set(label, table));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render an FST as a DOT digraph with `input:output` arc labels.
pub fn fst_to_dot(fst: &Fst, table: Option<&SymbolTable>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph fst {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=point];");
    let _ = writeln!(out, "  __start -> q{};", fst.start());
    for s in 0..fst.len() {
        let shape = if fst.is_accepting(s) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{s} [shape={shape}];");
        for (label, t) in fst.arcs_from(s) {
            let text = match label {
                FstLabel::Eps => "ε:ε".to_owned(),
                FstLabel::In(set) => format!("{}:ε", fmt_set(set, table)),
                FstLabel::Out(set) => format!("ε:{}", fmt_set(set, table)),
                FstLabel::Pair(a, b) => {
                    format!("{}:{}", fmt_set(a, table), fmt_set(b, table))
                }
                FstLabel::Id(set) => format!("id({})", fmt_set(set, table)),
            };
            let _ = writeln!(out, "  q{s} -> q{t} [label=\"{text}\"];");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::Symbol;

    #[test]
    fn nfa_dot_contains_states_and_arcs() {
        let a = Symbol::from_index(0);
        let dot = nfa_to_dot(&Regex::sym(a).star().to_nfa(), None);
        assert!(dot.contains("digraph nfa"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("s0"));
    }

    #[test]
    fn dfa_dot_renders() {
        let a = Symbol::from_index(0);
        let d = crate::determinize(&Regex::sym(a).to_nfa());
        let dot = dfa_to_dot(&d, None);
        assert!(dot.contains("digraph dfa"));
    }

    #[test]
    fn fst_dot_uses_symbol_names() {
        let mut table = SymbolTable::new();
        let a = table.intern("A1");
        let b = table.intern("B1");
        let f = Fst::cross(
            &Nfa::symbol_set(SymSet::singleton(a)),
            &Nfa::symbol_set(SymSet::singleton(b)),
        );
        let dot = fst_to_dot(&f, Some(&table));
        assert!(dot.contains("A1"));
        assert!(dot.contains("B1"));
    }
}
