//! Deterministic finite automata with symbolic arcs, plus the boolean
//! product constructions (intersection, union, difference).
//!
//! A [`Dfa`] keeps the outgoing arcs of each state *pairwise disjoint*, so
//! at most one arc applies to any symbol. DFAs may be *partial*: a missing
//! transition means "reject". [`Dfa::complete`] materializes the implicit
//! dead state when a total transition function is needed (complementation).

use crate::nfa::{Nfa, StateId};
use crate::symset::{minterms, SymSet};
use crate::Symbol;

/// A symbolic, possibly partial, deterministic finite automaton.
// `len()` counts states; an `is_empty()` here would read as *language*
// emptiness, which is a separate concept (`language_is_empty`) — so the
// conventional pairing is suppressed deliberately.
#[allow(clippy::len_without_is_empty)]
#[derive(Debug, Clone)]
pub struct Dfa {
    arcs: Vec<Vec<(SymSet, StateId)>>,
    accepting: Vec<bool>,
    start: StateId,
}

impl Dfa {
    /// Construct from raw parts. Callers must guarantee determinism
    /// (disjoint arc labels per state); this is checked in debug builds.
    pub fn from_parts(
        arcs: Vec<Vec<(SymSet, StateId)>>,
        accepting: Vec<bool>,
        start: StateId,
    ) -> Dfa {
        debug_assert_eq!(arcs.len(), accepting.len());
        let dfa = Dfa {
            arcs,
            accepting,
            start,
        };
        debug_assert!(dfa.check_deterministic(), "overlapping arc labels");
        dfa
    }

    fn check_deterministic(&self) -> bool {
        for state_arcs in &self.arcs {
            for i in 0..state_arcs.len() {
                for j in i + 1..state_arcs.len() {
                    if state_arcs[i].0.intersects(&state_arcs[j].0) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The automaton rejecting everything.
    pub fn empty_language() -> Dfa {
        Dfa {
            arcs: vec![Vec::new()],
            accepting: vec![false],
            start: 0,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True if there are no states (cannot happen via public API).
    pub fn is_empty_states(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `state` accepts.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Outgoing arcs of `state` (pairwise disjoint labels).
    pub fn arcs_from(&self, state: StateId) -> &[(SymSet, StateId)] {
        &self.arcs[state]
    }

    /// The successor of `state` on `sym`, if any.
    pub fn step(&self, state: StateId, sym: Symbol) -> Option<StateId> {
        self.arcs[state]
            .iter()
            .find(|(label, _)| label.contains(sym))
            .map(|&(_, t)| t)
    }

    /// Does the automaton accept `word`?
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut state = self.start;
        for &sym in word {
            match self.step(state, sym) {
                Some(t) => state = t,
                None => return false,
            }
        }
        self.accepting[state]
    }

    /// True iff the language is empty.
    pub fn language_is_empty(&self) -> bool {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s] {
                return false;
            }
            for (_, t) in &self.arcs[s] {
                if !seen[*t] {
                    seen[*t] = true;
                    stack.push(*t);
                }
            }
        }
        true
    }

    /// Make the transition function total by adding an explicit dead state
    /// (if any state is missing coverage). Returns the completed automaton.
    pub fn complete(&self) -> Dfa {
        let mut out = self.clone();
        let mut sink: Option<StateId> = None;
        for s in 0..out.arcs.len() {
            let covered = out.arcs[s]
                .iter()
                .fold(SymSet::empty(), |acc, (l, _)| acc.union(l));
            let rest = covered.complement();
            if !rest.is_empty() {
                let sink_id = *sink.get_or_insert_with(|| {
                    out.arcs.push(Vec::new());
                    out.accepting.push(false);
                    out.arcs.len() - 1
                });
                out.arcs[s].push((rest, sink_id));
            }
        }
        if let Some(sink_id) = sink {
            out.arcs[sink_id] = vec![(SymSet::universe(), sink_id)];
        }
        out
    }

    /// Language complement (relative to the open alphabet Σ*).
    pub fn complement(&self) -> Dfa {
        let mut out = self.complete();
        for a in out.accepting.iter_mut() {
            *a = !*a;
        }
        out
    }

    /// View as an NFA (for further Thompson-style composition).
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new();
        for _ in 1..self.len() {
            nfa.add_state();
        }
        nfa.set_start(self.start);
        for s in 0..self.len() {
            for (label, t) in &self.arcs[s] {
                nfa.add_arc(s, label.clone(), *t);
            }
            if self.accepting[s] {
                nfa.set_accepting(s, true);
            }
        }
        nfa
    }

    /// Remove states unreachable from the start. Language preserved.
    pub fn trim_unreachable(&self) -> Dfa {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            for (_, t) in &self.arcs[s] {
                if !seen[*t] {
                    seen[*t] = true;
                    stack.push(*t);
                }
            }
        }
        let mut map = vec![usize::MAX; n];
        let mut next = 0usize;
        for s in 0..n {
            if seen[s] {
                map[s] = next;
                next += 1;
            }
        }
        let mut arcs = vec![Vec::new(); next];
        let mut accepting = vec![false; next];
        for s in 0..n {
            if !seen[s] {
                continue;
            }
            accepting[map[s]] = self.accepting[s];
            for (label, t) in &self.arcs[s] {
                arcs[map[s]].push((label.clone(), map[*t]));
            }
        }
        Dfa {
            arcs,
            accepting,
            start: map[self.start],
        }
    }

    /// Drop arcs that lead to states from which no accepting state is
    /// reachable (useful after complementation/product to keep automata
    /// small). Language preserved; the result may be partial.
    pub fn trim_dead(&self) -> Dfa {
        let n = self.len();
        let mut radj: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for s in 0..n {
            for (_, t) in &self.arcs[s] {
                radj[*t].push(s);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<StateId> = (0..n).filter(|&s| self.accepting[s]).collect();
        for &s in &stack {
            live[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &radj[s] {
                if !live[t] {
                    live[t] = true;
                    stack.push(t);
                }
            }
        }
        let mut out = self.clone();
        for s in 0..n {
            out.arcs[s].retain(|(_, t)| live[*t]);
        }
        out.trim_unreachable()
    }
}

/// Which boolean combination a [`product`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductMode {
    /// `L(a) ∩ L(b)`
    Intersection,
    /// `L(a) ∪ L(b)`
    Union,
    /// `L(a) \ L(b)`
    Difference,
    /// `(L(a) \ L(b)) ∪ (L(b) \ L(a))`
    SymmetricDifference,
}

impl ProductMode {
    fn combine(self, a: bool, b: bool) -> bool {
        match self {
            ProductMode::Intersection => a && b,
            ProductMode::Union => a || b,
            ProductMode::Difference => a && !b,
            ProductMode::SymmetricDifference => a != b,
        }
    }
}

/// Synchronous product of two DFAs under the given boolean mode.
///
/// Partial automata are handled by pairing missing transitions with a
/// virtual dead state, so union/difference are computed correctly without
/// pre-completing the inputs.
///
/// # Examples
///
/// ```
/// use rela_automata::{product, Dfa, Nfa, ProductMode, Symbol, determinize};
/// let a = Symbol::from_index(0);
/// let b = Symbol::from_index(1);
/// let ab = determinize(&Nfa::word(&[a, b]));
/// let any = determinize(&rela_automata::Regex::any_star().to_nfa());
/// let diff = product(&any, &ab, ProductMode::Difference);
/// assert!(diff.accepts(&[a]));
/// assert!(!diff.accepts(&[a, b]));
/// ```
pub fn product(a: &Dfa, b: &Dfa, mode: ProductMode) -> Dfa {
    use std::collections::HashMap;
    // `None` encodes the virtual (non-accepting, absorbing) dead state.
    type P = (Option<StateId>, Option<StateId>);
    let accept = |p: &P, a_dfa: &Dfa, b_dfa: &Dfa| -> bool {
        let fa = p.0.map(|s| a_dfa.is_accepting(s)).unwrap_or(false);
        let fb = p.1.map(|s| b_dfa.is_accepting(s)).unwrap_or(false);
        mode.combine(fa, fb)
    };

    let mut index: HashMap<P, StateId> = HashMap::new();
    let start_p: P = (Some(a.start()), Some(b.start()));
    let mut arcs: Vec<Vec<(SymSet, StateId)>> = vec![Vec::new()];
    let mut accepting = vec![accept(&start_p, a, b)];
    index.insert(start_p, 0);
    let mut work = vec![start_p];

    while let Some(p) = work.pop() {
        let pid = index[&p];
        // collect arc labels present on either side to build local minterms
        let mut labels: Vec<SymSet> = Vec::new();
        if let Some(sa) = p.0 {
            labels.extend(a.arcs_from(sa).iter().map(|(l, _)| l.clone()));
        }
        if let Some(sb) = p.1 {
            labels.extend(b.arcs_from(sb).iter().map(|(l, _)| l.clone()));
        }
        for part in minterms(&labels) {
            let na = p.0.and_then(|sa| {
                a.arcs_from(sa)
                    .iter()
                    .find(|(l, _)| part.is_subset(l))
                    .map(|&(_, t)| t)
            });
            let nb = p.1.and_then(|sb| {
                b.arcs_from(sb)
                    .iter()
                    .find(|(l, _)| part.is_subset(l))
                    .map(|&(_, t)| t)
            });
            if na.is_none() && nb.is_none() {
                // virtual dead pair: skip, result stays partial
                continue;
            }
            let q: P = (na, nb);
            let qid = *index.entry(q).or_insert_with(|| {
                arcs.push(Vec::new());
                accepting.push(accept(&q, a, b));
                work.push(q);
                arcs.len() - 1
            });
            arcs[pid].push((part, qid));
        }
    }
    Dfa {
        arcs,
        accepting,
        start: 0,
    }
    .trim_dead()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;
    use crate::regex::Regex;

    fn sym(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    fn dfa_of(re: &Regex) -> Dfa {
        determinize(&re.to_nfa())
    }

    #[test]
    fn accepts_matches_regex() {
        let a = sym(0);
        let b = sym(1);
        let d = dfa_of(&Regex::concat(vec![Regex::sym(a).star(), Regex::sym(b)]));
        assert!(d.accepts(&[b]));
        assert!(d.accepts(&[a, a, b]));
        assert!(!d.accepts(&[a]));
        assert!(!d.accepts(&[b, b]));
    }

    #[test]
    fn complete_preserves_language_and_is_total() {
        let a = sym(0);
        let d = dfa_of(&Regex::sym(a)).complete();
        for s in 0..d.len() {
            let covered = d
                .arcs_from(s)
                .iter()
                .fold(SymSet::empty(), |acc, (l, _)| acc.union(l));
            assert!(covered.is_universe(), "state {s} incomplete");
        }
        assert!(d.accepts(&[a]));
        assert!(!d.accepts(&[a, a]));
        assert!(!d.accepts(&[sym(9)]));
    }

    #[test]
    fn complement_flips_membership() {
        let a = sym(0);
        let b = sym(1);
        let d = dfa_of(&Regex::word(&[a, b]));
        let c = d.complement();
        for w in [
            vec![],
            vec![a],
            vec![a, b],
            vec![b, a],
            vec![a, b, a],
            vec![sym(7)],
        ] {
            assert_eq!(d.accepts(&w), !c.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn double_complement_is_identity_on_language() {
        let a = sym(0);
        let d = dfa_of(&Regex::sym(a).plus());
        let cc = d.complement().complement();
        for w in [vec![], vec![a], vec![a, a], vec![sym(3)]] {
            assert_eq!(d.accepts(&w), cc.accepts(&w));
        }
    }

    #[test]
    fn product_intersection() {
        let a = sym(0);
        let b = sym(1);
        // a* ∩ (a|b)(a|b) = aa
        let left = dfa_of(&Regex::sym(a).star());
        let ab = Regex::union(vec![Regex::sym(a), Regex::sym(b)]);
        let right = dfa_of(&Regex::concat(vec![ab.clone(), ab]));
        let p = product(&left, &right, ProductMode::Intersection);
        assert!(p.accepts(&[a, a]));
        assert!(!p.accepts(&[a]));
        assert!(!p.accepts(&[a, b]));
        assert!(!p.accepts(&[a, a, a]));
    }

    #[test]
    fn product_union() {
        let a = sym(0);
        let b = sym(1);
        let left = dfa_of(&Regex::sym(a));
        let right = dfa_of(&Regex::sym(b));
        let p = product(&left, &right, ProductMode::Union);
        assert!(p.accepts(&[a]));
        assert!(p.accepts(&[b]));
        assert!(!p.accepts(&[a, b]));
        assert!(!p.accepts(&[]));
    }

    #[test]
    fn product_difference() {
        let a = sym(0);
        // a* \ aa* = ε
        let left = dfa_of(&Regex::sym(a).star());
        let right = dfa_of(&Regex::sym(a).plus());
        let p = product(&left, &right, ProductMode::Difference);
        assert!(p.accepts(&[]));
        assert!(!p.accepts(&[a]));
        assert!(!p.accepts(&[a, a]));
    }

    #[test]
    fn product_symmetric_difference() {
        let a = sym(0);
        let left = dfa_of(&Regex::sym(a).star());
        let right = dfa_of(&Regex::sym(a).plus());
        let p = product(&left, &right, ProductMode::SymmetricDifference);
        assert!(p.accepts(&[]));
        assert!(!p.accepts(&[a]));
    }

    #[test]
    fn difference_with_universe_is_empty() {
        let a = sym(0);
        let left = dfa_of(&Regex::sym(a));
        let right = dfa_of(&Regex::any_star());
        let p = product(&left, &right, ProductMode::Difference);
        assert!(p.language_is_empty());
    }

    #[test]
    fn trim_dead_keeps_language() {
        let a = sym(0);
        let b = sym(1);
        let d = dfa_of(&Regex::word(&[a, b])).complete();
        let t = d.trim_dead();
        assert!(t.len() <= d.len());
        for w in [vec![], vec![a], vec![a, b], vec![b]] {
            assert_eq!(d.accepts(&w), t.accepts(&w));
        }
    }

    #[test]
    fn empty_language_dfa() {
        let d = Dfa::empty_language();
        assert!(d.language_is_empty());
        assert!(!d.accepts(&[]));
        assert!(d.complement().accepts(&[]));
        assert!(d.complement().accepts(&[sym(4)]));
    }
}
