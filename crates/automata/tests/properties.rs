//! Property-based tests for the automata algebra.
//!
//! Strategy: generate small random regexes over a 3-symbol alphabet,
//! enumerate all words up to a length bound, and cross-check every
//! construction (determinize, minimize, complement, products,
//! equivalence, transducers) against direct NFA simulation or against
//! set-theoretic definitions evaluated by brute force.

use proptest::prelude::*;
use rela_automata::*;

const ALPHABET: usize = 3;
const MAX_WORD_LEN: usize = 4;

fn sym(ix: usize) -> Symbol {
    Symbol::from_index(ix)
}

/// All words over {s0..s_{ALPHABET-1}} with length ≤ MAX_WORD_LEN.
fn all_words() -> Vec<Vec<Symbol>> {
    let mut out = vec![vec![]];
    let mut frontier = vec![vec![]];
    for _ in 0..MAX_WORD_LEN {
        let mut next = Vec::new();
        for w in &frontier {
            for a in 0..ALPHABET {
                let mut w2 = w.clone();
                w2.push(sym(a));
                out.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

/// Random regex over the small alphabet.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Empty),
        Just(Regex::Eps),
        (0..ALPHABET).prop_map(|i| Regex::sym(sym(i))),
        Just(Regex::any()),
        proptest::collection::vec(0..ALPHABET, 1..3)
            .prop_map(|v| Regex::Set(SymSet::from_syms(v.into_iter().map(sym).collect()))),
        (0..ALPHABET).prop_map(|i| Regex::Set(SymSet::all_except(vec![sym(i)]))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::union),
            inner.prop_map(|r| r.star()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn determinize_preserves_language(re in regex_strategy()) {
        let nfa = re.to_nfa();
        let dfa = determinize(&nfa);
        for w in all_words() {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn minimize_preserves_language(re in regex_strategy()) {
        let dfa = determinize(&re.to_nfa());
        let min = minimize(&dfa);
        prop_assert!(min.len() <= dfa.complete().len() + 1);
        for w in all_words() {
            prop_assert_eq!(dfa.accepts(&w), min.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn minimize_is_idempotent_in_size(re in regex_strategy()) {
        let m1 = minimize(&determinize(&re.to_nfa()));
        let m2 = minimize(&m1);
        prop_assert_eq!(m1.len(), m2.len());
        prop_assert!(equivalent(&m1, &m2).is_ok());
    }

    #[test]
    fn complement_flips_membership(re in regex_strategy()) {
        let dfa = determinize(&re.to_nfa());
        let comp = dfa.complement();
        for w in all_words() {
            prop_assert_eq!(dfa.accepts(&w), !comp.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn product_modes_match_boolean_semantics(
        r1 in regex_strategy(),
        r2 in regex_strategy(),
    ) {
        let d1 = determinize(&r1.to_nfa());
        let d2 = determinize(&r2.to_nfa());
        let inter = product(&d1, &d2, ProductMode::Intersection);
        let union_ = product(&d1, &d2, ProductMode::Union);
        let diff = product(&d1, &d2, ProductMode::Difference);
        let symdiff = product(&d1, &d2, ProductMode::SymmetricDifference);
        for w in all_words() {
            let (a, b) = (d1.accepts(&w), d2.accepts(&w));
            prop_assert_eq!(inter.accepts(&w), a && b);
            prop_assert_eq!(union_.accepts(&w), a || b);
            prop_assert_eq!(diff.accepts(&w), a && !b);
            prop_assert_eq!(symdiff.accepts(&w), a != b);
        }
    }

    #[test]
    fn de_morgan_for_languages(r1 in regex_strategy(), r2 in regex_strategy()) {
        let d1 = determinize(&r1.to_nfa());
        let d2 = determinize(&r2.to_nfa());
        let lhs = product(&d1, &d2, ProductMode::Union);
        let rhs = product(&d1.complement(), &d2.complement(), ProductMode::Intersection)
            .complement();
        prop_assert!(equivalent(&lhs, &rhs).is_ok());
    }

    #[test]
    fn equivalence_agrees_with_brute_force(
        r1 in regex_strategy(),
        r2 in regex_strategy(),
    ) {
        let d1 = determinize(&r1.to_nfa());
        let d2 = determinize(&r2.to_nfa());
        match equivalent(&d1, &d2) {
            Ok(()) => {
                for w in all_words() {
                    prop_assert_eq!(d1.accepts(&w), d2.accepts(&w), "claimed equal, differ on {:?}", w);
                }
            }
            Err(witness) => {
                // the witness, concretized with any member per set, must
                // be accepted by exactly one automaton
                let mut table = SymbolTable::new();
                for i in 0..ALPHABET + 1 {
                    table.intern(&format!("s{i}"));
                }
                let conc = concretize(&witness, &table).expect("concretizable");
                prop_assert_ne!(d1.accepts(&conc), d2.accepts(&conc), "bogus witness {:?}", conc);
            }
        }
    }

    #[test]
    fn inclusion_in_union_always_holds(r1 in regex_strategy(), r2 in regex_strategy()) {
        let d1 = determinize(&r1.to_nfa());
        let d2 = determinize(&r2.to_nfa());
        let u = product(&d1, &d2, ProductMode::Union);
        prop_assert!(included(&d1, &u).is_ok());
        prop_assert!(included(&d2, &u).is_ok());
    }

    #[test]
    fn inclusion_witness_is_in_difference(r1 in regex_strategy(), r2 in regex_strategy()) {
        let d1 = determinize(&r1.to_nfa());
        let d2 = determinize(&r2.to_nfa());
        if let Err(witness) = included(&d1, &d2) {
            let mut table = SymbolTable::new();
            for i in 0..ALPHABET + 1 {
                table.intern(&format!("s{i}"));
            }
            let conc = concretize(&witness, &table).expect("concretizable");
            prop_assert!(d1.accepts(&conc));
            prop_assert!(!d2.accepts(&conc));
        }
    }

    #[test]
    fn reverse_reverses(re in regex_strategy()) {
        let nfa = re.to_nfa();
        let rev = nfa.reverse();
        for w in all_words() {
            let mut wr = w.clone();
            wr.reverse();
            prop_assert_eq!(nfa.accepts(&w), rev.accepts(&wr), "word {:?}", w);
        }
    }

    #[test]
    fn remove_eps_preserves(re in regex_strategy()) {
        let nfa = re.to_nfa();
        let ef = nfa.remove_eps();
        for w in all_words() {
            prop_assert_eq!(nfa.accepts(&w), ef.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn trim_preserves(re in regex_strategy()) {
        let nfa = re.to_nfa();
        let t = nfa.trim();
        for w in all_words() {
            prop_assert_eq!(nfa.accepts(&w), t.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn shortest_word_is_shortest(re in regex_strategy()) {
        let dfa = determinize(&re.to_nfa());
        let shortest = shortest_word(&dfa);
        let brute: Option<usize> = all_words()
            .into_iter()
            .filter(|w| dfa.accepts(w))
            .map(|w| w.len())
            .min();
        match (shortest, brute) {
            (Some(w), Some(len)) => prop_assert_eq!(w.len().min(MAX_WORD_LEN + 1), len.min(w.len())),
            (None, Some(_)) => prop_assert!(false, "missed an accepted word"),
            // shortest word longer than our enumeration bound is fine
            (Some(w), None) => prop_assert!(w.len() > MAX_WORD_LEN),
            (None, None) => {}
        }
    }

    #[test]
    fn enumerate_words_all_accepted(re in regex_strategy()) {
        let dfa = determinize(&re.to_nfa());
        let mut table = SymbolTable::new();
        for i in 0..ALPHABET + 1 {
            table.intern(&format!("s{i}"));
        }
        for w in enumerate_words(&dfa, 8, MAX_WORD_LEN) {
            let conc = concretize(&w, &table).expect("concretizable");
            prop_assert!(dfa.accepts(&conc));
        }
    }
}

// ---- transducer properties --------------------------------------------

/// Words up to length 3 for relation-level brute force (pairs are quadratic).
fn short_words() -> Vec<Vec<Symbol>> {
    all_words().into_iter().filter(|w| w.len() <= 3).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cross_relates_exactly_the_product(r1 in regex_strategy(), r2 in regex_strategy()) {
        let n1 = r1.to_nfa();
        let n2 = r2.to_nfa();
        let f = Fst::cross(&n1, &n2);
        for x in short_words() {
            for y in short_words() {
                prop_assert_eq!(
                    f.relates(&x, &y),
                    n1.accepts(&x) && n2.accepts(&y),
                    "pair {:?} {:?}", x, y
                );
            }
        }
    }

    #[test]
    fn identity_relates_exactly_the_diagonal(re in regex_strategy()) {
        let n = re.to_nfa();
        let f = Fst::identity(&n);
        for x in short_words() {
            for y in short_words() {
                prop_assert_eq!(
                    f.relates(&x, &y),
                    x == y && n.accepts(&x),
                    "pair {:?} {:?}", x, y
                );
            }
        }
    }

    #[test]
    fn image_matches_brute_force(rp in regex_strategy(), r1 in regex_strategy(), r2 in regex_strategy()) {
        // R = (P1 × P2) | I(P1): a union of a rewrite and a preserve part,
        // the shape Rela compilation produces (paper Fig. 4).
        let p = rp.to_nfa();
        let n1 = r1.to_nfa();
        let n2 = r2.to_nfa();
        let r = Fst::cross(&n1, &n2).union(&Fst::identity(&n1));
        let img = image(&p, &r);
        let mut table = SymbolTable::new();
        for i in 0..ALPHABET + 1 {
            table.intern(&format!("s{i}"));
        }
        for y in short_words() {
            let brute = short_words()
                .into_iter()
                .any(|x| p.accepts(&x) && r.relates(&x, &y));
            if brute {
                prop_assert!(img.accepts(&y), "missing image word {:?}", y);
            } else if img.accepts(&y) {
                // the witness x may be longer than any enumeration bound
                // (e.g. P's shortest word exceeds it): extract a candidate
                // from the automata — x ∈ P ∩ preimage(R, {y}) — and verify
                // it with the independent `relates` simulator
                let pre_y = preimage(&r, &Nfa::word(&y));
                let candidates = product(
                    &determinize(&pre_y.trim()),
                    &determinize(&p.trim()),
                    ProductMode::Intersection,
                );
                let witness = shortest_word(&candidates);
                prop_assert!(witness.is_some(), "spurious image word {:?}", y);
                let x = concretize(&witness.expect("checked"), &table)
                    .expect("concretizable witness");
                prop_assert!(
                    p.accepts(&x) && r.relates(&x, &y),
                    "extracted witness {:?} does not justify image word {:?}",
                    x,
                    y
                );
            }
        }
    }

    #[test]
    fn compose_matches_brute_force(r1 in regex_strategy(), r2 in regex_strategy(), r3 in regex_strategy()) {
        // f = I(P1), g = P2 × P3 — composition must equal brute-force join
        let n1 = r1.to_nfa();
        let n2 = r2.to_nfa();
        let n3 = r3.to_nfa();
        let f = Fst::identity(&n1);
        let g = Fst::cross(&n2, &n3);
        let fg = compose(&f, &g);
        for x in short_words() {
            for z in short_words() {
                let direct = fg.relates(&x, &z);
                let brute = n1.accepts(&x) && n2.accepts(&x) && n3.accepts(&z);
                prop_assert_eq!(direct, brute, "pair {:?} {:?}", x, z);
            }
        }
    }

    #[test]
    fn invert_swaps_pairs(r1 in regex_strategy(), r2 in regex_strategy()) {
        let f = Fst::cross(&r1.to_nfa(), &r2.to_nfa());
        let g = f.invert();
        for x in short_words() {
            for y in short_words() {
                prop_assert_eq!(f.relates(&x, &y), g.relates(&y, &x));
            }
        }
    }

    #[test]
    fn domain_range_match_brute_force(r1 in regex_strategy(), r2 in regex_strategy()) {
        let n1 = r1.to_nfa();
        let n2 = r2.to_nfa();
        let f = Fst::cross(&n1, &n2).union(&Fst::identity(&n2));
        let dom = f.domain();
        let rng = f.range();
        for w in short_words() {
            let in_dom = short_words().into_iter().any(|y| f.relates(&w, &y));
            let in_rng = short_words().into_iter().any(|x| f.relates(&x, &w));
            if in_dom {
                prop_assert!(dom.accepts(&w));
            }
            if in_rng {
                prop_assert!(rng.accepts(&w));
            }
        }
    }
}
