//! Executable reference semantics for the RIR (paper Appendix A),
//! evaluated by brute force over explicit, length-bounded path sets.
//!
//! This module exists for two reasons: it *is* the paper's denotational
//! semantics written down as code, and it cross-checks the automata-based
//! decision procedure ([`crate::lower`]) in tests: for any RIR term, the
//! automaton's language truncated at length `L` must equal this
//! evaluator's result with bound `L`.
//!
//! Star and concatenation are evaluated to the length bound, so the
//! result is exactly `⟦P⟧ ∩ Σ^{≤L}` for star-free-or-not terms alike,
//! **except** images, where the witness path on the other side of the
//! relation is also bounded by `L` (fine for testing — both sides use
//! the same bound).

use crate::rir::{PathSet, Rel, RirSpec};
use rela_automata::Symbol;
use std::collections::BTreeSet;

/// A concrete path.
pub type Path = Vec<Symbol>;
/// An explicit path set.
pub type Paths = BTreeSet<Path>;
/// An explicit relation.
pub type PathPairs = BTreeSet<(Path, Path)>;

/// Evaluation context: the two snapshots as explicit path sets, the
/// finite alphabet to enumerate over, and the length bound.
pub struct EvalCtx {
    /// Pre-change paths.
    pub pre: Paths,
    /// Post-change paths.
    pub post: Paths,
    /// The alphabet used for complements and `.`-style atoms.
    pub alphabet: Vec<Symbol>,
    /// Maximum path length considered.
    pub max_len: usize,
}

impl EvalCtx {
    /// All paths over the alphabet up to the bound (Σ^{≤L}).
    pub fn universe(&self) -> Paths {
        let mut out: Paths = BTreeSet::new();
        out.insert(Vec::new());
        let mut frontier: Vec<Path> = vec![Vec::new()];
        for _ in 0..self.max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &a in &self.alphabet {
                    let mut w2 = w.clone();
                    w2.push(a);
                    out.insert(w2.clone());
                    next.push(w2);
                }
            }
            frontier = next;
        }
        out
    }
}

/// Evaluate a path set to its explicit denotation (Appendix A, 𝒫⟦·⟧).
pub fn eval_pathset(p: &PathSet, ctx: &EvalCtx) -> Paths {
    match p {
        PathSet::Empty => BTreeSet::new(),
        PathSet::Eps => [Vec::new()].into_iter().collect(),
        PathSet::Atom(set) => ctx
            .alphabet
            .iter()
            .filter(|&&a| set.contains(a))
            .map(|&a| vec![a])
            .collect(),
        PathSet::PreState => ctx.pre.clone(),
        PathSet::PostState => ctx.post.clone(),
        PathSet::Union(parts) => parts.iter().flat_map(|q| eval_pathset(q, ctx)).collect(),
        PathSet::Concat(parts) => {
            let mut acc: Paths = [Vec::new()].into_iter().collect();
            for q in parts {
                let rhs = eval_pathset(q, ctx);
                acc = concat_sets(&acc, &rhs, ctx.max_len);
            }
            acc
        }
        PathSet::Star(inner) => {
            let base = eval_pathset(inner, ctx);
            star_set(&base, ctx.max_len)
        }
        PathSet::Inter(a, b) => {
            let left = eval_pathset(a, ctx);
            let right = eval_pathset(b, ctx);
            left.intersection(&right).cloned().collect()
        }
        PathSet::Complement(inner) => {
            let excluded = eval_pathset(inner, ctx);
            ctx.universe()
                .into_iter()
                .filter(|w| !excluded.contains(w))
                .collect()
        }
        PathSet::Image(p, r) => {
            let domain = eval_pathset(p, ctx);
            eval_rel(r, ctx)
                .into_iter()
                .filter(|(x, _)| domain.contains(x))
                .map(|(_, y)| y)
                .collect()
        }
    }
}

/// Evaluate a relation to its explicit denotation (Appendix A, ℛ⟦·⟧),
/// with both components bounded by `ctx.max_len`.
pub fn eval_rel(r: &Rel, ctx: &EvalCtx) -> PathPairs {
    match r {
        Rel::Empty => BTreeSet::new(),
        Rel::Eps => [(Vec::new(), Vec::new())].into_iter().collect(),
        Rel::Cross(a, b) => {
            let left = eval_pathset(a, ctx);
            let right = eval_pathset(b, ctx);
            left.iter()
                .flat_map(|x| right.iter().map(move |y| (x.clone(), y.clone())))
                .collect()
        }
        Rel::Ident(p) => eval_pathset(p, ctx)
            .into_iter()
            .map(|x| (x.clone(), x))
            .collect(),
        Rel::Union(parts) => parts.iter().flat_map(|q| eval_rel(q, ctx)).collect(),
        Rel::Concat(parts) => {
            let mut acc: PathPairs = [(Vec::new(), Vec::new())].into_iter().collect();
            for q in parts {
                let rhs = eval_rel(q, ctx);
                acc = concat_rels(&acc, &rhs, ctx.max_len);
            }
            acc
        }
        Rel::Star(inner) => {
            let base = eval_rel(inner, ctx);
            star_rel(&base, ctx.max_len)
        }
        Rel::Compose(a, b) => {
            let left = eval_rel(a, ctx);
            let right = eval_rel(b, ctx);
            let mut out: PathPairs = BTreeSet::new();
            for (x, y) in &left {
                for (y2, z) in &right {
                    if y == y2 {
                        out.insert((x.clone(), z.clone()));
                    }
                }
            }
            out
        }
    }
}

/// Evaluate a specification (Appendix A, `M, N ⊨ S`).
pub fn eval_spec(s: &RirSpec, ctx: &EvalCtx) -> bool {
    match s {
        RirSpec::Equal(a, b) => eval_pathset(a, ctx) == eval_pathset(b, ctx),
        RirSpec::Subset(a, b) => {
            let left = eval_pathset(a, ctx);
            let right = eval_pathset(b, ctx);
            left.is_subset(&right)
        }
        RirSpec::And(a, b) => eval_spec(a, ctx) && eval_spec(b, ctx),
        RirSpec::Or(a, b) => eval_spec(a, ctx) || eval_spec(b, ctx),
        RirSpec::Not(a) => !eval_spec(a, ctx),
    }
}

fn concat_sets(left: &Paths, right: &Paths, max_len: usize) -> Paths {
    let mut out = BTreeSet::new();
    for x in left {
        for y in right {
            if x.len() + y.len() <= max_len {
                let mut w = x.clone();
                w.extend_from_slice(y);
                out.insert(w);
            }
        }
    }
    out
}

fn star_set(base: &Paths, max_len: usize) -> Paths {
    let mut out: Paths = [Vec::new()].into_iter().collect();
    loop {
        let next = concat_sets(&out, base, max_len);
        let before = out.len();
        out.extend(next);
        if out.len() == before {
            return out;
        }
    }
}

fn concat_rels(left: &PathPairs, right: &PathPairs, max_len: usize) -> PathPairs {
    let mut out = BTreeSet::new();
    for (x1, y1) in left {
        for (x2, y2) in right {
            if x1.len() + x2.len() <= max_len && y1.len() + y2.len() <= max_len {
                let mut x = x1.clone();
                x.extend_from_slice(x2);
                let mut y = y1.clone();
                y.extend_from_slice(y2);
                out.insert((x, y));
            }
        }
    }
    out
}

fn star_rel(base: &PathPairs, max_len: usize) -> PathPairs {
    let mut out: PathPairs = [(Vec::new(), Vec::new())].into_iter().collect();
    loop {
        let next = concat_rels(&out, base, max_len);
        let before = out.len();
        out.extend(next);
        if out.len() == before {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rela_automata::SymSet;

    fn s(ix: usize) -> Symbol {
        Symbol::from_index(ix)
    }

    fn ctx() -> EvalCtx {
        EvalCtx {
            pre: [vec![s(0), s(1)]].into_iter().collect(),
            post: [vec![s(0), s(2)]].into_iter().collect(),
            alphabet: vec![s(0), s(1), s(2)],
            max_len: 3,
        }
    }

    fn atom(ix: usize) -> PathSet {
        PathSet::Atom(SymSet::singleton(s(ix)))
    }

    #[test]
    fn atoms_and_states() {
        let c = ctx();
        assert_eq!(eval_pathset(&atom(0), &c).len(), 1);
        assert_eq!(eval_pathset(&PathSet::PreState, &c), c.pre);
        assert_eq!(eval_pathset(&PathSet::PostState, &c), c.post);
        assert_eq!(eval_pathset(&PathSet::Empty, &c).len(), 0);
        assert_eq!(eval_pathset(&PathSet::Eps, &c).len(), 1);
    }

    #[test]
    fn universe_size() {
        let c = ctx();
        // 1 + 3 + 9 + 27
        assert_eq!(c.universe().len(), 40);
    }

    #[test]
    fn star_bounded() {
        let c = ctx();
        let p = PathSet::Star(Box::new(atom(0)));
        // ε, 0, 00, 000
        assert_eq!(eval_pathset(&p, &c).len(), 4);
    }

    #[test]
    fn complement_within_universe() {
        let c = ctx();
        let p = PathSet::Complement(Box::new(PathSet::Eps));
        assert_eq!(eval_pathset(&p, &c).len(), 39);
    }

    #[test]
    fn image_of_cross() {
        let c = ctx();
        // PreState ⊲ (PreState × {path 2}) = {2} since pre nonempty
        let r = Rel::Cross(Box::new(PathSet::PreState), Box::new(atom(2)));
        let p = PathSet::Image(Box::new(PathSet::PreState), Box::new(r));
        let out = eval_pathset(&p, &c);
        assert_eq!(out, [vec![s(2)]].into_iter().collect::<Paths>());
    }

    #[test]
    fn image_of_identity_is_intersection() {
        let c = ctx();
        // PreState ⊲ I(.*) = PreState
        let any_star = PathSet::Star(Box::new(PathSet::Atom(SymSet::universe())));
        let p = PathSet::Image(
            Box::new(PathSet::PreState),
            Box::new(Rel::Ident(Box::new(any_star))),
        );
        assert_eq!(eval_pathset(&p, &c), c.pre);
    }

    #[test]
    fn preserve_equation_fails_when_snapshots_differ() {
        let c = ctx();
        // PreState ⊲ I(.*) = PostState ⊲ I(.*) ⟺ pre == post (here false)
        let any_star = PathSet::Star(Box::new(PathSet::Atom(SymSet::universe())));
        let lhs = PathSet::Image(
            Box::new(PathSet::PreState),
            Box::new(Rel::Ident(Box::new(any_star.clone()))),
        );
        let rhs = PathSet::Image(
            Box::new(PathSet::PostState),
            Box::new(Rel::Ident(Box::new(any_star))),
        );
        assert!(!eval_spec(&RirSpec::Equal(lhs.clone(), rhs.clone()), &c));
        assert!(eval_spec(
            &RirSpec::Not(Box::new(RirSpec::Equal(lhs, rhs))),
            &c
        ));
    }

    #[test]
    fn subset_and_boolean_combinators() {
        let c = ctx();
        let sub = RirSpec::Subset(atom(0), PathSet::Atom(SymSet::universe()));
        assert!(eval_spec(&sub, &c));
        let not_sub = RirSpec::Subset(PathSet::Atom(SymSet::universe()), atom(0));
        assert!(!eval_spec(&not_sub, &c));
        assert!(eval_spec(
            &RirSpec::Or(Box::new(not_sub.clone()), Box::new(sub.clone())),
            &c
        ));
        assert!(!eval_spec(
            &RirSpec::And(Box::new(not_sub), Box::new(sub)),
            &c
        ));
    }

    #[test]
    fn rel_concat_pairs() {
        let c = ctx();
        // ({0}×{1}) · ({1}×{2}) relates 01 → 12
        let r = Rel::Concat(vec![
            Rel::Cross(Box::new(atom(0)), Box::new(atom(1))),
            Rel::Cross(Box::new(atom(1)), Box::new(atom(2))),
        ]);
        let pairs = eval_rel(&r, &c);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(vec![s(0), s(1)], vec![s(1), s(2)])));
    }

    #[test]
    fn rel_compose_joins_on_middle() {
        let c = ctx();
        let r1 = Rel::Cross(Box::new(atom(0)), Box::new(atom(1)));
        let r2 = Rel::Cross(Box::new(atom(1)), Box::new(atom(2)));
        let comp = Rel::Compose(Box::new(r1), Box::new(r2));
        let pairs = eval_rel(&comp, &c);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(vec![s(0)], vec![s(2)])));
    }

    #[test]
    fn rel_star_synchronized_repetition() {
        let c = ctx();
        let r = Rel::Star(Box::new(Rel::Cross(Box::new(atom(0)), Box::new(atom(1)))));
        let pairs = eval_rel(&r, &c);
        // (ε,ε), (0,1), (00,11), (000,111)
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(vec![s(0), s(0)], vec![s(1), s(1)])));
    }
}
