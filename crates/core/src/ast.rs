//! The Rela surface language AST (paper §4, Fig. 2), plus the practical
//! extensions of §7: prefix-predicate routing (`pspec`) and the RIR
//! escape hatch for expert users (§5: "an expert user may use the RIR
//! directly if they choose").

use rela_net::{AttrPred, Ipv4Prefix};

/// A path pattern: a regular expression over network locations
/// (Fig. 2, `r`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathRegex {
    /// `.` — any single location.
    Any,
    /// A bare identifier: a reference to a named regex, or a literal
    /// location name at the chosen granularity.
    Name(String),
    /// `where(attr == "glob")` — a location-database query.
    Where(AttrPred),
    /// The special `drop` location.
    Drop,
    /// `r₁ | r₂`
    Union(Vec<PathRegex>),
    /// `r₁ r₂`
    Concat(Vec<PathRegex>),
    /// `r*`
    Star(Box<PathRegex>),
    /// `r+`
    Plus(Box<PathRegex>),
    /// `r?`
    Opt(Box<PathRegex>),
}

/// A path modifier (Fig. 2, `m`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Modifier {
    /// Paths in the zone stay the same.
    Preserve,
    /// Paths in `r` are added when the zone is populated.
    Add(PathRegex),
    /// Paths in `r` are removed from the zone.
    Remove(PathRegex),
    /// Paths in the first pattern are replaced by all paths of the second.
    Replace(PathRegex, PathRegex),
    /// Traffic in the zone is dropped.
    Drop,
    /// Traffic in the zone moves to *some* path in `r`.
    Any(PathRegex),
}

/// A change specification (Fig. 2, `s`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecExpr {
    /// `zone : modifier`
    Atomic {
        /// The change zone.
        zone: PathRegex,
        /// What happens inside the zone.
        modifier: Modifier,
    },
    /// Reference to a named spec.
    Ref(String),
    /// `s₁ s₂` — sub-path concatenation (written `;` in blocks).
    Concat(Vec<SpecExpr>),
    /// `s₁ else s₂` — prioritized union.
    Else(Box<SpecExpr>, Box<SpecExpr>),
}

/// A path-set expression in the RIR surface syntax (expert escape hatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RirExpr {
    /// `pre` — the pre-change path set.
    Pre,
    /// `post` — the post-change path set.
    Post,
    /// An embedded path pattern.
    Pattern(PathRegex),
    /// `e₁ | e₂`
    Union(Vec<RirExpr>),
    /// `e₁ e₂`
    Concat(Vec<RirExpr>),
    /// `e*`
    Star(Box<RirExpr>),
    /// `e₁ & e₂` — intersection.
    Inter(Box<RirExpr>, Box<RirExpr>),
    /// `!e` — complement.
    Complement(Box<RirExpr>),
}

/// An RIR assertion in the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RirSpecExpr {
    /// `e₁ == e₂`
    Equal(RirExpr, RirExpr),
    /// `e₁ <= e₂` — set inclusion.
    Subset(RirExpr, RirExpr),
    /// `a && b`
    And(Box<RirSpecExpr>, Box<RirSpecExpr>),
    /// `a || b`
    Or(Box<RirSpecExpr>, Box<RirSpecExpr>),
    /// `!a`
    Not(Box<RirSpecExpr>),
}

/// A traffic predicate for `pspec` routing (paper §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredExpr {
    /// `dstPrefix == p` — the FEC's destination is inside `p`.
    DstIn(Ipv4Prefix),
    /// `srcPrefix == p` — the FEC's source is inside `p`.
    SrcIn(Ipv4Prefix),
    /// `ingress == "glob"` — the FEC enters at a matching device.
    IngressEq(String),
    /// `a && b`
    And(Box<PredExpr>, Box<PredExpr>),
    /// `a || b`
    Or(Box<PredExpr>, Box<PredExpr>),
    /// `!a`
    Not(Box<PredExpr>),
}

/// One top-level definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Def {
    /// `regex name := r`
    Regex(String, PathRegex),
    /// `spec name := s`
    Spec(String, SpecExpr),
    /// `rir name := assertion` — an expert-level RIR spec.
    Rir(String, RirSpecExpr),
    /// `limit name := n` — an ECMP path-count ceiling (the extension the
    /// paper sketches in §9.1: "generalizing the `any` modifier to
    /// include a path count"). A flow complies when its post-change
    /// forwarding graph encodes at most `n` link-level paths.
    Limit(String, u64),
    /// `pspec name := predicate -> specname`
    PSpec {
        /// Definition name.
        name: String,
        /// Which FECs this routing applies to.
        pred: PredExpr,
        /// The spec (relational or RIR) to check for them.
        spec: String,
    },
    /// `check name` — the default spec checked for unrouted FECs.
    Check(String),
}

/// A full Rela program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Definitions in source order.
    pub defs: Vec<Def>,
}

impl Program {
    /// All `check` targets in order.
    pub fn checks(&self) -> Vec<&str> {
        self.defs
            .iter()
            .filter_map(|d| match d {
                Def::Check(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The named spec definitions.
    pub fn spec_defs(&self) -> impl Iterator<Item = (&str, &SpecExpr)> {
        self.defs.iter().filter_map(|d| match d {
            Def::Spec(name, body) => Some((name.as_str(), body)),
            _ => None,
        })
    }

    /// Count the atomic specs (`zone : modifier` terms) a named spec
    /// expands to after inlining references — the size metric of the
    /// paper's Fig. 5. Returns `None` for unknown names or reference
    /// cycles.
    pub fn atomic_count(&self, spec_name: &str) -> Option<usize> {
        let defs: std::collections::BTreeMap<&str, &SpecExpr> = self.spec_defs().collect();
        fn walk<'a>(
            s: &'a SpecExpr,
            defs: &std::collections::BTreeMap<&'a str, &'a SpecExpr>,
            visiting: &mut std::collections::BTreeSet<&'a str>,
        ) -> Option<usize> {
            match s {
                SpecExpr::Atomic { .. } => Some(1),
                SpecExpr::Ref(name) => {
                    let body = defs.get(name.as_str())?;
                    if !visiting.insert(name) {
                        return None; // cycle
                    }
                    let n = walk(body, defs, visiting)?;
                    visiting.remove(name.as_str());
                    Some(n)
                }
                SpecExpr::Concat(parts) => parts
                    .iter()
                    .map(|p| walk(p, defs, visiting))
                    .sum::<Option<usize>>(),
                SpecExpr::Else(a, b) => Some(walk(a, defs, visiting)? + walk(b, defs, visiting)?),
            }
        }
        let body = defs.get(spec_name)?;
        let mut visiting = std::collections::BTreeSet::from([spec_name]);
        walk(body, &defs, &mut visiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_checks_listing() {
        let prog = Program {
            defs: vec![
                Def::Regex("a1".into(), PathRegex::Any),
                Def::Check("change".into()),
            ],
        };
        assert_eq!(prog.checks(), vec!["change"]);
    }
}

#[cfg(test)]
mod atomic_count_tests {
    use super::*;

    fn atomic() -> SpecExpr {
        SpecExpr::Atomic {
            zone: PathRegex::Any,
            modifier: Modifier::Preserve,
        }
    }

    #[test]
    fn counts_through_refs_concat_and_else() {
        let prog = Program {
            defs: vec![
                Def::Spec("a".into(), atomic()),
                Def::Spec(
                    "b".into(),
                    SpecExpr::Concat(vec![atomic(), SpecExpr::Ref("a".into()), atomic()]),
                ),
                Def::Spec(
                    "c".into(),
                    SpecExpr::Else(
                        Box::new(SpecExpr::Ref("b".into())),
                        Box::new(SpecExpr::Ref("a".into())),
                    ),
                ),
            ],
        };
        assert_eq!(prog.atomic_count("a"), Some(1));
        assert_eq!(prog.atomic_count("b"), Some(3));
        assert_eq!(prog.atomic_count("c"), Some(4));
        assert_eq!(prog.atomic_count("missing"), None);
    }

    #[test]
    fn cycles_yield_none() {
        let prog = Program {
            defs: vec![
                Def::Spec("x".into(), SpecExpr::Ref("y".into())),
                Def::Spec("y".into(), SpecExpr::Ref("x".into())),
            ],
        };
        assert_eq!(prog.atomic_count("x"), None);
    }

    #[test]
    fn self_reference_is_a_cycle() {
        let prog = Program {
            defs: vec![Def::Spec("x".into(), SpecExpr::Ref("x".into()))],
        };
        assert_eq!(prog.atomic_count("x"), None);
    }
}
