//! Check reports: per-FEC verdicts with attributed counterexamples and
//! aggregate statistics, rendered in the style of the paper's Table 1.

use crate::counterexample::EquationDiff;
use rela_net::FlowSpec;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Why one sub-spec failed for one FEC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationDetail {
    /// A relational equation diff (missing / unexpected paths).
    Equation(EquationDiff),
    /// Raw RIR assertion failures, as messages.
    Raw(Vec<String>),
}

impl fmt::Display for ViolationDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationDetail::Equation(diff) => {
                let mut first = true;
                if !diff.missing.is_empty() {
                    write!(f, "expected {{{}}}", diff.missing.join(", "))?;
                    first = false;
                }
                if !diff.unexpected.is_empty() {
                    if !first {
                        write!(f, " ≠ ")?;
                    }
                    write!(f, "observed {{{}}}", diff.unexpected.join(", "))?;
                }
                Ok(())
            }
            ViolationDetail::Raw(msgs) => write!(f, "{}", msgs.join("; ")),
        }
    }
}

/// One violated sub-spec for one FEC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartViolation {
    /// The violated sub-spec's name (e.g. `e2e`, `nochange`).
    pub part: String,
    /// The evidence.
    pub detail: ViolationDetail,
}

/// The outcome for one FEC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecResult {
    /// The traffic class.
    pub flow: FlowSpec,
    /// Which spec was checked.
    pub check_name: String,
    /// The pspec that routed this FEC, if any.
    pub route: Option<String>,
    /// Rendered pre-change paths (populated for violations only).
    pub pre_paths: Vec<String>,
    /// Rendered post-change paths (populated for violations only).
    pub post_paths: Vec<String>,
    /// The violated sub-specs; empty means compliant.
    pub violations: Vec<PartViolation>,
}

impl FecResult {
    /// Did the FEC comply?
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialize everything except the flow (which is per-member, not
    /// per-behavior-class) for the persistent verdict cache, together
    /// with the wall/phase cost of the original decision.
    pub fn to_cache_value(&self, wall: Duration, phases: &PhaseTimings) -> Value {
        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                let detail = match &v.detail {
                    ViolationDetail::Equation(diff) => (
                        "equation",
                        Value::obj(vec![
                            ("missing", diff.missing.to_value()),
                            ("unexpected", diff.unexpected.to_value()),
                        ]),
                    ),
                    ViolationDetail::Raw(msgs) => ("raw", msgs.to_value()),
                };
                Value::obj(vec![("part", v.part.to_value()), detail])
            })
            .collect();
        Value::obj(vec![
            ("check_name", self.check_name.to_value()),
            ("route", self.route.to_value()),
            ("pre_paths", self.pre_paths.to_value()),
            ("post_paths", self.post_paths.to_value()),
            ("violations", Value::Arr(violations)),
            ("wall_s", wall.as_secs_f64().to_value()),
            ("phases_s", phases.to_cache_value()),
        ])
    }

    /// Rebuild a cached verdict for `flow`. `None` on any shape mismatch
    /// (a malformed entry is a cache miss, never an error).
    pub fn from_cache_value(value: &Value, flow: FlowSpec) -> Option<FecResult> {
        let violations = value
            .get("violations")?
            .as_arr()?
            .iter()
            .map(|v| {
                let part = v.get("part")?.as_str()?.to_owned();
                let detail = if let Some(eq) = v.get("equation") {
                    ViolationDetail::Equation(EquationDiff {
                        missing: Vec::<String>::from_value(eq.get("missing")?).ok()?,
                        unexpected: Vec::<String>::from_value(eq.get("unexpected")?).ok()?,
                    })
                } else {
                    ViolationDetail::Raw(Vec::<String>::from_value(v.get("raw")?).ok()?)
                };
                Some(PartViolation { part, detail })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(FecResult {
            flow,
            check_name: value.get("check_name")?.as_str()?.to_owned(),
            route: Option::<String>::from_value(value.get("route")?).ok()?,
            pre_paths: Vec::<String>::from_value(value.get("pre_paths")?).ok()?,
            post_paths: Vec::<String>::from_value(value.get("post_paths")?).ok()?,
            violations,
        })
    }
}

/// CPU time spent in each phase of the decision pipeline, summed across
/// behavior classes (and across workers, so the total can exceed the
/// report's wall-clock `elapsed` when checking runs in parallel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Building path FSAs and applying relation transducers (includes
    /// the embedded determinization of raw-RIR lowering).
    pub lower: Duration,
    /// Subset-construction determinization of the equation sides.
    pub determinize: Duration,
    /// Language-equivalence decisions.
    pub equivalent: Duration,
    /// Counterexample extraction and path rendering.
    pub witness: Duration,
}

impl PhaseTimings {
    /// Accumulate another worker's timings into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        self.lower += other.lower;
        self.determinize += other.determinize;
        self.equivalent += other.equivalent;
        self.witness += other.witness;
    }

    /// Total CPU time across all phases.
    pub fn total(&self) -> Duration {
        self.lower + self.determinize + self.equivalent + self.witness
    }

    /// Per-phase difference `self - earlier` (saturating): the cost of
    /// the work done between two snapshots of an accumulator.
    pub fn since(&self, earlier: &PhaseTimings) -> PhaseTimings {
        PhaseTimings {
            lower: self.lower.saturating_sub(earlier.lower),
            determinize: self.determinize.saturating_sub(earlier.determinize),
            equivalent: self.equivalent.saturating_sub(earlier.equivalent),
            witness: self.witness.saturating_sub(earlier.witness),
        }
    }

    /// Serialize for the persistent verdict cache (seconds per phase).
    pub fn to_cache_value(&self) -> Value {
        Value::obj(vec![
            ("lower", self.lower.as_secs_f64().to_value()),
            ("determinize", self.determinize.as_secs_f64().to_value()),
            ("equivalent", self.equivalent.as_secs_f64().to_value()),
            ("witness", self.witness.as_secs_f64().to_value()),
        ])
    }
}

/// How the dedup-and-memoize engine spent its work: behavior-class
/// counts, cache effectiveness, and per-phase CPU time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// FECs in the snapshot pair.
    pub fecs: usize,
    /// Distinct behavior classes actually decided.
    pub classes: usize,
    /// FECs whose verdict was broadcast from a class representative
    /// (`fecs - classes`).
    pub dedup_hits: usize,
    /// Behavior classes answered from the *persistent* cross-run store
    /// without re-deciding (0 when no cache is attached).
    pub warm_hits: usize,
    /// Determinized equation sides reused from the in-run per-side FST
    /// memo instead of being recomputed.
    pub fst_memo_hits: usize,
    /// CPU time per pipeline phase, summed over classes.
    pub phases: PhaseTimings,
    /// Wall-clock of the slowest single behavior class — the quantity
    /// work-stealing bounds the critical path by.
    pub max_class_time: Duration,
    /// Forwarding graphs actually decoded during ingest. The pipelined
    /// path admits records by raw-span content hash, so byte-identical
    /// records beyond a class founder — and byte-warm classes replayed
    /// from the store — cost zero decodes. Batch paths decode every
    /// record (`2 × fecs`). Not printed by `Display` (report bytes are
    /// decode-schedule-invariant); exported via the serve stats JSON.
    pub graph_decodes: usize,
}

impl CheckStats {
    /// Fraction of FECs answered from the behavior cache (0 when the
    /// pair is empty).
    pub fn hit_rate(&self) -> f64 {
        if self.fecs == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.fecs as f64
        }
    }
}

/// Aggregate result of checking a snapshot pair.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Total FECs checked.
    pub total: usize,
    /// How many complied.
    pub compliant: usize,
    /// The violating FECs, in flow order.
    pub violations: Vec<FecResult>,
    /// Violation counts per sub-spec name (the §8.1 headline numbers).
    pub part_counts: BTreeMap<String, usize>,
    /// Wall-clock time of the check.
    pub elapsed: Duration,
    /// Dedup and phase-timing statistics.
    pub stats: CheckStats,
}

impl CheckReport {
    /// Aggregate per-FEC results (already sorted by flow).
    pub fn new(results: Vec<FecResult>, elapsed: Duration) -> CheckReport {
        CheckReport::with_stats(results, elapsed, CheckStats::default())
    }

    /// Aggregate per-FEC results with engine statistics attached.
    pub fn with_stats(
        results: Vec<FecResult>,
        elapsed: Duration,
        stats: CheckStats,
    ) -> CheckReport {
        let total = results.len();
        let mut part_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut violations = Vec::new();
        for r in results {
            if r.is_compliant() {
                continue;
            }
            for v in &r.violations {
                *part_counts.entry(v.part.clone()).or_insert(0) += 1;
            }
            violations.push(r);
        }
        CheckReport {
            total,
            compliant: total - violations.len(),
            violations,
            part_counts,
            elapsed,
            stats,
        }
    }

    /// "Thumbs up": every FEC complied.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one sub-spec (0 if never violated).
    pub fn count_for(&self, part: &str) -> usize {
        self.part_counts.get(part).copied().unwrap_or(0)
    }

    /// Serialize the whole report — verdict, stats, and per-FEC
    /// violations — for tooling (`rela report --json`). Unlike the
    /// `Display` table nothing is clipped, and the decode-schedule
    /// counters (`graph_decodes`) that `Display` deliberately omits are
    /// included.
    pub fn to_value(&self) -> Value {
        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                let parts: Vec<Value> = v
                    .violations
                    .iter()
                    .map(|p| {
                        Value::obj(vec![
                            ("part", p.part.to_value()),
                            ("detail", p.detail.to_string().to_value()),
                        ])
                    })
                    .collect();
                Value::obj(vec![
                    ("flow", v.flow.to_string().to_value()),
                    ("check_name", v.check_name.to_value()),
                    ("route", v.route.to_value()),
                    ("pre_paths", v.pre_paths.to_value()),
                    ("post_paths", v.post_paths.to_value()),
                    ("violations", Value::Arr(parts)),
                ])
            })
            .collect();
        let part_counts: Vec<(String, Value)> = self
            .part_counts
            .iter()
            .map(|(part, count)| (part.clone(), count.to_value()))
            .collect();
        let stats = Value::obj(vec![
            ("fecs", self.stats.fecs.to_value()),
            ("classes", self.stats.classes.to_value()),
            ("dedup_hits", self.stats.dedup_hits.to_value()),
            ("warm_hits", self.stats.warm_hits.to_value()),
            ("fst_memo_hits", self.stats.fst_memo_hits.to_value()),
            ("graph_decodes", self.stats.graph_decodes.to_value()),
            ("hit_rate", self.stats.hit_rate().to_value()),
            (
                "max_class_time_s",
                self.stats.max_class_time.as_secs_f64().to_value(),
            ),
            ("phases_s", self.stats.phases.to_cache_value()),
        ]);
        Value::obj(vec![
            (
                "verdict",
                if self.is_compliant() { "PASS" } else { "FAIL" }.to_value(),
            ),
            ("total", self.total.to_value()),
            ("compliant", self.compliant.to_value()),
            ("violating", self.violations.len().to_value()),
            ("elapsed_s", self.elapsed.as_secs_f64().to_value()),
            ("part_counts", Value::Obj(part_counts)),
            ("stats", stats),
            ("violations", Value::Arr(violations)),
        ])
    }

    /// Render the per-FEC verdict table as CSV (`rela report --csv`):
    /// one row per violated sub-spec, header only when compliant.
    /// Aggregate stats ride the JSON export, not this table.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("flow,check,route,part,detail,pre_paths,post_paths\n");
        for v in &self.violations {
            for p in &v.violations {
                let row = [
                    v.flow.to_string(),
                    v.check_name.clone(),
                    v.route.clone().unwrap_or_default(),
                    p.part.clone(),
                    p.detail.to_string(),
                    v.pre_paths.join("; "),
                    v.post_paths.join("; "),
                ];
                let escaped: Vec<String> = row.iter().map(|field| csv_field(field)).collect();
                out.push_str(&escaped.join(","));
                out.push('\n');
            }
        }
        out
    }
}

/// Quote a CSV field when it contains a delimiter, quote, or newline
/// (RFC 4180 escaping: embedded quotes double).
fn csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checked {} traffic classes in {:.2?}: {} compliant, {} violating",
            self.total,
            self.elapsed,
            self.compliant,
            self.violations.len()
        )?;
        if self.stats.classes > 0 {
            write!(
                f,
                "behavior classes: {} ({} cache hits, {:.1}% hit rate",
                self.stats.classes,
                self.stats.dedup_hits,
                100.0 * self.stats.hit_rate(),
            )?;
            if self.stats.warm_hits > 0 {
                write!(f, ", {} warm from store", self.stats.warm_hits)?;
            }
            writeln!(f, ")")?;
        }
        if self.is_compliant() {
            return writeln!(f, "verdict: PASS");
        }
        writeln!(f, "violations per sub-spec:")?;
        for (part, count) in &self.part_counts {
            writeln!(f, "  {part}: {count}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<38} | {:<34} | {:<34} | cause of violation",
            "FEC", "pre-change paths", "post-change paths"
        )?;
        let dash = "-".repeat(120);
        writeln!(f, "{dash}")?;
        for v in &self.violations {
            let pre = clip(&v.pre_paths.join(" ; "), 34);
            let post = clip(&v.post_paths.join(" ; "), 34);
            for (i, pv) in v.violations.iter().enumerate() {
                let fec = if i == 0 {
                    clip(&v.flow.to_string(), 38)
                } else {
                    String::new()
                };
                let (p1, p2) = if i == 0 {
                    (pre.as_str(), post.as_str())
                } else {
                    ("", "")
                };
                writeln!(
                    f,
                    "{fec:<38} | {p1:<34} | {p2:<34} | {}: {}",
                    pv.part, pv.detail
                )?;
            }
        }
        writeln!(f, "verdict: FAIL")
    }
}

fn clip(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(dst: &str) -> FlowSpec {
        FlowSpec::new(dst.parse().unwrap(), "x1")
    }

    fn violation(part: &str) -> PartViolation {
        PartViolation {
            part: part.into(),
            detail: ViolationDetail::Equation(EquationDiff {
                missing: vec!["x1 A1 y1".into()],
                unexpected: vec!["x1 B1 y1".into()],
            }),
        }
    }

    fn result(dst: &str, parts: &[&str]) -> FecResult {
        FecResult {
            flow: flow(dst),
            check_name: "change".into(),
            route: None,
            pre_paths: vec!["x1 A1 y1".into()],
            post_paths: vec!["x1 B1 y1".into()],
            violations: parts.iter().map(|p| violation(p)).collect(),
        }
    }

    #[test]
    fn aggregates_counts_per_part() {
        let report = CheckReport::new(
            vec![
                result("10.1.0.0/24", &["e2e"]),
                result("10.1.1.0/24", &["e2e", "nochange"]),
                result("10.1.2.0/24", &[]),
            ],
            Duration::from_millis(5),
        );
        assert_eq!(report.total, 3);
        assert_eq!(report.compliant, 1);
        assert_eq!(report.count_for("e2e"), 2);
        assert_eq!(report.count_for("nochange"), 1);
        assert_eq!(report.count_for("ghost"), 0);
        assert!(!report.is_compliant());
    }

    #[test]
    fn display_contains_table_elements() {
        let report = CheckReport::new(
            vec![result("10.1.0.0/24", &["e2e"])],
            Duration::from_millis(5),
        );
        let text = report.to_string();
        assert!(text.contains("FEC"));
        assert!(text.contains("(10.1.0.0/24, ingress=x1)"));
        assert!(text.contains("e2e"));
        assert!(text.contains("expected {x1 A1 y1}"));
        assert!(text.contains("observed {x1 B1 y1}"));
        assert!(text.contains("verdict: FAIL"));
    }

    #[test]
    fn compliant_report_displays_pass() {
        let report = CheckReport::new(vec![], Duration::from_millis(1));
        assert!(report.is_compliant());
        assert!(report.to_string().contains("verdict: PASS"));
    }

    #[test]
    fn cache_value_roundtrips_verdicts() {
        let mut original = result("10.1.0.0/24", &["e2e", "nochange"]);
        original.route = Some("shiftP".into());
        original.violations.push(PartViolation {
            part: "side".into(),
            detail: ViolationDetail::Raw(vec!["inclusion violated".into()]),
        });
        let phases = PhaseTimings {
            lower: Duration::from_millis(2),
            ..PhaseTimings::default()
        };
        let value = original.to_cache_value(Duration::from_millis(7), &phases);
        // survive a JSON print/parse cycle, as the on-disk store does
        let text = serde_json::to_string(&value).unwrap();
        let reread: Value = serde_json::from_str(&text).unwrap();
        let back = FecResult::from_cache_value(&reread, original.flow.clone()).unwrap();
        assert_eq!(back, original);
        // cost metadata rides along for forensics
        assert!(reread.get("wall_s").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(
            reread
                .get("phases_s")
                .and_then(|p| p.get("lower"))
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
        // malformed entries are misses, not panics
        assert!(FecResult::from_cache_value(&Value::Null, original.flow.clone()).is_none());
        assert!(FecResult::from_cache_value(
            &Value::obj(vec![("check_name", Value::Int(3))]),
            original.flow
        )
        .is_none());
    }

    #[test]
    fn json_export_carries_stats_and_verdicts() {
        let mut report = CheckReport::new(
            vec![result("10.1.0.0/24", &["e2e"]), result("10.1.2.0/24", &[])],
            Duration::from_millis(5),
        );
        report.stats.fecs = 2;
        report.stats.classes = 1;
        report.stats.graph_decodes = 4;
        let value = report.to_value();
        // survive a JSON print/parse cycle, as tooling consumes it
        let text = serde_json::to_string(&value).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back.get("verdict").and_then(Value::as_str), Some("FAIL"));
        assert_eq!(back.get("total").and_then(Value::as_u64), Some(2));
        assert_eq!(back.get("compliant").and_then(Value::as_u64), Some(1));
        let stats = back.get("stats").unwrap();
        assert_eq!(stats.get("graph_decodes").and_then(Value::as_u64), Some(4));
        assert!(stats.get("phases_s").and_then(|p| p.get("lower")).is_some());
        assert_eq!(
            back.get("part_counts")
                .and_then(|p| p.get("e2e"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let violations = back.get("violations").and_then(Value::as_arr).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].get("flow").and_then(Value::as_str),
            Some("(10.1.0.0/24, ingress=x1)")
        );
        let parts = violations[0]
            .get("violations")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(parts[0].get("part").and_then(Value::as_str), Some("e2e"));
        assert!(parts[0]
            .get("detail")
            .and_then(Value::as_str)
            .unwrap()
            .contains("expected"));
    }

    #[test]
    fn csv_export_is_one_row_per_violated_part() {
        let report = CheckReport::new(
            vec![result("10.1.0.0/24", &["e2e", "nochange"])],
            Duration::from_millis(5),
        );
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "{csv}");
        assert_eq!(
            lines[0],
            "flow,check,route,part,detail,pre_paths,post_paths"
        );
        // the flow's display form contains a comma, so it must be quoted
        assert!(
            lines[1].starts_with("\"(10.1.0.0/24, ingress=x1)\","),
            "{csv}"
        );
        assert!(lines[1].contains(",e2e,"), "{csv}");
        assert!(lines[2].contains(",nochange,"), "{csv}");

        // a compliant report is just the header
        let clean = CheckReport::new(vec![], Duration::from_millis(1));
        assert_eq!(clean.to_csv().lines().count(), 1);

        // embedded quotes double per RFC 4180
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn phase_timings_since_is_saturating() {
        let a = PhaseTimings {
            lower: Duration::from_millis(5),
            determinize: Duration::from_millis(1),
            ..PhaseTimings::default()
        };
        let b = PhaseTimings {
            lower: Duration::from_millis(2),
            determinize: Duration::from_millis(3),
            ..PhaseTimings::default()
        };
        let d = a.since(&b);
        assert_eq!(d.lower, Duration::from_millis(3));
        assert_eq!(d.determinize, Duration::ZERO);
    }

    #[test]
    fn clip_truncates_long_text() {
        assert_eq!(clip("short", 10), "short");
        let long = "x".repeat(50);
        let clipped = clip(&long, 10);
        assert_eq!(clipped.chars().count(), 10);
        assert!(clipped.ends_with('…'));
    }
}
