//! The unified check-job API: one resident [`CheckSession`] running any
//! number of [`JobSpec`]s.
//!
//! Historically the crate grew three sibling entry points —
//! [`Checker::check`], [`Checker::check_stream`],
//! [`Checker::check_pipelined`] — plus the CLI-only `run_check`
//! convenience, each re-deriving the same warm state (parsed spec,
//! compiled program, verdict store, FST memo) per call. The paper's
//! §8.1 workflow is iterative: an operator re-submits near-identical
//! jobs against one spec, so that warm state is exactly what should
//! persist between checks. This module splits the API along that line:
//!
//! - a **session** owns everything that outlives a request: the
//!   compiled program, the location database, the cache epoch derived
//!   from both, an optional open [`VerdictStore`], and the FST memo of
//!   determinized equation sides;
//! - a **job** owns everything request-scoped: the snapshot pair (in
//!   memory or as labelled streams) and the per-job [`JobOptions`].
//!
//! One-shot CLI mode is the degenerate case — open a session, run one
//! job, exit — and `rela serve` is the same session kept resident
//! behind a socket. Reports are byte-identical across all ingest modes
//! and between a fresh and a warm session (the memo and store change
//! wall time and the stats line, never verdict bytes).
//!
//! ```
//! use rela_core::{CheckSession, JobSpec, SessionConfig};
//! use rela_net::{Device, LocationDb, Granularity, Snapshot, SnapshotPair,
//!                FlowSpec, linear_graph};
//!
//! let mut db = LocationDb::new();
//! db.add_device(Device::new("A1", "A1"));
//! db.add_device(Device::new("B1", "B1"));
//!
//! let mut pre = Snapshot::new();
//! let flow = FlowSpec::new("10.0.0.0/24".parse().unwrap(), "A1");
//! pre.insert(flow.clone(), linear_graph(&["A1", "B1"]));
//! let mut post = Snapshot::new();
//! post.insert(flow, linear_graph(&["A1", "B1"]));
//! let pair = SnapshotPair::align(&pre, &post);
//!
//! let session = CheckSession::open(
//!     "spec nochange := { .* : preserve }\ncheck nochange",
//!     db,
//!     SessionConfig { granularity: Granularity::Device, ..SessionConfig::default() },
//! ).unwrap();
//! let report = session.run(JobSpec::pair(&pair)).unwrap();
//! assert!(report.is_compliant());
//! ```

use crate::check::{cache_epoch, CheckOptions, Checker, FstMemo};
use crate::compile::{compile_program, CompiledProgram};
use crate::parser::parse_program;
use crate::report::CheckReport;
use crate::RelaError;
use rela_cache::{CacheEpoch, VerdictStore};
use rela_net::{
    Granularity, LocationDb, Snapshot, SnapshotError, SnapshotFramer, SnapshotPair, SnapshotReader,
};
use serde::{Deserialize, Serialize, Value};
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Session-lifetime configuration: what the spec compiles against and
/// how much parallelism every job gets. Fixed at [`CheckSession::open`]
/// time — changing either means a new session (and, for granularity, a
/// new cache epoch anyway, since the compiled program changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Location granularity the spec compiles at.
    pub granularity: Granularity,
    /// Worker threads per job; `0` uses the machine's available
    /// parallelism.
    pub threads: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            granularity: Granularity::Group,
            threads: 0,
        }
    }
}

/// How a job's snapshot streams are ingested. Irrelevant for
/// [`JobInput::Pair`], which is already in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// The fully pipelined cold path ([`Checker::check_pipelined`]):
    /// framing, decoding, fingerprinting, and deciding overlap. `depth`
    /// is records in flight per decode worker; `0` = engine default.
    /// This is the default mode.
    Pipelined {
        /// Records in flight per decode worker (`0` = engine default).
        depth: usize,
    },
    /// Single-threaded streaming ingest ([`Checker::check_stream`]):
    /// O(classes) graph residency, deciding starts after the streams
    /// end.
    Serial,
    /// Materialize both snapshots in memory, then align and check
    /// ([`Checker::check`]).
    Materialized,
}

impl Default for IngestMode {
    fn default() -> IngestMode {
        IngestMode::Pipelined { depth: 0 }
    }
}

/// Per-job knobs: everything about a check that is legitimate to vary
/// between two submissions to one session. This struct is the single
/// source of truth for the one-shot CLI flags *and* the serve wire
/// protocol — both serialize it with [`Serialize`]/[`Deserialize`], so
/// a client and a one-shot run cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOptions {
    /// Witness enumeration limits for counterexamples.
    pub witness: crate::counterexample::WitnessLimits,
    /// Number of pre/post paths rendered per violating FEC.
    pub list_paths: usize,
    /// Group FECs into behavior classes and decide one representative
    /// per class.
    pub dedup: bool,
    /// Hopcroft-minimize each determinized equation side before the
    /// equivalence check (ablation knob).
    pub minimize_sides: bool,
    /// Stream ingest mode (ignored for in-memory pairs).
    pub ingest: IngestMode,
    /// Consult (and write back to) the session's verdict store, when
    /// one is attached.
    pub use_cache: bool,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        let defaults = CheckOptions::default();
        JobOptions {
            witness: defaults.witness,
            list_paths: defaults.list_paths,
            dedup: defaults.dedup,
            minimize_sides: defaults.minimize_sides,
            ingest: IngestMode::default(),
            use_cache: true,
        }
    }
}

impl Serialize for JobOptions {
    fn to_value(&self) -> Value {
        let (mode, depth) = match self.ingest {
            IngestMode::Pipelined { depth } => ("pipelined", depth),
            IngestMode::Serial => ("serial", 0),
            IngestMode::Materialized => ("materialized", 0),
        };
        Value::obj(vec![
            ("max_paths", self.witness.max_paths.to_value()),
            ("max_len", self.witness.max_len.to_value()),
            ("list_paths", self.list_paths.to_value()),
            ("dedup", self.dedup.to_value()),
            ("minimize_sides", self.minimize_sides.to_value()),
            ("ingest", Value::Str(mode.to_owned())),
            ("pipeline_depth", depth.to_value()),
            ("use_cache", self.use_cache.to_value()),
        ])
    }
}

impl Deserialize for JobOptions {
    fn from_value(value: &Value) -> Result<JobOptions, serde::Error> {
        let depth: usize = serde::field(value, "pipeline_depth")?;
        let ingest = match serde::field::<String>(value, "ingest")?.as_str() {
            "pipelined" => IngestMode::Pipelined { depth },
            "serial" => IngestMode::Serial,
            "materialized" => IngestMode::Materialized,
            other => {
                return Err(serde::Error::custom(format!(
                    "unknown ingest mode `{other}`"
                )))
            }
        };
        Ok(JobOptions {
            witness: crate::counterexample::WitnessLimits {
                max_paths: serde::field(value, "max_paths")?,
                max_len: serde::field(value, "max_len")?,
            },
            list_paths: serde::field(value, "list_paths")?,
            dedup: serde::field(value, "dedup")?,
            minimize_sides: serde::field(value, "minimize_sides")?,
            ingest,
            use_cache: serde::field(value, "use_cache")?,
        })
    }
}

/// A labelled byte stream carrying one snapshot. The label is mandatory
/// — it names the source in every error (a file path for file-backed
/// jobs, `job-N:pre`-style names for socket submissions), which is what
/// makes a malformed record traceable to its submission.
pub struct LabeledSource<'a> {
    /// The snapshot bytes (the wire format of `docs/SNAPSHOT_FORMAT.md`,
    /// already decompressed).
    pub reader: Box<dyn Read + Send + 'a>,
    /// Source name attached to every error.
    pub label: String,
}

impl<'a> LabeledSource<'a> {
    /// Wrap a byte source with its mandatory label.
    pub fn new(reader: impl Read + Send + 'a, label: impl Into<String>) -> LabeledSource<'a> {
        LabeledSource {
            reader: Box::new(reader),
            label: label.into(),
        }
    }
}

/// A job's snapshot input: an already-aligned pair, or two labelled
/// streams to ingest per [`JobOptions::ingest`].
pub enum JobInput<'a> {
    /// An aligned in-memory pair (tests, the simulator, callers that
    /// already materialized).
    Pair(&'a SnapshotPair),
    /// Two raw snapshot streams, aligned during ingest.
    Streams {
        /// The pre-change snapshot.
        pre: LabeledSource<'a>,
        /// The post-change snapshot.
        post: LabeledSource<'a>,
    },
}

/// One check job: request-scoped input plus request-scoped options.
pub struct JobSpec<'a> {
    /// The snapshot pair to check.
    pub input: JobInput<'a>,
    /// Per-job knobs.
    pub options: JobOptions,
}

impl<'a> JobSpec<'a> {
    /// A job over an aligned in-memory pair, default options.
    pub fn pair(pair: &'a SnapshotPair) -> JobSpec<'a> {
        JobSpec {
            input: JobInput::Pair(pair),
            options: JobOptions::default(),
        }
    }

    /// A job over two labelled snapshot streams, default options.
    pub fn streams(pre: LabeledSource<'a>, post: LabeledSource<'a>) -> JobSpec<'a> {
        JobSpec {
            input: JobInput::Streams { pre, post },
            options: JobOptions::default(),
        }
    }

    /// Replace the options.
    pub fn with_options(mut self, options: JobOptions) -> JobSpec<'a> {
        self.options = options;
        self
    }
}

/// A resident check context: the compiled spec, its location database,
/// the derived cache epoch, an optional open verdict store, and the
/// session-lifetime FST memo. Open once, run many jobs.
///
/// `run` takes `&self`: a session is shared between concurrent jobs
/// (the store is sharded, the memo is locked, the engine's own state is
/// per-run). See the [module docs](self) for the API rationale and an
/// example.
pub struct CheckSession {
    program: CompiledProgram,
    db: LocationDb,
    epoch: CacheEpoch,
    store: Option<VerdictStore>,
    memo: FstMemo,
    config: SessionConfig,
    jobs_run: AtomicUsize,
}

impl CheckSession {
    /// Parse and compile `source` against `db` at the configured
    /// granularity, deriving the session's cache epoch. No verdict
    /// store is attached yet — see [`CheckSession::attach_store`].
    pub fn open(
        source: &str,
        db: LocationDb,
        config: SessionConfig,
    ) -> Result<CheckSession, RelaError> {
        let program = parse_program(source)?;
        let compiled = compile_program(&program, &db, config.granularity)?;
        let epoch = cache_epoch(&program, &db);
        Ok(CheckSession {
            program: compiled,
            db,
            epoch,
            store: None,
            memo: FstMemo::new(),
            config,
            jobs_run: AtomicUsize::new(0),
        })
    }

    /// Attach an open verdict store. The caller opens it at this
    /// session's [`CheckSession::epoch`] (an epoch mismatch is not an
    /// error — the store simply never hits).
    pub fn attach_store(&mut self, store: VerdictStore) {
        self.store = Some(store);
    }

    /// The cache epoch derived from this session's spec and database.
    pub fn epoch(&self) -> CacheEpoch {
        self.epoch
    }

    /// The attached verdict store, if any.
    pub fn store(&self) -> Option<&VerdictStore> {
        self.store.as_ref()
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The location database the spec compiled against.
    pub fn db(&self) -> &LocationDb {
        &self.db
    }

    /// Number of jobs this session has completed (successfully or not).
    pub fn jobs_run(&self) -> usize {
        self.jobs_run.load(Ordering::Relaxed)
    }

    /// Run one check job. The report is byte-identical across ingest
    /// modes and across warm/cold sessions; errors carry the input's
    /// source label, entry index, and byte offset.
    pub fn run(&self, job: JobSpec<'_>) -> Result<CheckReport, SnapshotError> {
        let options = CheckOptions {
            witness: job.options.witness,
            threads: self.config.threads,
            list_paths: job.options.list_paths,
            dedup: job.options.dedup,
            minimize_sides: job.options.minimize_sides,
            pipeline_depth: match job.options.ingest {
                IngestMode::Pipelined { depth } => depth,
                _ => 0,
            },
        };
        let mut checker = Checker::new(&self.program, &self.db)
            .with_options(options)
            .with_memo(&self.memo);
        if job.options.use_cache {
            if let Some(store) = &self.store {
                checker = checker.with_cache(store);
            }
        }
        let result = match job.input {
            JobInput::Pair(pair) => Ok(checker.check(pair)),
            JobInput::Streams { pre, post } => match job.options.ingest {
                IngestMode::Pipelined { .. } => checker.check_pipelined(
                    SnapshotFramer::new(pre.reader, pre.label),
                    SnapshotFramer::new(post.reader, post.label),
                ),
                IngestMode::Serial => checker.check_stream(SnapshotPair::align_streaming(
                    SnapshotReader::new(pre.reader).with_label(pre.label),
                    SnapshotReader::new(post.reader).with_label(post.label),
                )),
                IngestMode::Materialized => {
                    let collect = |source: LabeledSource<'_>| -> Result<Snapshot, SnapshotError> {
                        SnapshotReader::new(source.reader)
                            .with_label(source.label)
                            .collect()
                    };
                    let pre = collect(pre)?;
                    let post = collect(post)?;
                    Ok(checker.check(&SnapshotPair::align(&pre, &post)))
                }
            },
        };
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Flush the attached store to disk if any job inserted fresh
    /// verdicts since the last flush. Returns whether a write happened;
    /// `Ok(false)` with no store attached.
    pub fn persist_if_dirty(&self) -> std::io::Result<bool> {
        match &self.store {
            Some(store) => store.persist_if_dirty(),
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rela_net::{linear_graph, Device, FlowSpec};

    fn db() -> LocationDb {
        let mut db = LocationDb::new();
        for name in ["A1", "B1", "C1"] {
            db.add_device(Device::new(name, name));
        }
        db
    }

    fn pair() -> SnapshotPair {
        let mut pre = Snapshot::new();
        let mut post = Snapshot::new();
        for (ix, tail) in [["B1"], ["C1"]].iter().enumerate() {
            let flow = FlowSpec::new(format!("10.0.{ix}.0/24").parse().unwrap(), "A1");
            let path: Vec<&str> = std::iter::once("A1").chain(tail.iter().copied()).collect();
            pre.insert(flow.clone(), linear_graph(&path));
            post.insert(flow, linear_graph(&path));
        }
        SnapshotPair::align(&pre, &post)
    }

    const SPEC: &str = "spec nochange := { .* : preserve }\ncheck nochange";

    fn session() -> CheckSession {
        CheckSession::open(
            SPEC,
            db(),
            SessionConfig {
                granularity: Granularity::Device,
                threads: 1,
            },
        )
        .unwrap()
    }

    /// The filtered verdict bytes: everything except the timing- and
    /// stats-bearing lines (same filter the engine equivalence tests
    /// use).
    fn verdict_bytes(report: &CheckReport) -> String {
        report
            .to_string()
            .lines()
            .filter(|l| !l.starts_with("checked ") && !l.starts_with("behavior classes:"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn all_ingest_modes_agree_with_the_pair_path() {
        let s = session();
        let pair = pair();
        let json = {
            let mut pre = Snapshot::new();
            let mut post = Snapshot::new();
            for fec in &pair.fecs {
                pre.insert(fec.flow.clone(), fec.pre.clone());
                post.insert(fec.flow.clone(), fec.post.clone());
            }
            (pre.to_json().unwrap(), post.to_json().unwrap())
        };
        let baseline = s.run(JobSpec::pair(&pair)).unwrap();
        for ingest in [
            IngestMode::Pipelined { depth: 0 },
            IngestMode::Serial,
            IngestMode::Materialized,
        ] {
            let job = JobSpec::streams(
                LabeledSource::new(json.0.as_bytes(), "pre.json"),
                LabeledSource::new(json.1.as_bytes(), "post.json"),
            )
            .with_options(JobOptions {
                ingest,
                ..JobOptions::default()
            });
            let report = s.run(job).unwrap();
            assert_eq!(
                verdict_bytes(&report),
                verdict_bytes(&baseline),
                "{ingest:?} diverged"
            );
        }
        assert_eq!(s.jobs_run(), 4);
    }

    #[test]
    fn stream_errors_carry_the_job_label() {
        let s = session();
        let err = s
            .run(JobSpec::streams(
                LabeledSource::new(&b"{\"fecs\": [42]}"[..], "job-7:pre"),
                LabeledSource::new(&b"{\"fecs\": []}"[..], "job-7:post"),
            ))
            .unwrap_err();
        assert_eq!(err.label(), Some("job-7:pre"));
        assert_eq!(err.entry_index(), Some(0));
        assert!(err.byte_offset().is_some());
        assert!(err.to_string().starts_with("job-7:pre: "), "{err}");
    }

    #[test]
    fn second_job_replays_warm_from_the_attached_store() {
        let mut s = session();
        s.attach_store(VerdictStore::in_memory(s.epoch()));
        let pair = pair();
        let cold = s.run(JobSpec::pair(&pair)).unwrap();
        assert_eq!(cold.stats.warm_hits, 0);
        let warm = s.run(JobSpec::pair(&pair)).unwrap();
        assert_eq!(warm.stats.warm_hits, warm.stats.classes);
        assert_eq!(verdict_bytes(&cold), verdict_bytes(&warm));
    }

    #[test]
    fn job_options_round_trip_the_wire_shape() {
        let opts = JobOptions {
            witness: crate::counterexample::WitnessLimits {
                max_paths: 7,
                max_len: 99,
            },
            list_paths: 2,
            dedup: false,
            minimize_sides: true,
            ingest: IngestMode::Pipelined { depth: 5 },
            use_cache: false,
        };
        let json = serde_json::to_string(&opts.to_value()).unwrap();
        let back = JobOptions::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, opts);
        for ingest in [IngestMode::Serial, IngestMode::Materialized] {
            let opts = JobOptions {
                ingest,
                ..JobOptions::default()
            };
            let back = JobOptions::from_value(&opts.to_value()).unwrap();
            assert_eq!(back, opts);
        }
    }

    #[test]
    fn use_cache_false_skips_the_store() {
        let mut s = session();
        s.attach_store(VerdictStore::in_memory(s.epoch()));
        let pair = pair();
        s.run(JobSpec::pair(&pair)).unwrap();
        let opts = JobOptions {
            use_cache: false,
            ..JobOptions::default()
        };
        let report = s.run(JobSpec::pair(&pair).with_options(opts)).unwrap();
        assert_eq!(report.stats.warm_hits, 0, "store must not be consulted");
    }
}
