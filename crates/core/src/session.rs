//! The unified check-job API: one resident [`CheckSession`] running any
//! number of [`JobSpec`]s.
//!
//! Historically the crate grew three sibling entry points —
//! [`Checker::check`], [`Checker::check_stream`],
//! [`Checker::check_pipelined`] — plus the CLI-only `run_check`
//! convenience, each re-deriving the same warm state (parsed spec,
//! compiled program, verdict store, FST memo) per call. The paper's
//! §8.1 workflow is iterative: an operator re-submits near-identical
//! jobs against one spec, so that warm state is exactly what should
//! persist between checks. This module splits the API along that line:
//!
//! - a **session** owns everything that outlives a request: the
//!   compiled program, the location database, the cache epoch derived
//!   from both, an optional open [`VerdictStore`], and the FST memo of
//!   determinized equation sides;
//! - a **job** owns everything request-scoped: the snapshot pair (in
//!   memory or as labelled streams) and the per-job [`JobOptions`].
//!
//! One-shot CLI mode is the degenerate case — open a session, run one
//! job, exit — and `rela serve` is the same session kept resident
//! behind a socket. Reports are byte-identical across all ingest modes
//! and between a fresh and a warm session (the memo and store change
//! wall time and the stats line, never verdict bytes).
//!
//! ```
//! use rela_core::{CheckSession, JobSpec, SessionConfig};
//! use rela_net::{Device, LocationDb, Granularity, Snapshot, SnapshotPair,
//!                FlowSpec, linear_graph};
//!
//! let mut db = LocationDb::new();
//! db.add_device(Device::new("A1", "A1"));
//! db.add_device(Device::new("B1", "B1"));
//!
//! let mut pre = Snapshot::new();
//! let flow = FlowSpec::new("10.0.0.0/24".parse().unwrap(), "A1");
//! pre.insert(flow.clone(), linear_graph(&["A1", "B1"]));
//! let mut post = Snapshot::new();
//! post.insert(flow, linear_graph(&["A1", "B1"]));
//! let pair = SnapshotPair::align(&pre, &post);
//!
//! let session = CheckSession::open(
//!     "spec nochange := { .* : preserve }\ncheck nochange",
//!     db,
//!     SessionConfig { granularity: Granularity::Device, ..SessionConfig::default() },
//! ).unwrap();
//! let report = session.run(JobSpec::pair(&pair)).unwrap();
//! assert!(report.is_compliant());
//! ```

use crate::check::{
    cache_epoch, CancelToken, CheckOptions, Checker, FstMemo, PreparedItem, RetainedBase,
    RetainedRecord, RetentionSet, RetentionSlot,
};
use crate::compile::{compile_program, CompiledProgram};
use crate::parser::parse_program;
use crate::pipeline::Side;
use crate::report::CheckReport;
use crate::RelaError;
use rela_cache::{CacheEpoch, VerdictStore};
use rela_net::{
    FlowDecoded, FlowSpec, Granularity, LocationDb, MmapReader, MmapSource, Snapshot,
    SnapshotDelta, SnapshotEpoch, SnapshotError, SnapshotFramer, SnapshotPair, SnapshotReader,
};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Session-lifetime configuration: what the spec compiles against and
/// how much parallelism every job gets. Fixed at [`CheckSession::open`]
/// time — changing either means a new session (and, for granularity, a
/// new cache epoch anyway, since the compiled program changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Location granularity the spec compiles at.
    pub granularity: Granularity,
    /// Worker threads per job; `0` uses the machine's available
    /// parallelism.
    pub threads: usize,
    /// Retain the raw records of the last `retain_bases`
    /// pipeline-ingested pairs (each with its snapshot epoch) so later
    /// jobs may submit only a delta against any retained epoch
    /// ([`JobInput::Deltas`]). `0` disables retention entirely. Costs
    /// the retained snapshots' bytes in memory; resident daemons and
    /// iteration loops want it, one-shot runs do not.
    pub retain_bases: usize,
    /// Optional byte budget across all retained base pairs. When the
    /// approximate footprint exceeds it, the oldest epochs are evicted
    /// first; the newest pair is never evicted. `None` bounds retention
    /// by count alone.
    pub retain_bytes: Option<u64>,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            granularity: Granularity::Group,
            threads: 0,
            retain_bases: 0,
            retain_bytes: None,
        }
    }
}

/// How a job's snapshot streams are ingested. Irrelevant for
/// [`JobInput::Pair`], which is already in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// The fully pipelined cold path ([`Checker::check_pipelined`]):
    /// framing, decoding, fingerprinting, and deciding overlap. `depth`
    /// is records in flight per decode worker; `0` = engine default.
    /// This is the default mode.
    Pipelined {
        /// Records in flight per decode worker (`0` = engine default).
        depth: usize,
    },
    /// Single-threaded streaming ingest ([`Checker::check_stream`]):
    /// O(classes) graph residency, deciding starts after the streams
    /// end.
    Serial,
    /// Materialize both snapshots in memory, then align and check
    /// ([`Checker::check`]).
    Materialized,
}

impl Default for IngestMode {
    fn default() -> IngestMode {
        IngestMode::Pipelined { depth: 0 }
    }
}

/// Per-job knobs: everything about a check that is legitimate to vary
/// between two submissions to one session. This struct is the single
/// source of truth for the one-shot CLI flags *and* the serve wire
/// protocol — both serialize it with [`Serialize`]/[`Deserialize`], so
/// a client and a one-shot run cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOptions {
    /// Witness enumeration limits for counterexamples.
    pub witness: crate::counterexample::WitnessLimits,
    /// Number of pre/post paths rendered per violating FEC.
    pub list_paths: usize,
    /// Group FECs into behavior classes and decide one representative
    /// per class.
    pub dedup: bool,
    /// Hopcroft-minimize each determinized equation side before the
    /// equivalence check (ablation knob).
    pub minimize_sides: bool,
    /// Stream ingest mode (ignored for in-memory pairs).
    pub ingest: IngestMode,
    /// Consult (and write back to) the session's verdict store, when
    /// one is attached.
    pub use_cache: bool,
    /// For [`JobInput::Deltas`]: the snapshot epoch the delta documents
    /// claim as their base. The job fails unless that epoch is still
    /// retained by the session (and matches the `base` field of both
    /// delta documents). Ignored for other inputs.
    pub delta_base: Option<u128>,
    /// Cooperative deadline for the job in milliseconds. The engine
    /// polls it at class boundaries; a fired deadline aborts the job
    /// with [`JobError::DeadlineExceeded`] without tearing down the
    /// session. `None` means no deadline.
    pub deadline_ms: Option<u64>,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        let defaults = CheckOptions::default();
        JobOptions {
            witness: defaults.witness,
            list_paths: defaults.list_paths,
            dedup: defaults.dedup,
            minimize_sides: defaults.minimize_sides,
            ingest: IngestMode::default(),
            use_cache: true,
            delta_base: None,
            deadline_ms: None,
        }
    }
}

impl Serialize for JobOptions {
    fn to_value(&self) -> Value {
        let (mode, depth) = match self.ingest {
            IngestMode::Pipelined { depth } => ("pipelined", depth),
            IngestMode::Serial => ("serial", 0),
            IngestMode::Materialized => ("materialized", 0),
        };
        Value::obj(vec![
            ("max_paths", self.witness.max_paths.to_value()),
            ("max_len", self.witness.max_len.to_value()),
            ("list_paths", self.list_paths.to_value()),
            ("dedup", self.dedup.to_value()),
            ("minimize_sides", self.minimize_sides.to_value()),
            ("ingest", Value::Str(mode.to_owned())),
            ("pipeline_depth", depth.to_value()),
            ("use_cache", self.use_cache.to_value()),
            (
                "delta_base",
                match self.delta_base {
                    Some(epoch) => Value::Str(format!("{}", SnapshotEpoch::from_u128(epoch))),
                    None => Value::Null,
                },
            ),
            (
                "deadline_ms",
                match self.deadline_ms {
                    Some(ms) => Value::UInt(ms),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl Deserialize for JobOptions {
    fn from_value(value: &Value) -> Result<JobOptions, serde::Error> {
        let depth: usize = serde::field(value, "pipeline_depth")?;
        let ingest = match serde::field::<String>(value, "ingest")?.as_str() {
            "pipelined" => IngestMode::Pipelined { depth },
            "serial" => IngestMode::Serial,
            "materialized" => IngestMode::Materialized,
            other => {
                return Err(serde::Error::custom(format!(
                    "unknown ingest mode `{other}`"
                )))
            }
        };
        Ok(JobOptions {
            witness: crate::counterexample::WitnessLimits {
                max_paths: serde::field(value, "max_paths")?,
                max_len: serde::field(value, "max_len")?,
            },
            list_paths: serde::field(value, "list_paths")?,
            dedup: serde::field(value, "dedup")?,
            minimize_sides: serde::field(value, "minimize_sides")?,
            ingest,
            use_cache: serde::field(value, "use_cache")?,
            // absent (pre-delta clients) and null both mean "no base"
            delta_base: match value.get("delta_base") {
                None | Some(Value::Null) => None,
                Some(v) => {
                    let text = v
                        .as_str()
                        .ok_or_else(|| serde::Error::custom("`delta_base` must be a hex string"))?;
                    Some(
                        text.parse::<SnapshotEpoch>()
                            .map_err(serde::Error::custom)?
                            .as_u128(),
                    )
                }
            },
            // absent (pre-deadline clients) and null both mean "none"
            deadline_ms: match value.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    serde::Error::custom("`deadline_ms` must be an unsigned integer")
                })?),
            },
        })
    }
}

/// The bytes behind a [`LabeledSource`]: a plain stream, or a memory
/// mapping that the pipelined binary framer consumes zero-copy.
enum SourceKind<'a> {
    Stream(Box<dyn Read + Send + 'a>),
    Mapped(MmapSource),
}

/// A labelled byte source carrying one snapshot. The label is mandatory
/// — it names the source in every error (a file path for file-backed
/// jobs, `job-N:pre`-style names for socket submissions), which is what
/// makes a malformed record traceable to its submission.
///
/// A source is either a byte stream ([`LabeledSource::new`]) or a
/// memory-mapped file ([`LabeledSource::mapped`]). Mapped RSNB
/// containers are framed in place by the pipelined engine — record
/// spans borrow the mapping instead of being copied — and every other
/// mode reads the mapping through a stream adapter, so the report bytes
/// are identical either way (`docs/INGEST.md`).
pub struct LabeledSource<'a> {
    source: SourceKind<'a>,
    label: String,
}

impl<'a> LabeledSource<'a> {
    /// Wrap a byte source with its mandatory label. The stream must
    /// carry the wire format of `docs/SNAPSHOT_FORMAT.md`, already
    /// decompressed.
    pub fn new(reader: impl Read + Send + 'a, label: impl Into<String>) -> LabeledSource<'a> {
        LabeledSource {
            source: SourceKind::Stream(Box::new(reader)),
            label: label.into(),
        }
    }

    /// Wrap a memory-mapped snapshot file with its mandatory label.
    pub fn mapped(map: MmapSource, label: impl Into<String>) -> LabeledSource<'static> {
        LabeledSource {
            source: SourceKind::Mapped(map),
            label: label.into(),
        }
    }

    /// The source name attached to every error.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Turn the source into a record framer: mapped sources frame in
    /// place (zero-copy for RSNB containers), streams are framed through
    /// a buffered reader.
    fn into_framer(self) -> SnapshotFramer<Box<dyn Read + Send + 'a>> {
        match self.source {
            SourceKind::Stream(reader) => SnapshotFramer::new(reader, self.label),
            SourceKind::Mapped(map) => SnapshotFramer::from_map(map, self.label),
        }
    }

    /// Turn the source into a plain byte stream plus its label, for the
    /// modes that parse rather than frame (serial, materialized,
    /// deltas). Mapped sources are read through [`MmapReader`].
    fn into_stream(self) -> (Box<dyn Read + Send + 'a>, String) {
        match self.source {
            SourceKind::Stream(reader) => (reader, self.label),
            SourceKind::Mapped(map) => (Box::new(MmapReader::new(Arc::new(map))), self.label),
        }
    }
}

/// A job's snapshot input: an already-aligned pair, or two labelled
/// streams to ingest per [`JobOptions::ingest`].
pub enum JobInput<'a> {
    /// An aligned in-memory pair (tests, the simulator, callers that
    /// already materialized).
    Pair(&'a SnapshotPair),
    /// Two raw snapshot streams, aligned during ingest.
    Streams {
        /// The pre-change snapshot.
        pre: LabeledSource<'a>,
        /// The post-change snapshot.
        post: LabeledSource<'a>,
    },
    /// Two delta documents (`docs/SNAPSHOT_FORMAT.md`) against one of
    /// the session's retained base pairs; unchanged records replay from
    /// the retained spans without being re-sent or re-decoded. Requires
    /// [`SessionConfig::retain_bases`] > 0 and a prior full ingest.
    Deltas {
        /// The pre-side delta document.
        pre: LabeledSource<'a>,
        /// The post-side delta document.
        post: LabeledSource<'a>,
    },
}

/// One check job: request-scoped input plus request-scoped options.
pub struct JobSpec<'a> {
    /// The snapshot pair to check.
    pub input: JobInput<'a>,
    /// Per-job knobs.
    pub options: JobOptions,
}

impl<'a> JobSpec<'a> {
    /// A job over an aligned in-memory pair, default options.
    pub fn pair(pair: &'a SnapshotPair) -> JobSpec<'a> {
        JobSpec {
            input: JobInput::Pair(pair),
            options: JobOptions::default(),
        }
    }

    /// A job over two labelled snapshot streams, default options.
    pub fn streams(pre: LabeledSource<'a>, post: LabeledSource<'a>) -> JobSpec<'a> {
        JobSpec {
            input: JobInput::Streams { pre, post },
            options: JobOptions::default(),
        }
    }

    /// A job over two labelled delta documents, default options.
    pub fn deltas(pre: LabeledSource<'a>, post: LabeledSource<'a>) -> JobSpec<'a> {
        JobSpec {
            input: JobInput::Deltas { pre, post },
            options: JobOptions::default(),
        }
    }

    /// Replace the options.
    pub fn with_options(mut self, options: JobOptions) -> JobSpec<'a> {
        self.options = options;
        self
    }
}

/// Why a job failed, without taking the session down with it.
///
/// A session is resident state shared by many jobs, so [`CheckSession::run`]
/// contains every per-job failure: malformed input surfaces as
/// [`JobError::Snapshot`], a fired [`JobOptions::deadline_ms`] as
/// [`JobError::DeadlineExceeded`], and a panic anywhere in the engine as
/// [`JobError::Panicked`] — the session stays usable for the next job in
/// all three cases (session-lifetime locks are poison-immune and their
/// guarded state is content-keyed, so a partial run never corrupts it).
#[derive(Debug)]
pub enum JobError {
    /// The input could not be parsed or validated; carries the source
    /// label, entry index, and byte offset of the offending record.
    Snapshot(SnapshotError),
    /// The job's cooperative deadline fired before deciding finished.
    /// Nothing is retained or written back from the aborted run.
    DeadlineExceeded {
        /// The deadline the job declared.
        deadline_ms: u64,
        /// How long the job actually ran before giving up.
        elapsed: Duration,
    },
    /// The engine panicked while running the job. The panic was caught
    /// at the session boundary; `payload` is the panic message.
    Panicked {
        /// The panic payload, rendered as text.
        payload: String,
    },
}

impl JobError {
    /// The source label of the offending input, for snapshot errors.
    pub fn label(&self) -> Option<&str> {
        match self {
            JobError::Snapshot(err) => err.label(),
            _ => None,
        }
    }

    /// The entry index of the offending record, for snapshot errors.
    pub fn entry_index(&self) -> Option<usize> {
        match self {
            JobError::Snapshot(err) => err.entry_index(),
            _ => None,
        }
    }

    /// The byte offset of the offending record, for snapshot errors.
    pub fn byte_offset(&self) -> Option<u64> {
        match self {
            JobError::Snapshot(err) => err.byte_offset(),
            _ => None,
        }
    }

    /// The underlying snapshot error, if that is what this is.
    pub fn as_snapshot(&self) -> Option<&SnapshotError> {
        match self {
            JobError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Snapshot(err) => err.fmt(f),
            JobError::DeadlineExceeded {
                deadline_ms,
                elapsed,
            } => write!(
                f,
                "job deadline of {deadline_ms} ms exceeded after {:.1} ms",
                elapsed.as_secs_f64() * 1000.0
            ),
            JobError::Panicked { payload } => write!(f, "check panicked: {payload}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for JobError {
    fn from(err: SnapshotError) -> JobError {
        JobError::Snapshot(err)
    }
}

/// Render a caught panic payload as text: `&str` and `String` payloads
/// (everything `panic!` produces) verbatim, anything else a placeholder.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A resident check context: the compiled spec, its location database,
/// the derived cache epoch, an optional open verdict store, and the
/// session-lifetime FST memo. Open once, run many jobs.
///
/// `run` takes `&self`: a session is shared between concurrent jobs
/// (the store is sharded, the memo is locked, the engine's own state is
/// per-run). See the [module docs](self) for the API rationale and an
/// example.
pub struct CheckSession {
    program: CompiledProgram,
    db: LocationDb,
    epoch: CacheEpoch,
    store: Option<VerdictStore>,
    memo: FstMemo,
    config: SessionConfig,
    jobs_run: AtomicUsize,
    /// The last K pipeline-ingested pairs' raw records and snapshot
    /// epochs, newest first (populated only when
    /// [`SessionConfig::retain_bases`] > 0).
    retained: RetentionSlot,
}

impl CheckSession {
    /// Parse and compile `source` against `db` at the configured
    /// granularity, deriving the session's cache epoch. No verdict
    /// store is attached yet — see [`CheckSession::attach_store`].
    pub fn open(
        source: &str,
        db: LocationDb,
        config: SessionConfig,
    ) -> Result<CheckSession, RelaError> {
        let program = parse_program(source)?;
        let compiled = compile_program(&program, &db, config.granularity)?;
        let epoch = cache_epoch(&program, &db);
        Ok(CheckSession {
            program: compiled,
            db,
            epoch,
            store: None,
            memo: FstMemo::new(),
            config,
            jobs_run: AtomicUsize::new(0),
            retained: Mutex::new(RetentionSet::new(
                config.retain_bases.max(1),
                config.retain_bytes,
            )),
        })
    }

    /// Attach an open verdict store. The caller opens it at this
    /// session's [`CheckSession::epoch`] (an epoch mismatch is not an
    /// error — the store simply never hits).
    pub fn attach_store(&mut self, store: VerdictStore) {
        self.store = Some(store);
    }

    /// The cache epoch derived from this session's spec and database.
    pub fn epoch(&self) -> CacheEpoch {
        self.epoch
    }

    /// The attached verdict store, if any.
    pub fn store(&self) -> Option<&VerdictStore> {
        self.store.as_ref()
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The location database the spec compiled against.
    pub fn db(&self) -> &LocationDb {
        &self.db
    }

    /// Number of jobs this session has completed (successfully or not).
    pub fn jobs_run(&self) -> usize {
        self.jobs_run.load(Ordering::Relaxed)
    }

    /// The snapshot epoch of the newest retained base pair, if
    /// [`SessionConfig::retain_bases`] > 0 and a pipelined job has
    /// completed. A [`JobInput::Deltas`] job may target this or any
    /// other epoch in [`CheckSession::retained_epochs`].
    pub fn base_epoch(&self) -> Option<SnapshotEpoch> {
        self.retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .newest_epoch()
            .map(SnapshotEpoch::from_u128)
    }

    /// All retained base epochs, newest first. These are the epochs a
    /// delta job may target (and what `rela serve` consults during
    /// delta negotiation).
    pub fn retained_epochs(&self) -> Vec<SnapshotEpoch> {
        self.retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .epochs()
            .into_iter()
            .map(SnapshotEpoch::from_u128)
            .collect()
    }

    /// Whether `epoch` is still retained as a delta base.
    pub fn retains_epoch(&self, epoch: SnapshotEpoch) -> bool {
        self.retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .find(epoch.as_u128())
            .is_some()
    }

    /// Run one check job. The report is byte-identical across ingest
    /// modes and across warm/cold sessions; errors carry the input's
    /// source label, entry index, and byte offset.
    ///
    /// Per-job failures are contained here: a panic inside the engine
    /// is caught at this boundary and returned as
    /// [`JobError::Panicked`], and a fired [`JobOptions::deadline_ms`]
    /// returns [`JobError::DeadlineExceeded`]. Either way the session
    /// remains fully usable — the memo, store, and retention set are
    /// guarded by poison-immune locks and only ever hold completed,
    /// content-keyed entries, so an aborted job cannot leave them
    /// half-written.
    pub fn run(&self, job: JobSpec<'_>) -> Result<CheckReport, JobError> {
        let deadline_ms = job.options.deadline_ms;
        let token = CancelToken::with_deadline_ms(deadline_ms);
        let start = Instant::now();
        // AssertUnwindSafe: every structure the closure shares with the
        // session (memo, store shards, retention set) takes insert-only,
        // content-keyed updates under locks recovered with
        // `PoisonError::into_inner`, so observing state after a panic is
        // sound. Scoped-thread panics inside the engine propagate to the
        // spawning scope and land here too.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.run_inner(job, &token)));
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(Ok(report)) => {
                if token.fired() {
                    // the engine bailed at a class boundary and returned
                    // the empty cancellation report — surface the
                    // deadline, not a fake "0 violations" verdict
                    return Err(JobError::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                        elapsed: start.elapsed(),
                    });
                }
                Ok(report)
            }
            Ok(Err(err)) => Err(JobError::Snapshot(err)),
            Err(payload) => Err(JobError::Panicked {
                payload: panic_text(payload),
            }),
        }
    }

    fn run_inner(
        &self,
        job: JobSpec<'_>,
        token: &CancelToken,
    ) -> Result<CheckReport, SnapshotError> {
        let options = CheckOptions {
            witness: job.options.witness,
            threads: self.config.threads,
            list_paths: job.options.list_paths,
            dedup: job.options.dedup,
            minimize_sides: job.options.minimize_sides,
            pipeline_depth: match job.options.ingest {
                IngestMode::Pipelined { depth } => depth,
                _ => 0,
            },
        };
        let mut checker = Checker::new(&self.program, &self.db)
            .with_options(options)
            .with_memo(&self.memo)
            .with_cancel(token);
        if job.options.use_cache {
            if let Some(store) = &self.store {
                checker = checker.with_cache(store);
            }
        }
        if self.config.retain_bases > 0 {
            // only the pipelined engine captures records, so the set
            // tracks the last K pipelined (full or delta) ingests
            checker = checker.with_retention(&self.retained);
        }
        match job.input {
            JobInput::Pair(pair) => Ok(checker.check(pair)),
            JobInput::Deltas { pre, post } => {
                self.run_delta(&checker, pre, post, job.options.delta_base)
            }
            JobInput::Streams { pre, post } => match job.options.ingest {
                IngestMode::Pipelined { .. } => {
                    checker.check_pipelined(pre.into_framer(), post.into_framer())
                }
                IngestMode::Serial => {
                    let (pre, pre_label) = pre.into_stream();
                    let (post, post_label) = post.into_stream();
                    checker.check_stream(SnapshotPair::align_streaming(
                        SnapshotReader::new(pre).with_label(pre_label),
                        SnapshotReader::new(post).with_label(post_label),
                    ))
                }
                IngestMode::Materialized => {
                    let collect = |source: LabeledSource<'_>| -> Result<Snapshot, SnapshotError> {
                        let (reader, label) = source.into_stream();
                        SnapshotReader::new(reader).with_label(label).collect()
                    };
                    let pre = collect(pre)?;
                    let post = collect(post)?;
                    Ok(checker.check(&SnapshotPair::align(&pre, &post)))
                }
            },
        }
    }

    /// Run a delta job: parse both delta documents, resolve the retained
    /// base epoch they target (any of the last K), splice replayed base
    /// records with the delta's own, and feed the result through the
    /// pipelined engine.
    fn run_delta(
        &self,
        checker: &Checker<'_>,
        pre: LabeledSource<'_>,
        post: LabeledSource<'_>,
        declared_base: Option<u128>,
    ) -> Result<CheckReport, SnapshotError> {
        let pre_label = pre.label().to_owned();
        let post_label = post.label().to_owned();
        let find = |epoch: u128| {
            self.retained
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .find(epoch)
        };
        let retained_list = || {
            let epochs = self
                .retained
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .epochs();
            epochs
                .iter()
                .map(|e| SnapshotEpoch::from_u128(*e).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        if self
            .retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .newest_epoch()
            .is_none()
        {
            return Err(SnapshotError::at(
                "no retained base snapshot: submit a full snapshot pair first",
                0,
            )
            .with_source_label(pre_label));
        }
        // a declared base wins over the documents: an unretained epoch
        // rejects before the documents are even parsed
        let mut base = match declared_base {
            Some(declared) => Some(find(declared).ok_or_else(|| {
                SnapshotError::at(
                    format!(
                        "declared delta base {} does not match the retained bases ({})",
                        SnapshotEpoch::from_u128(declared),
                        retained_list()
                    ),
                    0,
                )
                .with_source_label(pre_label.clone())
            })?),
            None => None,
        };
        let pre_delta = SnapshotDelta::from_reader(pre.into_stream().0, &pre_label)?;
        let post_delta = SnapshotDelta::from_reader(post.into_stream().0, &post_label)?;
        if base.is_none() {
            // no declared base: the documents name their own epoch
            base = Some(find(pre_delta.base.as_u128()).ok_or_else(|| {
                SnapshotError::at(
                    format!(
                        "delta base {} does not match the retained bases ({})",
                        pre_delta.base,
                        retained_list()
                    ),
                    0,
                )
                .with_source_label(pre_label.clone())
            })?);
        }
        let base = base.expect("delta base resolved above");
        let expect = SnapshotEpoch::from_u128(base.epoch);
        for (delta, label) in [(&pre_delta, &pre_label), (&post_delta, &post_label)] {
            if delta.base != expect {
                return Err(SnapshotError::at(
                    format!(
                        "delta base {} does not match the retained base {expect}",
                        delta.base
                    ),
                    0,
                )
                .with_source_label(label.clone()));
            }
        }
        let items = delta_items(&base, pre_delta, post_delta, [&pre_label, &post_label])?;
        checker.check_prepared(items, [Some(pre_label), Some(post_label)])
    }

    /// Flush the attached store to disk if any job inserted fresh
    /// verdicts since the last flush. Returns whether a write happened;
    /// `Ok(false)` with no store attached.
    pub fn persist_if_dirty(&self) -> std::io::Result<bool> {
        match &self.store {
            Some(store) => store.persist_if_dirty(),
            None => Ok(false),
        }
    }
}

/// Splice the prepared item list for a delta job: every base record
/// whose flow is untouched by its side's delta replays from the
/// retained spans (as a zero-decode [`PreparedItem::PairReplay`] when
/// both sides kept it), and the delta's own records enter as raw
/// upserts. Removed flows simply don't reappear.
fn delta_items(
    base: &Arc<RetainedBase>,
    pre: SnapshotDelta,
    post: SnapshotDelta,
    labels: [&String; 2],
) -> Result<Vec<PreparedItem>, SnapshotError> {
    let flows_of = |delta: &SnapshotDelta, label: &str| -> Result<Vec<FlowSpec>, SnapshotError> {
        delta
            .records
            .iter()
            .map(|raw| {
                Ok(match raw.decode_flow(Some(label))? {
                    FlowDecoded::Split(flow, _) => flow,
                    FlowDecoded::Full(flow, _) => flow,
                })
            })
            .collect()
    };
    let pre_flows = flows_of(&pre, labels[0])?;
    let post_flows = flows_of(&post, labels[1])?;
    let pre_changed: HashSet<&FlowSpec> = pre.removed.iter().chain(pre_flows.iter()).collect();
    let post_changed: HashSet<&FlowSpec> = post.removed.iter().chain(post_flows.iter()).collect();
    let post_keep: HashMap<&FlowSpec, &RetainedRecord> = base
        .post
        .iter()
        .filter(|r| !post_changed.contains(&r.flow))
        .map(|r| (&r.flow, r))
        .collect();
    let mut items = Vec::new();
    let mut paired: HashSet<&FlowSpec> = HashSet::new();
    for record in base.pre.iter().filter(|r| !pre_changed.contains(&r.flow)) {
        match post_keep.get(&record.flow) {
            Some(partner) => {
                paired.insert(&record.flow);
                items.push(PreparedItem::PairReplay {
                    pre: record.clone(),
                    post: (*partner).clone(),
                });
            }
            None => items.push(PreparedItem::Replay {
                side: Side::Pre,
                record: record.clone(),
            }),
        }
    }
    for record in base
        .post
        .iter()
        .filter(|r| !post_changed.contains(&r.flow) && !paired.contains(&r.flow))
    {
        items.push(PreparedItem::Replay {
            side: Side::Post,
            record: record.clone(),
        });
    }
    for raw in pre.records {
        items.push(PreparedItem::Record {
            side: Side::Pre,
            raw,
        });
    }
    for raw in post.records {
        items.push(PreparedItem::Record {
            side: Side::Post,
            raw,
        });
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rela_net::{linear_graph, Device, FlowSpec};

    fn db() -> LocationDb {
        let mut db = LocationDb::new();
        for name in ["A1", "B1", "C1"] {
            db.add_device(Device::new(name, name));
        }
        db
    }

    fn pair() -> SnapshotPair {
        let mut pre = Snapshot::new();
        let mut post = Snapshot::new();
        for (ix, tail) in [["B1"], ["C1"]].iter().enumerate() {
            let flow = FlowSpec::new(format!("10.0.{ix}.0/24").parse().unwrap(), "A1");
            let path: Vec<&str> = std::iter::once("A1").chain(tail.iter().copied()).collect();
            pre.insert(flow.clone(), linear_graph(&path));
            post.insert(flow, linear_graph(&path));
        }
        SnapshotPair::align(&pre, &post)
    }

    const SPEC: &str = "spec nochange := { .* : preserve }\ncheck nochange";

    fn session() -> CheckSession {
        CheckSession::open(
            SPEC,
            db(),
            SessionConfig {
                granularity: Granularity::Device,
                threads: 1,
                ..SessionConfig::default()
            },
        )
        .unwrap()
    }

    /// The filtered verdict bytes: everything except the timing- and
    /// stats-bearing lines (same filter the engine equivalence tests
    /// use).
    fn verdict_bytes(report: &CheckReport) -> String {
        report
            .to_string()
            .lines()
            .filter(|l| !l.starts_with("checked ") && !l.starts_with("behavior classes:"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn all_ingest_modes_agree_with_the_pair_path() {
        let s = session();
        let pair = pair();
        let json = {
            let mut pre = Snapshot::new();
            let mut post = Snapshot::new();
            for fec in &pair.fecs {
                pre.insert(fec.flow.clone(), fec.pre.clone());
                post.insert(fec.flow.clone(), fec.post.clone());
            }
            (pre.to_json().unwrap(), post.to_json().unwrap())
        };
        let baseline = s.run(JobSpec::pair(&pair)).unwrap();
        for ingest in [
            IngestMode::Pipelined { depth: 0 },
            IngestMode::Serial,
            IngestMode::Materialized,
        ] {
            let job = JobSpec::streams(
                LabeledSource::new(json.0.as_bytes(), "pre.json"),
                LabeledSource::new(json.1.as_bytes(), "post.json"),
            )
            .with_options(JobOptions {
                ingest,
                ..JobOptions::default()
            });
            let report = s.run(job).unwrap();
            assert_eq!(
                verdict_bytes(&report),
                verdict_bytes(&baseline),
                "{ingest:?} diverged"
            );
        }
        assert_eq!(s.jobs_run(), 4);
    }

    #[test]
    fn stream_errors_carry_the_job_label() {
        let s = session();
        let err = s
            .run(JobSpec::streams(
                LabeledSource::new(&b"{\"fecs\": [42]}"[..], "job-7:pre"),
                LabeledSource::new(&b"{\"fecs\": []}"[..], "job-7:post"),
            ))
            .unwrap_err();
        assert_eq!(err.label(), Some("job-7:pre"));
        assert_eq!(err.entry_index(), Some(0));
        assert!(err.byte_offset().is_some());
        assert!(err.to_string().starts_with("job-7:pre: "), "{err}");
    }

    #[test]
    fn second_job_replays_warm_from_the_attached_store() {
        let mut s = session();
        s.attach_store(VerdictStore::in_memory(s.epoch()));
        let pair = pair();
        let cold = s.run(JobSpec::pair(&pair)).unwrap();
        assert_eq!(cold.stats.warm_hits, 0);
        let warm = s.run(JobSpec::pair(&pair)).unwrap();
        assert_eq!(warm.stats.warm_hits, warm.stats.classes);
        assert_eq!(verdict_bytes(&cold), verdict_bytes(&warm));
    }

    #[test]
    fn job_options_round_trip_the_wire_shape() {
        let opts = JobOptions {
            witness: crate::counterexample::WitnessLimits {
                max_paths: 7,
                max_len: 99,
            },
            list_paths: 2,
            dedup: false,
            minimize_sides: true,
            ingest: IngestMode::Pipelined { depth: 5 },
            use_cache: false,
            delta_base: Some(0xdead_beef),
            deadline_ms: Some(1234),
        };
        let json = serde_json::to_string(&opts.to_value()).unwrap();
        let back = JobOptions::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, opts);
        for ingest in [IngestMode::Serial, IngestMode::Materialized] {
            let opts = JobOptions {
                ingest,
                ..JobOptions::default()
            };
            let back = JobOptions::from_value(&opts.to_value()).unwrap();
            assert_eq!(back, opts);
        }
    }

    fn retaining_session() -> CheckSession {
        retaining_session_k(1)
    }

    fn retaining_session_k(k: usize) -> CheckSession {
        let mut s = CheckSession::open(
            SPEC,
            db(),
            SessionConfig {
                granularity: Granularity::Device,
                threads: 1,
                retain_bases: k,
                retain_bytes: None,
            },
        )
        .unwrap();
        s.attach_store(VerdictStore::in_memory(s.epoch()));
        s
    }

    /// Three-flow snapshots; `detour` reroutes flow 1's post side.
    fn delta_fixture(detour: bool) -> (String, String) {
        let mut pre = Snapshot::new();
        let mut post = Snapshot::new();
        for ix in 0..3 {
            let flow = FlowSpec::new(format!("10.0.{ix}.0/24").parse().unwrap(), "A1");
            pre.insert(flow.clone(), linear_graph(&["A1", "B1"]));
            let path: &[&str] = if detour && ix == 1 {
                &["A1", "C1"]
            } else {
                &["A1", "B1"]
            };
            post.insert(flow, linear_graph(path));
        }
        (pre.to_json().unwrap(), post.to_json().unwrap())
    }

    #[test]
    fn delta_job_matches_full_resubmission_and_skips_decodes() {
        use rela_net::{diff_side, pair_epoch, scan_side, write_delta};
        let s = retaining_session();
        let (base_pre, base_post) = delta_fixture(false);
        let (new_pre, new_post) = delta_fixture(true);
        s.run(JobSpec::streams(
            LabeledSource::new(base_pre.as_bytes(), "base:pre"),
            LabeledSource::new(base_post.as_bytes(), "base:post"),
        ))
        .unwrap();
        let epoch = s.base_epoch().expect("base retained after a pipelined job");
        // the offline scanner derives the very same epoch the session
        // captured during ingest
        let scan = |json: &str, label: &str| {
            scan_side(SnapshotFramer::new(json.as_bytes(), label.to_owned())).unwrap()
        };
        let base_pre_scan = scan(&base_pre, "base:pre");
        let base_post_scan = scan(&base_post, "base:post");
        assert_eq!(epoch, pair_epoch(base_pre_scan.fold, base_post_scan.fold));
        // diff each side and render the delta documents
        let delta_doc = |base_scan, json: &str, label: &str| {
            let diff = diff_side(base_scan, &scan(json, label));
            let mut doc = Vec::new();
            write_delta(&mut doc, epoch, &diff.removed, &diff.records).unwrap();
            doc
        };
        let pre_doc = delta_doc(&base_pre_scan, &new_pre, "new:pre");
        let post_doc = delta_doc(&base_post_scan, &new_post, "new:post");
        let delta_report = s
            .run(
                JobSpec::deltas(
                    LabeledSource::new(&pre_doc[..], "delta:pre"),
                    LabeledSource::new(&post_doc[..], "delta:post"),
                )
                .with_options(JobOptions {
                    delta_base: Some(epoch.as_u128()),
                    ..JobOptions::default()
                }),
            )
            .unwrap();
        // the delta run decodes only the changed flow's pair: the two
        // unchanged flows replay without touching their graphs
        assert_eq!(delta_report.stats.fecs, 3);
        assert_eq!(delta_report.stats.graph_decodes, 2);
        // the delta ingest retains the *new* pair as the next base
        let new_epoch = s.base_epoch().unwrap();
        assert_ne!(new_epoch, epoch);
        // byte-identical to resubmitting the new snapshots in full
        let full = s
            .run(JobSpec::streams(
                LabeledSource::new(new_pre.as_bytes(), "new:pre"),
                LabeledSource::new(new_post.as_bytes(), "new:post"),
            ))
            .unwrap();
        assert_eq!(verdict_bytes(&delta_report), verdict_bytes(&full));
        assert_eq!(s.base_epoch().unwrap(), new_epoch, "same pair, same epoch");
    }

    #[test]
    fn delta_jobs_reject_a_wrong_or_missing_base() {
        let s = retaining_session();
        let doc = |base: &str| format!("{{\"base\":\"{base}\",\"removed\":[],\"records\":[]}}");
        let zeros = "0".repeat(32);
        // no base retained yet
        let err = s
            .run(JobSpec::deltas(
                LabeledSource::new(doc(&zeros).into_bytes().as_slice(), "d:pre"),
                LabeledSource::new(doc(&zeros).into_bytes().as_slice(), "d:post"),
            ))
            .unwrap_err();
        assert!(
            err.to_string().contains("no retained base snapshot"),
            "{err}"
        );
        // ingest a base, then target a stale epoch
        let (pre, post) = delta_fixture(false);
        s.run(JobSpec::streams(
            LabeledSource::new(pre.as_bytes(), "base:pre"),
            LabeledSource::new(post.as_bytes(), "base:post"),
        ))
        .unwrap();
        let err = s
            .run(JobSpec::deltas(
                LabeledSource::new(doc(&zeros).into_bytes().as_slice(), "d:pre"),
                LabeledSource::new(doc(&zeros).into_bytes().as_slice(), "d:post"),
            ))
            .unwrap_err();
        assert!(
            err.to_string().contains("does not match the retained base"),
            "{err}"
        );
        assert_eq!(err.label(), Some("d:pre"));
        // a declared base wins over the documents: mismatch rejects
        // before the documents are even parsed
        let err = s
            .run(
                JobSpec::deltas(
                    LabeledSource::new(&b"not json"[..], "d:pre"),
                    LabeledSource::new(&b"not json"[..], "d:post"),
                )
                .with_options(JobOptions {
                    delta_base: Some(1),
                    ..JobOptions::default()
                }),
            )
            .unwrap_err();
        assert!(err.to_string().contains("declared delta base"), "{err}");
    }

    #[test]
    fn deadline_zero_aborts_with_a_typed_error_and_the_session_survives() {
        let s = session();
        let pair = pair();
        let err = s
            .run(JobSpec::pair(&pair).with_options(JobOptions {
                deadline_ms: Some(0),
                ..JobOptions::default()
            }))
            .unwrap_err();
        assert!(
            matches!(err, JobError::DeadlineExceeded { deadline_ms: 0, .. }),
            "{err:?}"
        );
        assert!(err.label().is_none(), "deadline errors carry no source");
        // the session still serves the identical job without a deadline
        let report = s.run(JobSpec::pair(&pair)).unwrap();
        assert!(report.is_compliant());
        assert_eq!(s.jobs_run(), 2, "the aborted job still counts");
    }

    #[test]
    fn two_retained_epochs_serve_interleaved_deltas() {
        let s = retaining_session_k(2);
        let (pre_a, post_a) = delta_fixture(false);
        let (pre_b, post_b) = delta_fixture(true);
        let full = |pre: &str, post: &str, tag: &str| {
            s.run(JobSpec::streams(
                LabeledSource::new(pre.as_bytes(), format!("{tag}:pre")),
                LabeledSource::new(post.as_bytes(), format!("{tag}:post")),
            ))
            .unwrap()
        };
        let report_a = full(&pre_a, &post_a, "a");
        let epoch_a = s.base_epoch().unwrap();
        let report_b = full(&pre_b, &post_b, "b");
        let epoch_b = s.base_epoch().unwrap();
        assert_ne!(epoch_a, epoch_b);
        assert_eq!(s.retained_epochs(), vec![epoch_b, epoch_a]);
        assert!(s.retains_epoch(epoch_a) && s.retains_epoch(epoch_b));
        // an empty delta against either retained epoch replays that base
        // wholesale: zero decodes, verdicts byte-identical to the full run
        let empty_doc = |epoch: SnapshotEpoch| {
            format!("{{\"base\":\"{epoch}\",\"removed\":[],\"records\":[]}}")
        };
        for (epoch, baseline) in [(epoch_a, &report_a), (epoch_b, &report_b)] {
            let doc = empty_doc(epoch);
            let report = s
                .run(
                    JobSpec::deltas(
                        LabeledSource::new(doc.as_bytes(), "d:pre"),
                        LabeledSource::new(doc.as_bytes(), "d:post"),
                    )
                    .with_options(JobOptions {
                        delta_base: Some(epoch.as_u128()),
                        ..JobOptions::default()
                    }),
                )
                .unwrap();
            assert_eq!(report.stats.graph_decodes, 0, "pure replay decodes nothing");
            assert_eq!(verdict_bytes(&report), verdict_bytes(baseline));
        }
    }

    #[test]
    fn evicted_epochs_reject_deltas_until_resubmitted_in_full() {
        let s = retaining_session(); // K = 1: the second ingest evicts the first
        let (pre_a, post_a) = delta_fixture(false);
        let (pre_b, post_b) = delta_fixture(true);
        let full = |pre: &str, post: &str, tag: &str| {
            s.run(JobSpec::streams(
                LabeledSource::new(pre.as_bytes(), format!("{tag}:pre")),
                LabeledSource::new(post.as_bytes(), format!("{tag}:post")),
            ))
            .unwrap()
        };
        let report_a = full(&pre_a, &post_a, "a");
        let epoch_a = s.base_epoch().unwrap();
        full(&pre_b, &post_b, "b");
        assert!(!s.retains_epoch(epoch_a), "K=1 evicted the older base");
        let doc = format!("{{\"base\":\"{epoch_a}\",\"removed\":[],\"records\":[]}}");
        let err = s
            .run(
                JobSpec::deltas(
                    LabeledSource::new(doc.as_bytes(), "d:pre"),
                    LabeledSource::new(doc.as_bytes(), "d:post"),
                )
                .with_options(JobOptions {
                    delta_base: Some(epoch_a.as_u128()),
                    ..JobOptions::default()
                }),
            )
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("does not match the retained bases"),
            "{err}"
        );
        // degrade to a full resubmission: identical verdict bytes
        let again = full(&pre_a, &post_a, "a2");
        assert_eq!(verdict_bytes(&again), verdict_bytes(&report_a));
    }

    #[test]
    fn a_tight_byte_budget_keeps_only_the_newest_base() {
        let s = CheckSession::open(
            SPEC,
            db(),
            SessionConfig {
                granularity: Granularity::Device,
                threads: 1,
                retain_bases: 4,
                retain_bytes: Some(1),
            },
        )
        .unwrap();
        let (pre_a, post_a) = delta_fixture(false);
        let (pre_b, post_b) = delta_fixture(true);
        for (pre, post, tag) in [(&pre_a, &post_a, "a"), (&pre_b, &post_b, "b")] {
            s.run(JobSpec::streams(
                LabeledSource::new(pre.as_bytes(), format!("{tag}:pre")),
                LabeledSource::new(post.as_bytes(), format!("{tag}:post")),
            ))
            .unwrap();
        }
        assert_eq!(
            s.retained_epochs().len(),
            1,
            "the byte budget evicts everything but the newest"
        );
    }

    #[test]
    fn use_cache_false_skips_the_store() {
        let mut s = session();
        s.attach_store(VerdictStore::in_memory(s.epoch()));
        let pair = pair();
        s.run(JobSpec::pair(&pair)).unwrap();
        let opts = JobOptions {
            use_cache: false,
            ..JobOptions::default()
        };
        let report = s.run(JobSpec::pair(&pair).with_options(opts)).unwrap();
        assert_eq!(report.stats.warm_hits, 0, "store must not be consulted");
    }
}
