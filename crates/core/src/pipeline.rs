//! Infrastructure for the pipelined cold path
//! ([`Checker::check_pipelined`](crate::check::Checker::check_pipelined)):
//! a bounded MPMC channel between the framer threads and the
//! decode/fingerprint worker pool, a sharded flow-join map, a sharded
//! behavior-class registry, and the first-error sink that aborts the
//! pipeline cleanly.
//!
//! Everything here is engine plumbing: the decision logic (hashing,
//! store consult, decide, broadcast) stays in [`crate::check`], which
//! drives these pieces from `std::thread::scope` workers.

use crate::report::FecResult;
use rela_net::{AlignedFec, BehaviorHash, FlowSpec, RawRecord, SnapshotError, SpanBytes};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which snapshot stream a record came from. `Pre` orders before `Post`
/// when ranking simultaneous errors, mirroring the serial join's
/// pull-pre-first alternation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Side {
    /// The pre-change snapshot.
    Pre,
    /// The post-change snapshot.
    Post,
}

// ---- bounded MPMC channel ---------------------------------------------

struct ChannelState<T> {
    queue: VecDeque<T>,
    /// All producers finished; receivers drain the queue then see
    /// `Closed`.
    closed: bool,
    /// Aborted: the queue is discarded, senders fail fast, receivers see
    /// `Closed` immediately.
    poisoned: bool,
}

/// What a bounded receive observed.
pub(crate) enum Recv<T> {
    /// An item was dequeued.
    Item(T),
    /// The channel is open but empty (the timeout elapsed) — a worker
    /// uses the gap to pull from the decide queue.
    Timeout,
    /// Closed (or poisoned) and drained: no more items will arrive.
    Closed,
}

/// A bounded multi-producer/multi-consumer channel with close and
/// poison, built on `Mutex` + `Condvar` (the workspace is std-only).
/// Send blocks while the queue is at capacity — this is the
/// back-pressure that keeps the framer from racing ahead of the decode
/// pool and bounds raw-record memory at `capacity` spans.
pub(crate) struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Channel<T> {
    pub(crate) fn new(capacity: usize) -> Channel<T> {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                poisoned: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue an item, blocking while full. `Err` when the channel was
    /// poisoned (the pipeline is aborting) or closed.
    pub(crate) fn send(&self, item: T) -> Result<(), ()> {
        let mut state = self.state.lock().expect("channel lock");
        loop {
            if state.poisoned || state.closed {
                return Err(());
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("channel lock");
        }
    }

    /// Dequeue an item, waiting up to `timeout` for one to arrive.
    pub(crate) fn recv(&self, timeout: Duration) -> Recv<T> {
        let mut state = self.state.lock().expect("channel lock");
        loop {
            if state.poisoned {
                return Recv::Closed;
            }
            if let Some(item) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Recv::Item(item);
            }
            if state.closed {
                return Recv::Closed;
            }
            let (next, wait) = self
                .not_empty
                .wait_timeout(state, timeout)
                .expect("channel lock");
            state = next;
            if wait.timed_out() {
                // check once more under the lock, then yield the gap
                if state.poisoned {
                    return Recv::Closed;
                }
                if let Some(item) = state.queue.pop_front() {
                    self.not_full.notify_one();
                    return Recv::Item(item);
                }
                if state.closed {
                    return Recv::Closed;
                }
                return Recv::Timeout;
            }
        }
    }

    /// All producers are done: receivers drain the remaining items and
    /// then observe `Closed`.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("channel lock");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Abort: discard queued items and wake every blocked side.
    pub(crate) fn poison(&self) {
        let mut state = self.state.lock().expect("channel lock");
        state.poisoned = true;
        state.queue.clear();
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Poisons a channel when dropped during a panic: a dying worker (or
/// framer) must unblock its peers — bounded sends and closed-gated
/// receives would otherwise wait forever — so `std::thread::scope` can
/// join every thread and propagate the panic instead of deadlocking.
/// With a single worker there is no survivor to drain the queue, so
/// without this guard a worker panic would hang the check.
pub(crate) struct PoisonOnPanic<'a, T>(pub(crate) &'a Channel<T>);

impl<T> Drop for PoisonOnPanic<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

// ---- first-error sink --------------------------------------------------

/// Collects stream errors from framers and decode workers and exposes
/// the abort flag. When several errors are discovered concurrently, the
/// one the serial reader would have hit first wins: lowest entry index,
/// `pre` before `post` at the same index (the serial hash-join pulls
/// sides alternately, pre first), lowest byte offset as the final tie
/// break. Errors outside any entry (header/trailer) rank last.
pub(crate) struct ErrorSink {
    errors: Mutex<Vec<(usize, Side, SnapshotError)>>,
    abort: AtomicBool,
}

impl ErrorSink {
    pub(crate) fn new() -> ErrorSink {
        ErrorSink {
            errors: Mutex::new(Vec::new()),
            abort: AtomicBool::new(false),
        }
    }

    /// Record an error and raise the abort flag.
    pub(crate) fn record(&self, side: Side, error: SnapshotError) {
        let entry = error.entry_index().unwrap_or(usize::MAX);
        self.errors
            .lock()
            .expect("error sink lock")
            .push((entry, side, error));
        self.abort.store(true, Ordering::Release);
    }

    /// Has any error been recorded?
    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The winning error, if any (consumes the sink).
    pub(crate) fn into_first(self) -> Option<SnapshotError> {
        self.errors
            .into_inner()
            .expect("error sink lock")
            .into_iter()
            .min_by_key(|(entry, side, e)| (*entry, *side, e.byte_offset().unwrap_or(u64::MAX)))
            .map(|(_, _, e)| e)
    }
}

// ---- sharded flow-join map ---------------------------------------------

/// A raw graph-value span, shared without copying: `span` addresses the
/// graph value inside its backing buffer — an owned record buffer for
/// JSON/buffered framing, a file mapping for the zero-copy binary path
/// (see [`SpanBytes`]). For binary-container records `flow` keeps the
/// sibling flow span, so a decode failure can reassemble the record and
/// report the exact serial-reader error. The byte-admission engine
/// joins, hashes, and deduplicates these spans — a graph is only ever
/// decoded when its byte content has not been seen before.
#[derive(Clone)]
pub(crate) struct GraphSpan {
    pub(crate) span: SpanBytes,
    pub(crate) flow: Option<SpanBytes>,
}

impl GraphSpan {
    /// Wrap a standalone buffer that *is* the span.
    pub(crate) fn whole(bytes: Vec<u8>) -> GraphSpan {
        GraphSpan {
            span: bytes.into(),
            flow: None,
        }
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        self.span.as_slice()
    }

    /// Rebuild the enclosing record for error attribution: the whole
    /// record buffer for a JSON-container span, the reassembled split
    /// record for a binary one, `None` for standalone spans (nothing to
    /// reconstruct — the span is the whole story).
    pub(crate) fn reconstruct_record(&self, offset: u64, index: usize) -> Option<RawRecord> {
        match &self.flow {
            Some(flow) => Some(RawRecord::from_split_spans(
                flow.clone(),
                self.span.clone(),
                offset,
                index,
            )),
            None if !self.span.is_whole() => Some(RawRecord::from_json_span(
                self.span.whole_buffer(),
                offset,
                index,
            )),
            None => None,
        }
    }
}

/// A spilled record waiting for its partner side: the undecoded graph
/// span plus its content hash (decode happens only after the byte-level
/// admission check on the joined pair).
struct PendingSide {
    span: GraphSpan,
    hash: u128,
    provenance: Provenance,
}

/// Where a consumed record sat in its stream: retained per side for
/// duplicate reporting (the serial reader names the *second*
/// occurrence, which under out-of-order decode may be the one already
/// consumed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Provenance {
    /// 0-based `fecs` entry index.
    pub(crate) index: usize,
    /// Absolute byte offset of the record span.
    pub(crate) offset: u64,
}

/// One side's slot in a join entry. The pending payload is boxed so the
/// slot — which lives on for *every* flow as a `Done` marker
/// (duplicate detection) — stays near pointer-sized: an inline graph
/// would make the join map's resident cost O(fecs) graphs-worth of
/// bytes even when nothing is spilled.
enum SideSlot {
    /// Not yet seen on this side.
    Absent,
    /// Seen; the partner side has not arrived.
    Pending(Box<PendingSide>),
    /// Paired and handed downstream (kept for duplicate detection).
    Done(Provenance),
}

struct JoinEntry {
    pre: SideSlot,
    post: SideSlot,
}

/// One half of a joined pair: the undecoded span, its content hash, and
/// where the record sat in its stream.
pub(crate) struct JoinedSide {
    pub(crate) span: GraphSpan,
    pub(crate) hash: u128,
    pub(crate) provenance: Provenance,
}

/// What inserting one framed record into the join produced.
pub(crate) enum Joined {
    /// Partner not seen yet; the record spilled into the join state.
    Pending,
    /// Both sides are now known: an aligned span pair, still undecoded.
    Paired { pre: JoinedSide, post: JoinedSide },
    /// The flow already appeared on this side; the payload is the
    /// provenance of the occurrence with the **larger** entry index
    /// (the second in stream order — the one the serial reader names),
    /// which may be either the incoming record or the stored one when
    /// batches decode out of order.
    Duplicate(Provenance),
}

/// A flow drained after both streams ended: present on one side only
/// (the other side is the empty graph).
pub(crate) struct OneSided {
    pub(crate) flow: FlowSpec,
    pub(crate) side: Side,
    pub(crate) span: GraphSpan,
    pub(crate) hash: u128,
    pub(crate) provenance: Provenance,
}

/// The streaming hash-join on the flow key, sharded by flow hash so
/// decode workers on different flows rarely contend. Only unmatched
/// records hold graphs; paired entries keep an empty marker for
/// duplicate detection (flow keys only, like the serial reader's seen
/// set).
pub(crate) struct JoinMap {
    shards: Vec<Mutex<HashMap<FlowSpec, JoinEntry>>>,
}

impl JoinMap {
    pub(crate) fn new(shards: usize) -> JoinMap {
        JoinMap {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(&self, flow: &FlowSpec) -> usize {
        let mut hasher = DefaultHasher::new();
        flow.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Insert one framed record; pairs it with its partner if that side
    /// already arrived.
    pub(crate) fn insert(
        &self,
        side: Side,
        flow: &FlowSpec,
        span: GraphSpan,
        hash: u128,
        provenance: Provenance,
    ) -> Joined {
        let mut shard = self.shards[self.shard_of(flow)].lock().expect("join lock");
        let entry = shard.entry(flow.clone()).or_insert(JoinEntry {
            pre: SideSlot::Absent,
            post: SideSlot::Absent,
        });
        let (own, other) = match side {
            Side::Pre => (&mut entry.pre, &mut entry.post),
            Side::Post => (&mut entry.post, &mut entry.pre),
        };
        match own {
            SideSlot::Absent => {}
            // duplicate: name the occurrence with the larger entry
            // index — the second in stream order, as the serial reader
            // would, regardless of decode scheduling
            SideSlot::Pending(p) if p.provenance.index > provenance.index => {
                return Joined::Duplicate(p.provenance)
            }
            SideSlot::Done(stored) if stored.index > provenance.index => {
                return Joined::Duplicate(*stored)
            }
            _ => return Joined::Duplicate(provenance),
        }
        match std::mem::replace(other, SideSlot::Absent) {
            SideSlot::Pending(partner) => {
                *own = SideSlot::Done(provenance);
                let PendingSide {
                    span: partner_span,
                    hash: partner_hash,
                    provenance: partner_provenance,
                } = *partner;
                *other = SideSlot::Done(partner_provenance);
                let own_side = JoinedSide {
                    span,
                    hash,
                    provenance,
                };
                let partner_side = JoinedSide {
                    span: partner_span,
                    hash: partner_hash,
                    provenance: partner_provenance,
                };
                let (pre, post) = match side {
                    Side::Pre => (own_side, partner_side),
                    Side::Post => (partner_side, own_side),
                };
                Joined::Paired { pre, post }
            }
            restored @ SideSlot::Done(_) => {
                *other = restored;
                // partner consumed earlier yet own slot was Absent: the
                // pairing marked both Done, so this cannot happen
                unreachable!("join entry half-done with an absent partner")
            }
            SideSlot::Absent => {
                *own = SideSlot::Pending(Box::new(PendingSide {
                    span,
                    hash,
                    provenance,
                }));
                Joined::Pending
            }
        }
    }

    /// Drain the flows seen on exactly one side (call after both streams
    /// ended). Order is arbitrary; the checker's report assembly sorts
    /// by flow.
    pub(crate) fn drain_one_sided(self) -> Vec<OneSided> {
        let mut out = Vec::new();
        for shard in self.shards {
            for (flow, entry) in shard.into_inner().expect("join lock") {
                match (entry.pre, entry.post) {
                    (SideSlot::Pending(pending), SideSlot::Absent) => out.push(OneSided {
                        flow,
                        side: Side::Pre,
                        span: pending.span,
                        hash: pending.hash,
                        provenance: pending.provenance,
                    }),
                    (SideSlot::Absent, SideSlot::Pending(pending)) => out.push(OneSided {
                        flow,
                        side: Side::Post,
                        span: pending.span,
                        hash: pending.hash,
                        provenance: pending.provenance,
                    }),
                    (SideSlot::Done(_), SideSlot::Done(_)) => {}
                    _ => unreachable!("join entry in an impossible end state"),
                }
            }
        }
        out
    }
}

// ---- sharded behavior-class registry ----------------------------------

/// A member reference into a worker's local flow list; resolved to a
/// global flow index once the worker lists are concatenated.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowRef {
    pub(crate) worker: usize,
    pub(crate) local: usize,
}

/// One behavior class accumulated during ingest.
pub(crate) struct ClassAcc {
    pub(crate) route: Option<usize>,
    pub(crate) key: Option<(BehaviorHash, BehaviorHash)>,
    /// The `(pre, post)` raw-span content hashes of the member that
    /// founded the class, when it arrived through byte-level admission —
    /// the key under which a fresh verdict is *also* written to the
    /// store so the next run can replay it without decoding. `None` for
    /// byte-warm placeholder classes (their byte entry already exists)
    /// and with dedup off.
    pub(crate) byte_key: Option<(u128, u128)>,
    /// The first member's aligned FEC — the class representative (shared
    /// with the decide queue, which may already be checking it).
    pub(crate) rep: Arc<AlignedFec>,
    pub(crate) members: Vec<FlowRef>,
}

/// Identity of a class inside the registry: `(shard, index-in-shard)`.
/// Global class indices are assigned when the shards are flattened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClassRef {
    pub(crate) shard: usize,
    pub(crate) index: usize,
}

/// Behavior-class fingerprint key: the `(pre, post, route)` triple a
/// class is admitted under. The byte-admission index reuses the same
/// shape with span content hashes in place of behavior fingerprints
/// and `usize::MAX` as the default-check route.
pub(crate) type ClassKey = (u128, u128, usize);

struct RegistryShard {
    index: HashMap<ClassKey, usize>,
    classes: Vec<ClassAcc>,
}

/// The concurrent class registry: admits each aligned FEC under its
/// `(pre, post, route)` fingerprint, keeping only the first member's
/// graphs. Sharded by key hash so workers admitting different classes
/// rarely contend. With dedup off every FEC founds its own class (the
/// index map is bypassed), mirroring the serial engine.
///
/// A second sharded index maps **raw-span content hashes** to classes
/// ([`ClassRegistry::admit_by_bytes`]): byte-identical records are
/// identical JSON, hence identical graphs, hence the same behavior
/// fingerprints — so once one member of a byte class has decoded and
/// resolved, every later member joins without touching its bytes again.
pub(crate) struct ClassRegistry {
    shards: Vec<Mutex<RegistryShard>>,
    byte_index: Vec<Mutex<HashMap<ClassKey, ClassRef>>>,
    dedup: bool,
}

impl ClassRegistry {
    pub(crate) fn new(shards: usize, dedup: bool) -> ClassRegistry {
        ClassRegistry {
            shards: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(RegistryShard {
                        index: HashMap::new(),
                        classes: Vec::new(),
                    })
                })
                .collect(),
            byte_index: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            dedup,
        }
    }

    /// Admit one aligned FEC under its behavior fingerprint. Returns the
    /// class it landed in, plus the representative handle when this
    /// member *founded* the class (the caller then consults the store or
    /// queues a decide); `None` when it joined an existing one (its
    /// graphs are dropped with `fec`).
    pub(crate) fn admit(
        &self,
        fec: AlignedFec,
        key: Option<(BehaviorHash, BehaviorHash)>,
        byte_key: Option<(u128, u128)>,
        route: Option<usize>,
        member: FlowRef,
    ) -> (ClassRef, Option<Arc<AlignedFec>>) {
        let (map_key, shard_ix) = match key {
            Some((pre, post)) if self.dedup => {
                let map_key = (pre.as_u128(), post.as_u128(), route.unwrap_or(usize::MAX));
                let mut hasher = DefaultHasher::new();
                map_key.hash(&mut hasher);
                let shard_ix = (hasher.finish() as usize) % self.shards.len();
                (Some(map_key), shard_ix)
            }
            // no-dedup (or unkeyed): spread singleton classes by worker
            _ => (None, member.worker % self.shards.len()),
        };
        let mut shard = self.shards[shard_ix].lock().expect("registry lock");
        let ix = shard.classes.len();
        if let Some(map_key) = map_key {
            if let Some(&existing) = shard.index.get(&map_key) {
                shard.classes[existing].members.push(member);
                return (
                    ClassRef {
                        shard: shard_ix,
                        index: existing,
                    },
                    None,
                );
            }
            shard.index.insert(map_key, ix);
        }
        let rep = Arc::new(fec);
        shard.classes.push(ClassAcc {
            route,
            key,
            byte_key,
            rep: rep.clone(),
            members: vec![member],
        });
        (
            ClassRef {
                shard: shard_ix,
                index: ix,
            },
            Some(rep),
        )
    }

    /// Add a member to an already-admitted class.
    pub(crate) fn add_member(&self, class: ClassRef, member: FlowRef) {
        let mut shard = self.shards[class.shard].lock().expect("registry lock");
        shard.classes[class.index].members.push(member);
    }

    /// Byte-level admission: join the class already resolved for this
    /// `(pre-span-hash, post-span-hash, route)` byte key, or run
    /// `found` — decode, fingerprint, behavior-admit, store-consult —
    /// to resolve one. `found` runs **under the byte-shard lock**, so
    /// exactly one member per byte key decodes even when workers race;
    /// lock order is byte shard → registry shard (acyclic, `found` may
    /// call [`ClassRegistry::admit`]). Returns whether this member
    /// founded the byte class.
    pub(crate) fn admit_by_bytes<E>(
        &self,
        byte_key: ClassKey,
        member: FlowRef,
        found: impl FnOnce() -> Result<ClassRef, E>,
    ) -> Result<bool, E> {
        let mut hasher = DefaultHasher::new();
        byte_key.hash(&mut hasher);
        let shard_ix = (hasher.finish() as usize) % self.byte_index.len();
        let mut shard = self.byte_index[shard_ix].lock().expect("byte index lock");
        if let Some(&class) = shard.get(&byte_key) {
            self.add_member(class, member);
            return Ok(false);
        }
        let class = found()?;
        shard.insert(byte_key, class);
        Ok(true)
    }

    /// Flatten the shards into a single class list. Returns the classes
    /// plus, per shard, the global index of its first class (so
    /// [`ClassRef`]s resolve to positions in the flat list). Shard order
    /// is fixed; within a shard, admission order — the flat order is
    /// scheduling-dependent, which is fine because the report engine is
    /// order-independent (sorted symbol interning, flow-sorted results).
    pub(crate) fn into_classes(self) -> (Vec<ClassAcc>, Vec<usize>) {
        let mut offsets = Vec::with_capacity(self.shards.len());
        let mut classes = Vec::new();
        for shard in self.shards {
            offsets.push(classes.len());
            classes.extend(shard.into_inner().expect("registry lock").classes);
        }
        (classes, offsets)
    }
}

/// A class waiting for an eager (mid-ingest) decide.
pub(crate) struct EagerTask {
    pub(crate) class: ClassRef,
    pub(crate) rep: Arc<AlignedFec>,
    pub(crate) route: Option<usize>,
    pub(crate) key: Option<(BehaviorHash, BehaviorHash)>,
}

/// The queue feeding idle decode workers with founded classes to decide
/// while records still arrive. Leftovers (classes founded near the end
/// of the stream) are decided by the finisher with the final table.
pub(crate) struct DecideQueue {
    tasks: Mutex<VecDeque<EagerTask>>,
}

impl DecideQueue {
    pub(crate) fn new() -> DecideQueue {
        DecideQueue {
            tasks: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn push(&self, task: EagerTask) {
        self.tasks
            .lock()
            .expect("decide queue lock")
            .push_back(task);
    }

    pub(crate) fn pop(&self) -> Option<EagerTask> {
        self.tasks.lock().expect("decide queue lock").pop_front()
    }
}

/// The outcome of an eager store consult or decide for one class.
pub(crate) enum EagerOutcome {
    /// Replayed from the persistent store (final — warm verdicts are
    /// rendering-complete and byte-identical by the store contract).
    Warm(FecResult),
    /// Decided compliant mid-ingest (final — compliant results carry no
    /// rendered paths, so they are independent of the symbol table).
    Compliant(FecResult, Duration, crate::report::PhaseTimings),
    /// Decided violating mid-ingest: the verdict stands but witnesses
    /// depend on the final symbol table, so the finisher re-decides it.
    ViolatingProvisional,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn channel_round_trips_under_contention() {
        let chan: StdArc<Channel<usize>> = StdArc::new(Channel::new(4));
        let n = 1000;
        let chan2 = chan.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                chan2.send(i).unwrap();
            }
            chan2.close();
        });
        let mut seen = Vec::new();
        loop {
            match chan.recv(Duration::from_millis(1)) {
                Recv::Item(i) => seen.push(i),
                Recv::Timeout => continue,
                Recv::Closed => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn poison_unblocks_a_full_sender() {
        let chan: StdArc<Channel<usize>> = StdArc::new(Channel::new(1));
        chan.send(0).unwrap();
        let chan2 = chan.clone();
        let sender = std::thread::spawn(move || chan2.send(1));
        std::thread::sleep(Duration::from_millis(10));
        chan.poison();
        assert!(sender.join().unwrap().is_err(), "poison fails the send");
        assert!(matches!(chan.recv(Duration::ZERO), Recv::Closed));
    }

    #[test]
    fn error_sink_ranks_like_the_serial_join() {
        let sink = ErrorSink::new();
        let at = |entry: Option<usize>| {
            let e = SnapshotError::at("boom", 7);
            match entry {
                Some(ix) => e.with_entry(ix),
                None => e,
            }
        };
        sink.record(Side::Post, at(Some(2)));
        sink.record(Side::Pre, at(Some(2)));
        sink.record(Side::Pre, at(None)); // header/trailer ranks last
        assert!(sink.aborted());
        let first = sink.into_first().unwrap();
        assert_eq!(first.entry_index(), Some(2));
    }
}
